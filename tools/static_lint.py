#!/usr/bin/env python3
"""A dependency-free static linter for the repro source tree.

The container deliberately ships no third-party lint toolchain, so CI runs
this stdlib-``ast`` checker instead.  Three rule families, chosen because
each has bitten real compiler code:

- ``L001`` unused import — an import whose bound name is never referenced
  again in the module.  ``__init__.py`` files are exempt (re-export
  surface), as are names listed in ``__all__``, ``__future__`` imports,
  and imports under ``if TYPE_CHECKING:`` (their uses are quoted
  annotations the AST sees as plain strings).
- ``L002`` bare ``except:`` — swallows ``KeyboardInterrupt`` and
  ``SystemExit``; catch ``Exception`` (or something narrower) instead.
- ``L003`` mutable default argument — a ``list``/``dict``/``set`` literal
  or constructor call as a parameter default is shared across calls.

Findings print as ``file:line:col: error[CODE]: message`` — the same shape
``repro lint`` uses, so the GitHub Actions problem matcher annotates both.

Usage::

    python tools/static_lint.py src tests tools
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

MUTABLE_CALLS = {"list", "dict", "set"}


def _finding(path: Path, node: ast.AST, code: str, message: str) -> str:
    line = getattr(node, "lineno", 1)
    column = getattr(node, "col_offset", 0) + 1
    return f"{path}:{line}:{column}: error[{code}]: {message}"


def _dunder_all(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                for item in ast.walk(node.value):
                    if isinstance(item, ast.Constant) and isinstance(
                        item.value, str
                    ):
                        names.add(item.value)
    return names


def _used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # a.b.c marks the root name `a` used (module-style access)
            inner = node.value
            while isinstance(inner, ast.Attribute):
                inner = inner.value
            if isinstance(inner, ast.Name):
                used.add(inner.id)
    return used


def _type_checking_imports(tree: ast.Module) -> set[ast.AST]:
    """Import nodes inside ``if TYPE_CHECKING:`` blocks (L001-exempt)."""
    exempt: set[ast.AST] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_guard = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_guard:
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    exempt.add(child)
    return exempt


def _check_unused_imports(path: Path, tree: ast.Module) -> list[str]:
    if path.name == "__init__.py":
        return []
    exported = _dunder_all(tree)
    used = _used_names(tree)
    exempt = _type_checking_imports(tree)
    findings = []
    for node in ast.walk(tree):
        if node in exempt:
            continue
        if isinstance(node, ast.Import):
            aliases = [
                (a, (a.asname or a.name.split(".")[0])) for a in node.names
            ]
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            aliases = [(a, (a.asname or a.name)) for a in node.names]
        else:
            continue
        for alias, bound in aliases:
            if bound == "*" or bound in exported or bound in used:
                continue
            findings.append(
                _finding(
                    path,
                    node,
                    "L001",
                    f"import {bound!r} is never used",
                )
            )
    return findings


def _check_bare_except(path: Path, tree: ast.Module) -> list[str]:
    return [
        _finding(
            path,
            node,
            "L002",
            "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
            "catch Exception or narrower",
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.type is None
    ]


def _check_mutable_defaults(path: Path, tree: ast.Module) -> list[str]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in MUTABLE_CALLS
            )
            if mutable:
                findings.append(
                    _finding(
                        path,
                        default,
                        "L003",
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the body",
                    )
                )
    return findings


def lint_file(path: Path) -> list[str]:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as error:
        return [
            f"{path}:{error.lineno or 1}:{(error.offset or 0) + 1}: "
            f"error[L000]: syntax error: {error.msg}"
        ]
    findings = []
    findings += _check_unused_imports(path, tree)
    findings += _check_bare_except(path, tree)
    findings += _check_mutable_defaults(path, tree)
    return findings


def lint_paths(paths: list[Path]) -> list[str]:
    findings: list[str] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings += lint_file(file)
    return findings


def main(argv: list[str]) -> int:
    targets = [Path(arg) for arg in (argv or ["src"])]
    missing = [str(t) for t in targets if not t.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(targets)
    for finding in findings:
        print(finding)
    checked = sum(
        len(list(t.rglob("*.py"))) if t.is_dir() else 1 for t in targets
    )
    print(
        f"static-lint: checked {checked} file(s), "
        f"{len(findings)} finding(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
