"""Ablations over the remaining scheduling knobs.

Three design choices the paper exposes through the scheduling language but
does not sweep in a dedicated table:

- ``configBucketFusionThreshold`` — too small and fusion never fires; too
  large and straggler threads serialize work (Section 3.3: "The threshold
  is important to avoid creating straggler threads").
- ``configNumBuckets`` — fewer materialized lazy buckets mean more overflow
  re-bucketing passes; more buckets cost scanning (Section 5.1 / Julienne).
- ``configApplyParallelization`` — edge-aware load balancing vs plain
  dynamic chunking on a skewed-degree graph.
"""

import pytest

from conftest import fmt

from repro.algorithms import sssp
from repro.eval import datasets, format_table
from repro.midend import Schedule

THREADS = 8


# ----------------------------------------------------------------------
# Bucket fusion threshold
# ----------------------------------------------------------------------
THRESHOLDS = (1, 8, 64, 1000, 100000)


def fusion_threshold_sweep():
    graph = datasets.load("RD")
    source = datasets.sources_for("RD", 1)[0]
    results = {}
    for threshold in THRESHOLDS:
        schedule = Schedule(
            priority_update="eager_with_fusion",
            delta=datasets.best_delta("RD"),
            bucket_fusion_threshold=threshold,
            num_threads=THREADS,
        )
        results[threshold] = sssp(graph, source, schedule).stats
    return results


@pytest.fixture(scope="module")
def threshold_sweep():
    return fusion_threshold_sweep()


def test_fusion_threshold_ablation(benchmark, threshold_sweep, save_table):
    benchmark.pedantic(
        sssp,
        args=(datasets.load("RD"), datasets.sources_for("RD", 1)[0]),
        kwargs={
            "schedule": Schedule(
                priority_update="eager_with_fusion",
                delta=datasets.best_delta("RD"),
                num_threads=THREADS,
            )
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            str(threshold),
            str(stats.rounds),
            str(stats.fused_rounds),
            fmt(stats.critical_path_work),
            fmt(stats.simulated_time()),
        ]
        for threshold, stats in threshold_sweep.items()
    ]
    table = format_table(
        ["threshold", "sync rounds", "fused rounds", "critical path", "simulated"],
        rows,
        title="Ablation: bucket fusion threshold (SSSP on RD)",
    )
    save_table("ablation_fusion_threshold", table)

    tiny = threshold_sweep[1]
    tuned = threshold_sweep[1000]
    # A threshold of 1 disables fusion in practice: many synchronized rounds.
    assert tiny.fused_rounds < tuned.fused_rounds
    assert tiny.rounds > tuned.rounds
    assert tuned.simulated_time() < tiny.simulated_time()
    # An unbounded threshold must not beat the tuned one by serializing less
    # (it can only add straggler work).
    unbounded = threshold_sweep[100000]
    assert unbounded.critical_path_work >= tuned.critical_path_work * 0.99


# ----------------------------------------------------------------------
# Number of materialized lazy buckets
# ----------------------------------------------------------------------
BUCKET_COUNTS = (2, 8, 32, 128, 1024)


def num_buckets_sweep():
    graph = datasets.load("RD")
    source = datasets.sources_for("RD", 1)[0]
    results = {}
    for count in BUCKET_COUNTS:
        schedule = Schedule(
            priority_update="lazy",
            delta=datasets.best_delta("RD"),
            num_buckets=count,
            num_threads=THREADS,
        )
        results[count] = sssp(graph, source, schedule).stats
    return results


@pytest.fixture(scope="module")
def bucket_sweep():
    return num_buckets_sweep()


def test_num_buckets_ablation(benchmark, bucket_sweep, save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            str(count),
            str(stats.rounds),
            fmt(stats.bucket_inserts),
            fmt(stats.simulated_time()),
        ]
        for count, stats in bucket_sweep.items()
    ]
    table = format_table(
        ["materialized buckets", "rounds", "bucket inserts", "simulated"],
        rows,
        title="Ablation: number of materialized lazy buckets (SSSP on RD)",
    )
    save_table("ablation_num_buckets", table)

    # A tiny window forces overflow re-bucketing: extra bucket insertions.
    assert (
        bucket_sweep[2].bucket_inserts > bucket_sweep[128].bucket_inserts
    ), "a 2-bucket window must re-bucket overflow vertices repeatedly"
    # Distances are schedule-independent, so rounds stay comparable.
    assert bucket_sweep[2].rounds >= bucket_sweep[1024].rounds


# ----------------------------------------------------------------------
# Parallelization policy on a skewed graph
# ----------------------------------------------------------------------
POLICIES = (
    "static-vertex-parallel",
    "dynamic-vertex-parallel",
    "edge-aware-dynamic-vertex-parallel",
)


def parallelization_sweep():
    graph = datasets.load("TW")  # heavy-tailed degrees
    source = datasets.sources_for("TW", 1)[0]
    results = {}
    for policy in POLICIES:
        schedule = Schedule(
            priority_update="eager_no_fusion",
            delta=datasets.best_delta("TW"),
            parallelization=policy,
            num_threads=THREADS,
        )
        results[policy] = sssp(graph, source, schedule).stats
    return results


@pytest.fixture(scope="module")
def policy_sweep():
    return parallelization_sweep()


def test_parallelization_ablation(benchmark, policy_sweep, save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [
            policy,
            fmt(stats.critical_path_work),
            fmt(stats.total_work),
            fmt(stats.simulated_time()),
        ]
        for policy, stats in policy_sweep.items()
    ]
    table = format_table(
        ["policy", "critical path", "total work", "simulated"],
        rows,
        title="Ablation: load-balancing policy (SSSP on TW, skewed degrees)",
    )
    save_table("ablation_parallelization", table)

    dynamic = policy_sweep["dynamic-vertex-parallel"]
    edge_aware = policy_sweep["edge-aware-dynamic-vertex-parallel"]
    # Degree-aware balancing must not have a worse critical path than
    # degree-oblivious chunking on a heavy-tailed graph.
    assert edge_aware.critical_path_work <= dynamic.critical_path_work * 1.02
