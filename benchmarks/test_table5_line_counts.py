"""Table 5: lines of code per algorithm per framework.

The DSL programs of this reproduction are measured directly; the C++
frameworks' counts are the paper's published numbers (we did not port their
code).  The paper's own GraphIt counts are included so the measured DSL can
be compared against both.

Expected shape: the DSL is several-fold smaller than GAPBS/Galois/Julienne
and no bigger than the paper's GraphIt (our subset omits scheduling
boilerplate, so it is usually smaller).
"""

import pytest

from repro.eval import PAPER_TABLE5, dsl_line_counts, format_table
from repro.lang import ALL_PROGRAMS, parse, typecheck

ALGOS = ("sssp", "ppsp", "astar", "kcore", "setcover")


@pytest.fixture(scope="module")
def counts():
    return dsl_line_counts()


def test_table5_line_counts(benchmark, counts, save_table):
    # The measured work: parsing + type checking all six programs.
    def frontend_pass():
        for source in ALL_PROGRAMS.values():
            typecheck(parse(source))

    benchmark.pedantic(frontend_pass, rounds=3, iterations=1)

    rows = []
    for algorithm in ALGOS:
        published = PAPER_TABLE5[algorithm]
        rows.append(
            [
                algorithm,
                str(counts[algorithm]),
                str(published["graphit"]),
                str(published["gapbs"] or "-"),
                str(published["galois"] or "-"),
                str(published["julienne"] or "-"),
            ]
        )
    table = format_table(
        [
            "algorithm",
            "this repro (measured)",
            "GraphIt (paper)",
            "GAPBS (paper)",
            "Galois (paper)",
            "Julienne (paper)",
        ],
        rows,
        title="Table 5: lines of code (measured DSL vs published counts)",
    )
    save_table("table5_line_counts", table)

    for algorithm in ALGOS:
        published = PAPER_TABLE5[algorithm]
        measured = counts[algorithm]
        # Our PPSP spells out the early-exit flag, costing one extra line.
        assert measured <= published["graphit"] + 1, (
            f"the DSL {algorithm} must not exceed the paper's GraphIt count"
        )
        for framework in ("gapbs", "galois", "julienne"):
            if published[framework] is not None:
                assert measured < published[framework], (
                    f"the DSL {algorithm} must be smaller than {framework}"
                )
    # The headline: up to ~4x reduction.
    assert PAPER_TABLE5["ppsp"]["julienne"] / counts["ppsp"] >= 3.0
