"""Section 6.2, "Delta Selection for Priority Coarsening".

The paper: "The best Δ values for social networks (ranging from 1 to 100)
are much smaller than deltas for road networks with large diameters
(ranging from 2^13 to 2^17)."  This driver sweeps Δ for SSSP on one social
and one road stand-in and reports the simulated time per Δ.

Expected shape: the best Δ on the road network is at least an order of
magnitude larger than the best Δ on the social network, and picking the
other class's Δ costs real performance.
"""

import pytest

from conftest import fmt

from repro.algorithms import sssp
from repro.eval import datasets, format_table
from repro.midend import Schedule

DELTAS = tuple(2**k for k in range(0, 16))
THREADS = 8


def sweep(dataset: str) -> dict[int, float]:
    graph = datasets.load(dataset)
    source = datasets.sources_for(dataset, 1)[0]
    results = {}
    for delta in DELTAS:
        schedule = Schedule(
            priority_update="eager_with_fusion", delta=delta, num_threads=THREADS
        )
        results[delta] = sssp(graph, source, schedule).stats.simulated_time()
    return results


@pytest.fixture(scope="module")
def sweeps():
    return {"TW": sweep("TW"), "RD": sweep("RD")}


def test_delta_selection(benchmark, sweeps, save_table):
    benchmark.pedantic(
        sssp,
        args=(datasets.load("RD"), datasets.sources_for("RD", 1)[0]),
        kwargs={"schedule": Schedule(priority_update="eager_with_fusion", delta=2048)},
        rounds=1,
        iterations=1,
    )

    rows = []
    for delta in DELTAS:
        rows.append(
            [str(delta), fmt(sweeps["TW"][delta]), fmt(sweeps["RD"][delta])]
        )
    table = format_table(
        ["delta", "TW (social)", "RD (road)"],
        rows,
        title="Delta selection: SSSP simulated time per coarsening factor",
    )
    save_table("delta_selection", table)

    best_tw = min(sweeps["TW"], key=sweeps["TW"].get)
    best_rd = min(sweeps["RD"], key=sweeps["RD"].get)
    assert best_rd >= 16 * best_tw, (
        f"the road network's best delta ({best_rd}) must be much larger than "
        f"the social network's ({best_tw})"
    )
    # Using the social delta on the road graph hurts badly (many rounds).
    assert sweeps["RD"][best_tw] > 1.5 * sweeps["RD"][best_rd]
    benchmark.extra_info["best_delta"] = {"TW": best_tw, "RD": best_rd}
