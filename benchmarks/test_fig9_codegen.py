"""Figure 9: compiler artifact — generated C++ under different schedules.

Not a performance table but the paper's compiler exhibit: the same SSSP
program compiled under (a) lazy/SparsePush, (b) lazy/DensePull, and
(c) eager, producing structurally different C++.  The driver measures the
end-to-end compilation time (parse → typecheck → analyses → C++ emission)
and archives fingerprints of the schedule-dependent constructs in each
variant.
"""

import pytest

from repro.backend import compile_program
from repro.eval import format_table
from repro.lang import program_source
from repro.midend import Schedule

VARIANTS = {
    "(a) lazy SparsePush": Schedule(priority_update="lazy", delta=4),
    "(b) lazy DensePull": Schedule(
        priority_update="lazy", delta=4, direction="DensePull"
    ),
    "(c) eager": Schedule(priority_update="eager_no_fusion", delta=4),
    "(c') eager + fusion": Schedule(priority_update="eager_with_fusion", delta=4),
}

FINGERPRINTS = {
    "(a) lazy SparsePush": (
        "new LazyPriorityQueue",
        "atomicWriteMin(&dist[dst]",
        "pq->bufferVertex(dst)",
    ),
    "(b) lazy DensePull": ("TransposeGraph", "__frontier_map"),
    "(c) eager": ("local_bins", "shared_indexes", "#pragma omp parallel"),
    "(c') eager + fusion": ("bucket fusion (Figure 7)",),
}


@pytest.fixture(scope="module")
def variants():
    return {
        name: compile_program(program_source("sssp"), schedule, backend="cpp")
        for name, schedule in VARIANTS.items()
    }


def test_figure9_codegen(benchmark, variants, save_table):
    benchmark.pedantic(
        compile_program,
        args=(program_source("sssp"), VARIANTS["(c) eager"]),
        kwargs={"backend": "cpp"},
        rounds=5,
        iterations=1,
    )

    rows = []
    for name, program in variants.items():
        text = program.source_text
        generated = text.split("end embedded runtime")[1]
        found = [marker for marker in FINGERPRINTS[name] if marker in text]
        assert len(found) == len(FINGERPRINTS[name]), (
            f"{name}: missing constructs {set(FINGERPRINTS[name]) - set(found)}"
        )
        rows.append(
            [
                name,
                str(len(text.splitlines())),
                str(len(generated.splitlines())),
                "; ".join(found),
            ]
        )
    table = format_table(
        ["variant", "total lines", "generated lines", "schedule-dependent constructs"],
        rows,
        title="Figure 9: generated C++ per schedule (SSSP)",
    )
    save_table("fig9_codegen", table)

    # The variants must genuinely differ.
    texts = {name: program.source_text for name, program in variants.items()}
    assert len(set(texts.values())) == len(texts)
    # Pull variant must not use atomics in its generated section.
    pull = texts["(b) lazy DensePull"].split("end embedded runtime")[1]
    assert "atomicWriteMin" not in pull
