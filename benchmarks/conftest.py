"""Shared infrastructure for the benchmark drivers.

Every driver regenerates one table or figure of the paper: it computes the
paper-shaped rows, asserts the *shape* claims (who wins, roughly by how
much), prints the table, and archives it under ``benchmarks/results/``.
Absolute numbers differ from the paper (Python + simulated parallelism vs a
24-core Xeon); EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_collection_modifyitems(items):
    """Every benchmark driver is timing-sensitive and heavyweight: mark the
    whole directory ``bench`` + ``slow`` so the CI fast job can deselect it
    with ``-m "not slow"``."""
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def save_table():
    """Print a finished table and archive it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


def fmt(value: float, digits: int = 0) -> str:
    """Compact numeric cell."""
    if value is None:
        return "-"
    if digits == 0:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"
