"""Figure 1: speedup of ordered over unordered algorithms (SSSP, k-core).

The paper's Figure 1 shows, per input graph, how much faster the ordered
algorithm (Δ-stepping / bucketed peeling) is than its unordered counterpart
(Bellman-Ford / whole-graph threshold peeling) on a 24-core machine.  The
reproduction reports the same two series over the dataset stand-ins, using
the simulated parallel time of the cost model.

Expected shape: every speedup > 1; road networks show far larger SSSP
speedups than social networks (the paper's RD bar dwarfs the others).
"""

import pytest

from conftest import fmt

from repro.algorithms import bellman_ford, kcore, sssp, unordered_kcore
from repro.eval import datasets, format_table
from repro.midend import Schedule

SSSP_GRAPHS = ("LJ", "OK", "TW", "GE", "RD")
KCORE_GRAPHS = ("LJ", "OK", "TW", "GE", "RD")
THREADS = 8


def sssp_speedup(name: str) -> float:
    graph = datasets.load(name)
    source = datasets.sources_for(name, 1)[0]
    schedule = Schedule(
        priority_update="eager_with_fusion",
        delta=datasets.best_delta(name),
        num_threads=THREADS,
    )
    ordered = sssp(graph, source, schedule)
    unordered = bellman_ford(graph, source, num_threads=THREADS)
    return unordered.stats.simulated_time() / ordered.stats.simulated_time()


def kcore_speedup(name: str) -> float:
    graph = datasets.load(name, symmetric=True)
    ordered = kcore(graph, Schedule(num_threads=THREADS))
    unordered = unordered_kcore(graph, num_threads=THREADS)
    return unordered.stats.simulated_time() / ordered.stats.simulated_time()


@pytest.fixture(scope="module")
def figure1():
    return {
        "sssp": {name: sssp_speedup(name) for name in SSSP_GRAPHS},
        "kcore": {name: kcore_speedup(name) for name in KCORE_GRAPHS},
    }


def test_figure1_ordered_vs_unordered(benchmark, figure1, save_table):
    benchmark.pedantic(sssp_speedup, args=("RD",), rounds=1, iterations=1)

    rows = []
    for name in SSSP_GRAPHS:
        rows.append(
            [
                name,
                fmt(figure1["sssp"][name], 2) + "x",
                fmt(figure1["kcore"][name], 2) + "x",
            ]
        )
    table = format_table(
        ["graph", "sssp speedup", "kcore speedup"],
        rows,
        title="Figure 1: speedup of ordered over unordered algorithms "
        "(simulated parallel time)",
    )
    save_table("fig1_ordered_vs_unordered", table)

    # Shape assertions (the paper's claims).
    for name, speedup in figure1["sssp"].items():
        assert speedup > 1.0, f"ordered SSSP must beat Bellman-Ford on {name}"
    for name, speedup in figure1["kcore"].items():
        assert speedup > 1.0, f"ordered k-core must beat unordered on {name}"
    road = min(figure1["sssp"][name] for name in ("GE", "RD"))
    social = max(figure1["sssp"][name] for name in ("LJ", "OK", "TW"))
    assert road > social, (
        "road networks must show larger ordered-vs-unordered SSSP gains "
        "than social networks"
    )
    benchmark.extra_info["sssp_speedups"] = {
        k: round(v, 2) for k, v in figure1["sssp"].items()
    }
    benchmark.extra_info["kcore_speedups"] = {
        k: round(v, 2) for k, v in figure1["kcore"].items()
    }
