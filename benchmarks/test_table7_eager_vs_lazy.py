"""Table 7: performance impact of eager vs lazy bucket updates.

The paper's Table 7 crosses two algorithms with the two bucketing
strategies: for k-core (many redundant priority updates per vertex) the
lazy approach with the constant-sum histogram wins, while for SSSP (few
redundant updates, little work per bucket) the eager approach wins — most
dramatically on the road network, where lazy Δ-stepping is 43x slower in
the paper.

Expected shape: eager < lazy for SSSP on every graph; lazy+histogram < eager
for k-core on the social graphs; the SSSP gap is largest on RD.
"""

import pytest

from conftest import fmt

from repro.algorithms import kcore, sssp
from repro.eval import datasets, format_table
from repro.midend import Schedule

GRAPHS = ("LJ", "TW", "FT", "WB", "RD")
THREADS = 8


def run_kcore_pair(name: str):
    graph = datasets.load(name, symmetric=True)
    return {
        "eager": kcore(
            graph, Schedule(priority_update="eager_no_fusion", num_threads=THREADS)
        ),
        "lazy": kcore(
            graph,
            Schedule(priority_update="lazy_constant_sum", num_threads=THREADS),
        ),
    }


def run_sssp_pair(name: str):
    graph = datasets.load(name)
    source = datasets.sources_for(name, 1)[0]
    delta = datasets.best_delta(name)
    return {
        "eager": sssp(
            graph,
            source,
            Schedule(
                priority_update="eager_no_fusion", delta=delta, num_threads=THREADS
            ),
        ),
        "lazy": sssp(
            graph,
            source,
            Schedule(priority_update="lazy", delta=delta, num_threads=THREADS),
        ),
    }


@pytest.fixture(scope="module")
def table7():
    return {
        name: {"kcore": run_kcore_pair(name), "sssp": run_sssp_pair(name)}
        for name in GRAPHS
    }


def test_table7_eager_vs_lazy(benchmark, table7, save_table):
    benchmark.pedantic(run_sssp_pair, args=("RD",), rounds=1, iterations=1)

    rows = []
    for name in GRAPHS:
        cell = table7[name]
        rows.append(
            [
                name,
                fmt(cell["kcore"]["eager"].stats.simulated_time()),
                fmt(cell["kcore"]["lazy"].stats.simulated_time()),
                fmt(cell["sssp"]["eager"].stats.simulated_time()),
                fmt(cell["sssp"]["lazy"].stats.simulated_time()),
            ]
        )
    table = format_table(
        [
            "graph",
            "kcore eager",
            "kcore lazy(hist)",
            "sssp eager",
            "sssp lazy",
        ],
        rows,
        title="Table 7: eager vs lazy bucket updates "
        "(simulated parallel time; k-core lazy uses constant-sum reduction)",
    )
    save_table("table7_eager_vs_lazy", table)

    sssp_gaps = {}
    for name in GRAPHS:
        cell = table7[name]
        eager_time = cell["sssp"]["eager"].stats.simulated_time()
        lazy_time = cell["sssp"]["lazy"].stats.simulated_time()
        assert eager_time < lazy_time, f"eager SSSP must beat lazy on {name}"
        sssp_gaps[name] = lazy_time / eager_time
        # The structural reason eager k-core loses: bucket-update churn.
        assert (
            cell["kcore"]["eager"].stats.bucket_inserts
            > cell["kcore"]["lazy"].stats.bucket_inserts
        ), f"eager k-core must churn more bucket updates on {name}"
    # Lazy + histogram wins k-core on the dense social graphs.
    for name in ("TW", "FT", "WB"):
        cell = table7[name]
        assert (
            cell["kcore"]["lazy"].stats.simulated_time()
            < cell["kcore"]["eager"].stats.simulated_time()
        ), f"lazy+histogram k-core must beat eager on {name}"
    assert sssp_gaps["RD"] == max(sssp_gaps.values()), (
        "the eager-vs-lazy SSSP gap must be largest on the road network"
    )
    benchmark.extra_info["sssp_lazy_over_eager"] = {
        k: round(v, 2) for k, v in sssp_gaps.items()
    }
