"""Section 6.2, "Autotuning".

The paper: the autotuner "is able to automatically find schedules that
performed within 5% of the hand-tuned schedules" after "trying 30-40
schedules ... in a large space of about 10^6 schedules".  This driver tunes
SSSP on a social and a road stand-in and compares against the hand-tuned
schedules the other benchmarks use.

Expected shape: within 40 trials the tuner's best cost is within 15% of
hand-tuned on both graph classes (5% in the paper; the deterministic
simulated-time objective at small scale is noisier), and the chosen Δ falls
in the right class-specific range.
"""

import pytest

from conftest import fmt

from repro.algorithms import sssp
from repro.autotune import autotune
from repro.eval import datasets, format_table
from repro.midend import Schedule

THREADS = 8
MAX_TRIALS = 40


def tune(dataset: str, seed: int = 1):
    graph = datasets.load(dataset)
    source = datasets.sources_for(dataset, 1)[0]
    result = autotune(
        "sssp",
        graph,
        source=source,
        max_trials=MAX_TRIALS,
        num_threads=THREADS,
        seed=seed,
    )
    hand_schedule = Schedule(
        priority_update="eager_with_fusion",
        delta=datasets.best_delta(dataset),
        num_threads=THREADS,
    )
    hand_cost = sssp(graph, source, hand_schedule).stats.simulated_time()
    return result, hand_cost


@pytest.fixture(scope="module")
def tuned():
    return {"TW": tune("TW"), "RD": tune("RD")}


def test_autotuner_quality(benchmark, tuned, save_table):
    benchmark.pedantic(
        autotune,
        args=("sssp", datasets.load("MA")),
        kwargs={"source": datasets.sources_for("MA", 1)[0], "max_trials": 10},
        rounds=1,
        iterations=1,
    )

    rows = []
    for dataset, (result, hand_cost) in tuned.items():
        best = result.best_schedule
        rows.append(
            [
                dataset,
                str(result.num_trials),
                f"{result.space_size:,}",
                f"{best.priority_update}/Δ={best.delta}",
                fmt(result.best_cost),
                fmt(hand_cost),
                fmt(result.best_cost / hand_cost, 3),
            ]
        )
    table = format_table(
        [
            "graph",
            "trials",
            "space",
            "best schedule",
            "tuned cost",
            "hand cost",
            "ratio",
        ],
        rows,
        title="Autotuning: ensemble search vs hand-tuned schedules (SSSP)",
    )
    save_table("autotuner", table)

    for dataset, (result, hand_cost) in tuned.items():
        assert result.best_cost <= 1.15 * hand_cost, (
            f"tuned schedule must be within 15% of hand-tuned on {dataset}"
        )
        assert result.num_trials <= MAX_TRIALS
    # Class-appropriate deltas discovered automatically.
    assert tuned["RD"][0].best_schedule.delta >= 8 * tuned["TW"][0].best_schedule.delta
