"""Table 6: running time and round reduction from bucket fusion (SSSP).

The paper reports, for SSSP with Δ-stepping on TW/FT/WB/RD, the time and
number of rounds with and without bucket fusion; fusion cuts RoadUSA's
rounds from 48,407 to 1,069 (45x) and its time by 3.4x, while social graphs
improve more modestly.

Expected shape: fusion reduces rounds everywhere; the round reduction and
the time improvement are largest on the road network.
"""

import pytest

from conftest import fmt

from repro.algorithms import sssp
from repro.eval import datasets, format_table
from repro.midend import Schedule

GRAPHS = ("TW", "FT", "WB", "RD")
THREADS = 8


def run_pair(name: str):
    graph = datasets.load(name)
    source = datasets.sources_for(name, 1)[0]
    delta = datasets.best_delta(name)
    results = {}
    for strategy in ("eager_with_fusion", "eager_no_fusion"):
        schedule = Schedule(
            priority_update=strategy, delta=delta, num_threads=THREADS
        )
        results[strategy] = sssp(graph, source, schedule)
    return results


@pytest.fixture(scope="module")
def table6():
    return {name: run_pair(name) for name in GRAPHS}


def test_table6_bucket_fusion(benchmark, table6, save_table):
    benchmark.pedantic(run_pair, args=("RD",), rounds=1, iterations=1)

    rows = []
    shape = {}
    for name in GRAPHS:
        fused = table6[name]["eager_with_fusion"].stats
        plain = table6[name]["eager_no_fusion"].stats
        # "Rounds" in Table 6 counts bucket-processing passes; fused passes
        # avoid the synchronization but still process a bucket.
        fused_rounds = fused.rounds + fused.fused_rounds
        plain_rounds = plain.rounds
        rows.append(
            [
                name,
                f"{fmt(fused.simulated_time())} [{fused.rounds} sync rounds, "
                f"{fused.fused_rounds} fused]",
                f"{fmt(plain.simulated_time())} [{plain_rounds} rounds]",
                fmt(plain.simulated_time() / fused.simulated_time(), 2) + "x",
                fmt(plain_rounds / max(1, fused.rounds), 1) + "x",
            ]
        )
        shape[name] = {
            "speedup": plain.simulated_time() / fused.simulated_time(),
            "round_reduction": plain_rounds / max(1, fused.rounds),
        }

    table = format_table(
        ["graph", "with fusion", "without fusion", "time speedup", "sync-round cut"],
        rows,
        title="Table 6: bucket fusion on SSSP with Δ-stepping "
        "(simulated parallel time)",
    )
    save_table("table6_bucket_fusion", table)

    # Shape: fusion never hurts and the road network gains the most.
    for name, cell in shape.items():
        assert cell["round_reduction"] > 1.0, f"fusion must cut rounds on {name}"
        assert cell["speedup"] > 0.95, f"fusion must not slow down {name}"
    assert shape["RD"]["round_reduction"] == max(
        cell["round_reduction"] for cell in shape.values()
    ), "the road network must show the largest round reduction"
    assert shape["RD"]["speedup"] > 1.5, "fusion must win big on the road network"
    benchmark.extra_info["round_reduction"] = {
        name: round(cell["round_reduction"], 1) for name, cell in shape.items()
    }
