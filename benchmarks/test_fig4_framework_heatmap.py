"""Figure 4: heatmap of framework slowdowns vs the fastest framework.

The paper's Figure 4 shows, for SSSP, PPSP, k-core, and SetCover on
Twitter (TW), LiveJournal (LJ), and RoadUSA (RD), each framework's slowdown
relative to the fastest framework for that cell (1.0 = fastest; gray =
unsupported).

Expected shape: GraphIt is at or near 1.0 everywhere; Julienne's worst
cells are SSSP/PPSP on the road network (lazy overheads, the paper shows up
to 16.9x); Galois supports only the shortest-path algorithms; gray cells
match the paper's support matrix.
"""

import pytest

from conftest import fmt

from repro.eval import build_matrix, format_table, slowdown_matrix

FRAMEWORKS = ("graphit", "julienne", "galois")
ALGORITHMS = ("sssp", "ppsp", "kcore", "setcover")
GRAPHS = ("TW", "LJ", "RD")


@pytest.fixture(scope="module")
def heatmap():
    matrix = build_matrix(FRAMEWORKS, ALGORITHMS, GRAPHS, trials=2)
    return matrix, slowdown_matrix(matrix)


def _one_cell():
    matrix = build_matrix(("graphit",), ("sssp",), ("LJ",), trials=1)
    return slowdown_matrix(matrix)


def test_figure4_heatmap(benchmark, heatmap, save_table):
    benchmark.pedantic(_one_cell, rounds=1, iterations=1)
    matrix, slowdowns = heatmap

    rows = []
    for algorithm in ALGORITHMS:
        for dataset in GRAPHS:
            row = [f"{algorithm}/{dataset}"]
            for framework in FRAMEWORKS:
                value = slowdowns[(framework, algorithm, dataset)]
                row.append(fmt(value, 2) if value is not None else "gray")
            rows.append(row)
    table = format_table(
        ["cell"] + list(FRAMEWORKS),
        rows,
        title="Figure 4: slowdown vs fastest framework "
        "(1.0 = fastest, gray = unsupported; simulated parallel time)",
    )
    save_table("fig4_framework_heatmap", table)

    # Gray cells match the paper's support matrix.
    for dataset in GRAPHS:
        assert slowdowns[("galois", "kcore", dataset)] is None
        assert slowdowns[("galois", "setcover", dataset)] is None

    # GraphIt is the fastest (or close) in every supported cell.  The one
    # divergence from the paper: the Galois emulation's approximate ordering
    # is modeled without scheduler contention, so it can edge ahead of
    # bucket fusion on road shortest paths (the paper has GraphIt winning
    # RD by 1.23x over Galois); we tolerate up to 35% there and 10%
    # everywhere else.  See EXPERIMENTS.md.
    for algorithm in ALGORITHMS:
        for dataset in GRAPHS:
            value = slowdowns[("graphit", algorithm, dataset)]
            assert value is not None
            tolerance = (
                1.35
                if algorithm in ("sssp", "ppsp") and dataset == "RD"
                else 1.10
            )
            assert value <= tolerance, (
                f"graphit must be within {tolerance}x of the best on "
                f"{algorithm}/{dataset}, got {value:.2f}"
            )
    # Against the strict-bucketing frameworks GraphIt always wins.
    for algorithm in ALGORITHMS:
        for dataset in GRAPHS:
            graphit_cell = matrix[("graphit", algorithm, dataset)]
            julienne_cell = matrix[("julienne", algorithm, dataset)]
            if graphit_cell is not None and julienne_cell is not None:
                assert (
                    graphit_cell.simulated_time
                    <= julienne_cell.simulated_time * 1.02
                ), f"graphit must beat julienne on {algorithm}/{dataset}"

    # Julienne's lazy overheads hurt most on the road network's SSSP/PPSP.
    julienne_road = max(
        slowdowns[("julienne", "sssp", "RD")],
        slowdowns[("julienne", "ppsp", "RD")],
    )
    julienne_social_kcore = slowdowns[("julienne", "kcore", "TW")]
    assert julienne_road > julienne_social_kcore, (
        "Julienne's worst cells must be road-network shortest paths"
    )
    benchmark.extra_info["julienne_rd_sssp_slowdown"] = round(
        slowdowns[("julienne", "sssp", "RD")], 2
    )
