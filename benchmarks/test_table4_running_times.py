"""Table 4: running times of all six algorithms across frameworks.

The paper's headline table: GraphIt with the priority extension vs GAPBS,
Galois, Julienne, unordered GraphIt, and Ligra, across six algorithms and
the dataset suite.  The reproduction regenerates every supported cell on
the dataset stand-ins, reporting simulated parallel time (the quantity the
cost model makes comparable across strategies) with wall-clock seconds
recorded alongside in the archived table.

Expected shape: GraphIt is the fastest or ties the fastest in the large
majority of cells; the unordered rows trail the ordered rows; unsupported
cells ('-') match the paper's support matrix.
"""

import pytest

from conftest import fmt

from repro.eval import build_matrix, format_table, slowdown_matrix
from repro.eval.datasets import ROAD_GRAPHS

FRAMEWORKS = (
    "graphit",
    "gapbs",
    "galois",
    "julienne",
    "graphit_unordered",
    "ligra",
)
ALGORITHMS = ("sssp", "ppsp", "wbfs", "astar", "kcore", "setcover")
GRAPHS = ("LJ", "OK", "TW", "FT", "WB", "GE", "RD")


@pytest.fixture(scope="module")
def table4():
    matrix = build_matrix(FRAMEWORKS, ALGORITHMS, GRAPHS, trials=2)
    return matrix, slowdown_matrix(matrix)


def _representative_cell():
    return build_matrix(("graphit",), ("sssp",), ("RD",), trials=1)


def test_table4_running_times(benchmark, table4, save_table):
    benchmark.pedantic(_representative_cell, rounds=1, iterations=1)
    matrix, slowdowns = table4

    sections = []
    for algorithm in ALGORITHMS:
        rows = []
        for framework in FRAMEWORKS:
            row = [framework]
            for dataset in GRAPHS:
                cell = matrix[(framework, algorithm, dataset)]
                if cell is None:
                    row.append("-")
                else:
                    row.append(
                        f"{fmt(cell.simulated_time)} ({cell.wall_time * 1000:.0f}ms)"
                    )
            rows.append(row)
        sections.append(
            format_table(
                ["framework"] + list(GRAPHS),
                rows,
                title=f"Table 4 [{algorithm}]: simulated parallel time "
                f"(wall-clock in parens)",
            )
        )
    save_table("table4_running_times", "\n\n".join(sections))

    # --- Shape assertions -------------------------------------------------
    # Support matrix: the gray cells of the paper.
    assert matrix[("gapbs", "kcore", "LJ")] is None
    assert matrix[("galois", "wbfs", "LJ")] is None
    assert matrix[("ligra", "setcover", "LJ")] is None
    # A* only runs on road graphs (needs coordinates).
    assert matrix[("graphit", "astar", "LJ")] is None
    assert matrix[("graphit", "astar", "RD")] is not None

    # GraphIt wins or nearly wins the overwhelming majority of cells.
    supported = [
        value
        for (framework, algorithm, dataset), value in slowdowns.items()
        if framework == "graphit" and value is not None
    ]
    near_best = sum(1 for value in supported if value <= 1.06)
    assert near_best >= 0.8 * len(supported), (
        f"graphit must be within 6% of the best in most cells "
        f"({near_best}/{len(supported)})"
    )

    # Ordered beats unordered everywhere both run.
    for algorithm in ("sssp", "wbfs", "kcore"):
        for dataset in GRAPHS:
            ordered = matrix[("graphit", algorithm, dataset)]
            unordered = matrix[("graphit_unordered", algorithm, dataset)]
            if ordered is None or unordered is None:
                continue
            assert ordered.simulated_time < unordered.simulated_time, (
                f"ordered {algorithm} must beat unordered on {dataset}"
            )

    # PPSP beats full SSSP on road graphs (early exit, Section 6.2).
    for dataset in ROAD_GRAPHS[1:]:
        ppsp_cell = matrix[("graphit", "ppsp", dataset)]
        sssp_cell = matrix[("graphit", "sssp", dataset)]
        assert ppsp_cell.simulated_time <= sssp_cell.simulated_time * 1.05

    benchmark.extra_info["graphit_near_best_fraction"] = round(
        near_best / len(supported), 3
    )
