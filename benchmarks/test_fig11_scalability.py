"""Figure 11: scalability of SSSP across thread counts (TW, FT, RD).

The paper's Figure 11 plots running time vs core count (1..48) for GraphIt,
GAPBS, and Julienne.  The reproduction sweeps the virtual-thread count and
reports the simulated parallel time, which is exactly what the cost model
exists for: per-round critical-path work shrinks with more threads while
synchronization cost does not.

Expected shape: all frameworks scale on the social graphs (speedup grows
with threads); on the road network GraphIt (bucket fusion) keeps a clear
lead over GAPBS and Julienne at high thread counts, and Julienne scales
worst (the paper: "Julienne's overheads ... make it hard to scale on the
RoadUSA graph").
"""

import dataclasses
import time

import numpy as np
import pytest

from conftest import fmt

from repro.algorithms import run_framework
from repro.eval import datasets, format_table

GRAPHS = ("TW", "FT", "RD")
FRAMEWORKS = ("graphit", "gapbs", "julienne")
THREADS = (1, 2, 4, 8, 16, 24)


def run_series(dataset: str, framework: str) -> dict[int, float]:
    graph = datasets.load(dataset)
    source = datasets.sources_for(dataset, 1)[0]
    delta = datasets.best_delta(dataset)
    series = {}
    for threads in THREADS:
        result = run_framework(
            framework, "sssp", graph, source, delta=delta, num_threads=threads
        )
        series[threads] = result.stats.simulated_time()
    return series


@pytest.fixture(scope="module")
def figure11():
    return {
        dataset: {framework: run_series(dataset, framework) for framework in FRAMEWORKS}
        for dataset in GRAPHS
    }


def test_figure11_scalability(benchmark, figure11, save_table):
    benchmark.pedantic(
        run_framework,
        args=("graphit", "sssp", datasets.load("RD")),
        kwargs={
            "source": datasets.sources_for("RD", 1)[0],
            "delta": datasets.best_delta("RD"),
            "num_threads": 24,
        },
        rounds=1,
        iterations=1,
    )

    sections = []
    for dataset in GRAPHS:
        rows = []
        for framework in FRAMEWORKS:
            series = figure11[dataset][framework]
            rows.append(
                [framework]
                + [fmt(series[threads]) for threads in THREADS]
                + [fmt(series[1] / series[THREADS[-1]], 2) + "x"]
            )
        sections.append(
            format_table(
                ["framework"] + [f"{t}T" for t in THREADS] + ["speedup@24T"],
                rows,
                title=f"Figure 11 [{dataset}]: SSSP simulated time vs threads",
            )
        )
    save_table("fig11_scalability", "\n\n".join(sections))

    def speedup(dataset, framework):
        series = figure11[dataset][framework]
        return series[1] / series[THREADS[-1]]

    # Social graphs: everyone scales.
    for dataset in ("TW", "FT"):
        for framework in FRAMEWORKS:
            assert speedup(dataset, framework) > 2.0, (
                f"{framework} must scale on {dataset}"
            )
    # Road network: GraphIt stays fastest at high thread counts, and
    # Julienne scales worst.
    road = figure11["RD"]
    assert road["graphit"][24] < road["gapbs"][24]
    assert road["graphit"][24] < road["julienne"][24]
    assert speedup("RD", "julienne") <= speedup("RD", "graphit") * 1.05
    benchmark.extra_info["road_speedup_at_24T"] = {
        framework: round(speedup("RD", framework), 2) for framework in FRAMEWORKS
    }


# ----------------------------------------------------------------------
# Real wall-clock: the simulated sweep above models scalability; this
# test runs the actual thread-backed engine (execution="parallel") and
# measures real elapsed time against the serial engine.
# ----------------------------------------------------------------------

_PARALLEL_ONLY = (
    "execution",
    "parallel_rounds",
    "barrier_waits",
    "barrier_wait_time",
    "worker_wall_time",
)


def _deterministic_stats(stats):
    dump = dataclasses.asdict(stats)
    dump.pop("_current_work", None)
    for key in _PARALLEL_ONLY:
        dump.pop(key, None)
    return dump


def test_figure11_real_wall_clock_parallel_engine(save_table):
    """Wall-clock sanity for the real parallel engine (Figure 11's axis,
    measured rather than simulated).

    On a many-core host the 4-worker run should beat serial; this container
    may expose a single core, where numpy's GIL-releasing gathers can only
    overlap, not multiply.  So the hard assertions are about correctness
    and bounded overhead — the engine must engage, stay bit-identical to
    the serial engine, and cost at most a small constant factor in the
    worst case — while the measured times are recorded for inspection.
    """
    graph = datasets.load("TW")
    source = datasets.sources_for("TW", 1)[0]
    delta = datasets.best_delta("TW")

    def run(execution, workers):
        started = time.perf_counter()
        result = run_framework(
            "graphit",
            "sssp",
            graph,
            source,
            delta=delta,
            num_threads=workers,
            execution=execution,
        )
        return time.perf_counter() - started, result

    # Warm once (numpy allocator, thread-pool spin-up), then measure.
    run("parallel", 4)
    serial_time, serial = run("serial", 4)
    times = {"serial": serial_time}
    for workers in (1, 2, 4):
        wall, parallel = run("parallel", workers)
        times[f"parallel@{workers}"] = wall
        assert np.array_equal(parallel.distances, serial.distances), (
            f"parallel engine at {workers} workers diverged from serial"
        )
        if workers > 1:
            # Same partitioning, real threads: every deterministic counter
            # must survive the move to the thread-backed engine... but only
            # at matching thread counts (partitioning follows num_threads).
            if workers == 4:
                assert _deterministic_stats(parallel.stats) == _deterministic_stats(
                    serial.stats
                )
            assert parallel.stats.parallel_rounds > 0, (
                "the thread-backed engine never engaged"
            )
            assert parallel.stats.barrier_waits == parallel.stats.parallel_rounds
            assert parallel.stats.barrier_wait_time >= 0.0
        else:
            # One worker: the engine must fall back to inline execution.
            assert parallel.stats.parallel_rounds == 0

    # Bounded overhead: even on a single exposed core, driving real threads
    # must not blow up wall-clock by more than a small constant factor.
    assert times["parallel@4"] < max(times["serial"], 1e-3) * 8.0, times

    rows = [[label, fmt(wall, 4)] for label, wall in sorted(times.items())]
    save_table(
        "fig11_real_wall_clock",
        format_table(
            ["engine", "seconds"],
            rows,
            title="Figure 11 (real): SSSP wall-clock, serial vs thread-backed",
        ),
    )
