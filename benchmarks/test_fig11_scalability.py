"""Figure 11: scalability of SSSP across thread counts (TW, FT, RD).

The paper's Figure 11 plots running time vs core count (1..48) for GraphIt,
GAPBS, and Julienne.  The reproduction sweeps the virtual-thread count and
reports the simulated parallel time, which is exactly what the cost model
exists for: per-round critical-path work shrinks with more threads while
synchronization cost does not.

Expected shape: all frameworks scale on the social graphs (speedup grows
with threads); on the road network GraphIt (bucket fusion) keeps a clear
lead over GAPBS and Julienne at high thread counts, and Julienne scales
worst (the paper: "Julienne's overheads ... make it hard to scale on the
RoadUSA graph").
"""

import pytest

from conftest import fmt

from repro.algorithms import run_framework
from repro.eval import datasets, format_table

GRAPHS = ("TW", "FT", "RD")
FRAMEWORKS = ("graphit", "gapbs", "julienne")
THREADS = (1, 2, 4, 8, 16, 24)


def run_series(dataset: str, framework: str) -> dict[int, float]:
    graph = datasets.load(dataset)
    source = datasets.sources_for(dataset, 1)[0]
    delta = datasets.best_delta(dataset)
    series = {}
    for threads in THREADS:
        result = run_framework(
            framework, "sssp", graph, source, delta=delta, num_threads=threads
        )
        series[threads] = result.stats.simulated_time()
    return series


@pytest.fixture(scope="module")
def figure11():
    return {
        dataset: {framework: run_series(dataset, framework) for framework in FRAMEWORKS}
        for dataset in GRAPHS
    }


def test_figure11_scalability(benchmark, figure11, save_table):
    benchmark.pedantic(
        run_framework,
        args=("graphit", "sssp", datasets.load("RD")),
        kwargs={
            "source": datasets.sources_for("RD", 1)[0],
            "delta": datasets.best_delta("RD"),
            "num_threads": 24,
        },
        rounds=1,
        iterations=1,
    )

    sections = []
    for dataset in GRAPHS:
        rows = []
        for framework in FRAMEWORKS:
            series = figure11[dataset][framework]
            rows.append(
                [framework]
                + [fmt(series[threads]) for threads in THREADS]
                + [fmt(series[1] / series[THREADS[-1]], 2) + "x"]
            )
        sections.append(
            format_table(
                ["framework"] + [f"{t}T" for t in THREADS] + ["speedup@24T"],
                rows,
                title=f"Figure 11 [{dataset}]: SSSP simulated time vs threads",
            )
        )
    save_table("fig11_scalability", "\n\n".join(sections))

    def speedup(dataset, framework):
        series = figure11[dataset][framework]
        return series[1] / series[THREADS[-1]]

    # Social graphs: everyone scales.
    for dataset in ("TW", "FT"):
        for framework in FRAMEWORKS:
            assert speedup(dataset, framework) > 2.0, (
                f"{framework} must scale on {dataset}"
            )
    # Road network: GraphIt stays fastest at high thread counts, and
    # Julienne scales worst.
    road = figure11["RD"]
    assert road["graphit"][24] < road["gapbs"][24]
    assert road["graphit"][24] < road["julienne"][24]
    assert speedup("RD", "julienne") <= speedup("RD", "graphit") * 1.05
    benchmark.extra_info["road_speedup_at_24T"] = {
        framework: round(speedup("RD", framework), 2) for framework in FRAMEWORKS
    }
