"""Section 5.1's bucketing-interface redesign, measured.

The paper improves Julienne's lazy priority queue: "Julienne's original
interface invokes a lambda function call to compute the priority.  The new
priority-based extension computes the priorities using a priority vector
and Δ value ..., eliminating extra function calls."  The paper credits this
redesign for the k-core and SetCover wins over Julienne.

This driver measures exactly that: the same lazy queue processes identical
k-core-like update traffic once through the priority-vector interface
(vectorized reads at buffer reduction) and once through a per-vertex
priority lambda.  The measured quantity is *wall-clock* time — the function
call overhead is real in both the paper's C++ and this Python.

Expected shape: the priority-vector interface is faster, and the two
interfaces produce identical bucket behaviour (same pops, same order).
"""

import time

import numpy as np
import pytest

from conftest import fmt

from repro.buckets import LazyBucketQueue
from repro.eval import datasets, format_table

ROUNDS_OF_TRAFFIC = 40
UPDATES_PER_ROUND = 4000


def drive(priority_fn_factory):
    """Feed identical buffered-update traffic through a lazy queue."""
    graph = datasets.load("TW", symmetric=True)
    n = graph.num_vertices
    rng = np.random.default_rng(7)
    priorities = graph.out_degrees().astype(np.int64).copy()
    queue = LazyBucketQueue(
        priorities,
        delta=1,
        priority_fn=priority_fn_factory(priorities),
    )
    pops: list[tuple[int, int]] = []
    started = time.perf_counter()
    for _ in range(ROUNDS_OF_TRAFFIC):
        bucket = queue.dequeue_ready_set()
        if bucket.size == 0:
            break
        pops.append((queue.get_current_priority(), int(bucket.size)))
        # Synthetic decrement traffic: random vertices lose degree (clamped
        # at the current priority), then get re-buffered — the k-core
        # pattern without the graph traversal, isolating the interface.
        targets = rng.integers(0, n, size=UPDATES_PER_ROUND)
        vertices, counts = np.unique(targets, return_counts=True)
        queue.apply_histogram_updates(
            vertices, counts.astype(np.int64), -1, queue.get_current_priority()
        )
    elapsed = time.perf_counter() - started
    return elapsed, pops


@pytest.fixture(scope="module")
def interfaces():
    vector_time, vector_pops = drive(lambda priorities: None)
    lambda_time, lambda_pops = drive(
        lambda priorities: (lambda v: priorities[v])
    )
    return vector_time, vector_pops, lambda_time, lambda_pops


def test_interface_overhead(benchmark, interfaces, save_table):
    vector_time, vector_pops, lambda_time, lambda_pops = interfaces
    benchmark.pedantic(drive, args=(lambda priorities: None,), rounds=1, iterations=1)

    table = format_table(
        ["interface", "wall time (ms)", "relative"],
        [
            ["priority vector (this paper)", fmt(vector_time * 1000, 1), "1.00"],
            [
                "per-vertex lambda (Julienne's original)",
                fmt(lambda_time * 1000, 1),
                fmt(lambda_time / vector_time, 2),
            ],
        ],
        title="Section 5.1: lazy bucketing interface redesign "
        f"({ROUNDS_OF_TRAFFIC} reductions x {UPDATES_PER_ROUND} updates)",
    )
    save_table("interface_overhead", table)

    # Identical semantics, different cost.
    assert vector_pops == lambda_pops
    assert lambda_time > vector_time, (
        "the lambda interface must pay for its per-vertex function calls"
    )
    benchmark.extra_info["lambda_over_vector"] = round(lambda_time / vector_time, 2)
