"""Quickstart: ordered graph processing with the priority-queue extension.

Runs Δ-stepping SSSP three ways on a synthetic social network:

1. through the high-level library API under different schedules,
2. through the DSL compiler (the paper's Figure 3 program), and
3. against the unordered Bellman-Ford baseline,

printing the execution profile (rounds, synchronizations, simulated parallel
time) that explains why the schedules differ.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Schedule, bellman_ford, compile_program, dijkstra_reference, sssp
from repro.graph import rmat
from repro.lang import program_source

graph = rmat(12, 16, seed=7)
source = int(np.argmax(graph.out_degrees()))
print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
print(f"source: {source} (out-degree {graph.out_degree(source)})\n")

reference = dijkstra_reference(graph, source)

# ----------------------------------------------------------------------
# 1. Library API under three schedules (Table 2's strategies)
# ----------------------------------------------------------------------
print("=== library API: one algorithm, three schedules ===")
for strategy in ("lazy", "eager_no_fusion", "eager_with_fusion"):
    schedule = Schedule(priority_update=strategy, delta=32, num_threads=8)
    result = sssp(graph, source, schedule)
    assert np.array_equal(result.distances, reference)
    stats = result.stats
    print(
        f"{strategy:18s} rounds={stats.rounds:4d} syncs={stats.global_syncs:4d} "
        f"bucket_inserts={stats.bucket_inserts:6d} "
        f"simulated_time={stats.simulated_time():10.0f}"
    )

# ----------------------------------------------------------------------
# 2. Unordered baseline (what Figure 1 compares against)
# ----------------------------------------------------------------------
unordered = bellman_ford(graph, source, num_threads=8)
assert np.array_equal(unordered.distances, reference)
print(
    f"\n{'bellman-ford':18s} rounds={unordered.stats.rounds:4d} "
    f"relaxations={unordered.stats.relaxations} "
    f"simulated_time={unordered.stats.simulated_time():10.0f}"
)

# ----------------------------------------------------------------------
# 3. The same algorithm through the DSL compiler (Figure 3)
# ----------------------------------------------------------------------
print("\n=== DSL program (Figure 3) compiled with the Python backend ===")
program = compile_program(
    program_source("sssp"),
    Schedule(priority_update="eager_with_fusion", delta=32, num_threads=4),
)
run = program.run(["sssp", "<in-memory>", str(source)], graph=graph)
assert np.array_equal(run.vector("dist"), reference)
print(
    f"compiled DSL run: rounds={run.stats.rounds}, "
    f"fused_rounds={run.stats.fused_rounds}, distances verified against Dijkstra"
)
print("\nfirst lines of the generated Python module:")
for line in program.source_text.splitlines()[:14]:
    print("   ", line)
