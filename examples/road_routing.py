"""Road-network routing: PPSP, A*, bucket fusion, and Δ selection.

Road networks are the workload where the paper's contributions shine: large
diameters mean thousands of tiny buckets, so synchronization dominates and
bucket fusion pays off (Table 6), and the right coarsening factor Δ is large
(Section 6.2).  This example routes point-to-point queries on a synthetic
road network and shows each effect.

Run:  python examples/road_routing.py
"""

import numpy as np

from repro import Schedule, astar, dijkstra_reference, ppsp, sssp
from repro.graph import road_grid

graph = road_grid(70, 80, seed=11)
print(
    f"road network: {graph.num_vertices} vertices, {graph.num_edges} edges, "
    f"coordinates attached"
)
reference = dijkstra_reference(graph, 0)

# ----------------------------------------------------------------------
# Bucket fusion on a large-diameter graph (the Table 6 effect)
# ----------------------------------------------------------------------
print("\n=== bucket fusion (SSSP from a corner) ===")
for strategy in ("eager_no_fusion", "eager_with_fusion"):
    schedule = Schedule(priority_update=strategy, delta=2048, num_threads=8)
    result = sssp(graph, 0, schedule)
    assert np.array_equal(result.distances, reference)
    print(
        f"{strategy:18s} rounds={result.stats.rounds:5d} "
        f"(+{result.stats.fused_rounds} fused) "
        f"simulated_time={result.stats.simulated_time():10.0f}"
    )

# ----------------------------------------------------------------------
# Δ selection (Section 6.2: road networks want large Δ)
# ----------------------------------------------------------------------
print("\n=== delta selection ===")
for delta in (16, 256, 2048, 16384):
    schedule = Schedule(
        priority_update="eager_with_fusion", delta=delta, num_threads=8
    )
    result = sssp(graph, 0, schedule)
    print(
        f"delta={delta:6d} rounds={result.stats.rounds:5d} "
        f"relaxations={result.stats.relaxations:7d} "
        f"simulated_time={result.stats.simulated_time():10.0f}"
    )

# ----------------------------------------------------------------------
# Point-to-point queries: PPSP vs A*
# ----------------------------------------------------------------------
print("\n=== point-to-point queries ===")
# A* needs a Δ fine enough that the heuristic separates f-values into
# different buckets; with a huge Δ everything shares one bucket and the
# heuristic has no traction (the paper: A* is "sometimes slower than PPSP").
target = graph.num_vertices - 1  # the opposite corner
schedule = Schedule(priority_update="eager_with_fusion", delta=64, num_threads=8)
point = ppsp(graph, 0, target, schedule)
informed = astar(graph, 0, target, schedule)
assert point.target_distance == reference[target]
assert informed.target_distance == reference[target]
print(f"shortest 0 -> {target}: {point.target_distance}")
print(
    f"ppsp : processed {point.stats.vertices_processed:6d} vertices, "
    f"{point.stats.relaxations} relaxations"
)
print(
    f"astar: processed {informed.stats.vertices_processed:6d} vertices, "
    f"{informed.stats.relaxations} relaxations "
    f"(the Euclidean heuristic prunes the search)"
)

nearby = graph.num_vertices // 3
early = ppsp(graph, 0, nearby, schedule)
full = sssp(graph, 0, schedule)
print(
    f"\nearly exit: PPSP to a nearby vertex used {early.stats.rounds} rounds "
    f"vs {full.stats.rounds} for full SSSP"
)
