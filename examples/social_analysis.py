"""Social-network analysis: k-core decomposition and approximate set cover.

These are the paper's two strict-priority algorithms, where the *lazy*
bucket update strategies win (Table 7): k-core floods each vertex with as
many priority decrements as it has neighbours on the frontier, so buffering
them and applying one histogram-reduced update per vertex avoids both
bucket-churn and atomic contention.

Run:  python examples/social_analysis.py
"""

import numpy as np

from repro import Schedule, kcore, kcore_reference, setcover, unordered_kcore
from repro.algorithms import greedy_setcover_reference
from repro.graph import rmat

graph = rmat(12, 20, seed=9).symmetrized()
print(f"social network (symmetrized): {graph.num_vertices} vertices, {graph.num_edges} edges")

# ----------------------------------------------------------------------
# k-core under the three schedules (the Table 7 comparison)
# ----------------------------------------------------------------------
print("\n=== k-core decomposition: eager vs lazy vs lazy+histogram ===")
reference = kcore_reference(graph)
for strategy in ("eager_no_fusion", "lazy", "lazy_constant_sum"):
    result = kcore(graph, Schedule(priority_update=strategy, num_threads=8))
    assert np.array_equal(result.coreness, reference)
    stats = result.stats
    print(
        f"{strategy:18s} bucket_inserts={stats.bucket_inserts:8d} "
        f"atomics={stats.atomic_ops:8d} "
        f"simulated_time={stats.simulated_time():11.0f}"
    )
best = kcore(graph)  # default: lazy_constant_sum
print(f"\ndegeneracy (max coreness): {best.degeneracy}")
values, counts = np.unique(best.coreness, return_counts=True)
top = ", ".join(f"{v}-core x{c}" for v, c in list(zip(values, counts))[-4:])
print(f"largest cores: {top}")

# ----------------------------------------------------------------------
# Ordered vs unordered peeling (the Figure 1 effect)
# ----------------------------------------------------------------------
unordered = unordered_kcore(graph, num_threads=8)
assert np.array_equal(unordered.coreness, reference)
print(
    f"\nordered peeling total work:   {best.stats.total_work:10d}\n"
    f"unordered peeling total work: {unordered.stats.total_work:10d} "
    f"({unordered.stats.total_work / best.stats.total_work:.1f}x more)"
)

# ----------------------------------------------------------------------
# Approximate set cover (bucketed by cost-per-element)
# ----------------------------------------------------------------------
print("\n=== approximate set cover ===")
cover = setcover(graph, seed=3)
greedy = greedy_setcover_reference(graph)
assert cover.fully_covered
print(
    f"bucketed parallel cover: {cover.cover_size} sets in "
    f"{cover.stats.rounds} rounds"
)
print(f"sequential greedy cover: {greedy.size} sets")
print(
    f"quality ratio: {cover.cover_size / greedy.size:.3f} "
    f"(the paper's algorithm matches greedy up to constant factors)"
)
