"""Autotuning schedules (Section 5.3).

The best schedule depends on the graph: social networks favour small Δ and
tolerate lazy updates; road networks need large Δ and bucket fusion.  This
example lets the autotuner discover that, on both graph classes, and
compares its pick against the hand-tuned schedules used by the evaluation.

Run:  python examples/autotune_schedules.py
"""

import numpy as np

from repro import Schedule, autotune, sssp
from repro.graph import rmat, road_grid

WORKLOADS = {
    "social (R-MAT)": (rmat(11, 16, seed=5), Schedule(
        priority_update="eager_with_fusion", delta=32, num_threads=8)),
    "road (grid)": (road_grid(46, 50, seed=5), Schedule(
        priority_update="eager_with_fusion", delta=2048, num_threads=8)),
}

for label, (graph, hand_schedule) in WORKLOADS.items():
    source = int(np.argmax(graph.out_degrees()))
    result = autotune("sssp", graph, source=source, max_trials=35, seed=2)
    hand = sssp(graph, source, hand_schedule).stats.simulated_time()
    best = result.best_schedule
    print(f"=== {label}: {graph.num_vertices} vertices ===")
    print(
        f"searched {result.num_trials} of ~{result.space_size} schedules "
        f"in {result.elapsed_seconds:.1f}s"
    )
    print(
        f"autotuned: {best.priority_update}, delta={best.delta}, "
        f"direction={best.direction} -> cost {result.best_cost:,.0f}"
    )
    print(
        f"hand-tuned: {hand_schedule.priority_update}, "
        f"delta={hand_schedule.delta} -> cost {hand:,.0f}"
    )
    ratio = result.best_cost / hand
    print(f"autotuned / hand-tuned = {ratio:.2f}\n")
