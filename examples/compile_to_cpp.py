"""Reproduce Figure 9: one algorithm, three schedules, three C++ programs.

Compiles the Δ-stepping SSSP program of Figure 3 under

    (a) lazy bucket update with SparsePush traversal,
    (b) lazy bucket update with DensePull traversal, and
    (c) eager bucket update (plus a fused variant),

writes the generated C++ next to this script, prints the schedule-dependent
differences, and — when g++ is available — compiles and runs all variants on
a small road network, checking they agree.

Run:  python examples/compile_to_cpp.py
"""

import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro import Schedule, compile_program, dijkstra_reference
from repro.graph import road_grid, save_edge_list
from repro.lang import program_source

SCHEDULES = {
    "lazy_sparsepush": Schedule(priority_update="lazy", delta=4),
    "lazy_densepull": Schedule(
        priority_update="lazy", delta=4, direction="DensePull"
    ),
    "eager": Schedule(priority_update="eager_no_fusion", delta=4),
    "eager_fusion": Schedule(priority_update="eager_with_fusion", delta=4),
}

MARKERS = {
    "lazy_sparsepush": ["new LazyPriorityQueue", "atomicWriteMin", "bufferVertex"],
    "lazy_densepull": ["TransposeGraph", "__frontier_map"],
    "eager": ["local_bins", "shared_indexes", "#pragma omp parallel"],
    "eager_fusion": ["bucket fusion (Figure 7)"],
}

out_dir = tempfile.mkdtemp(prefix="repro_fig9_")
sources = {}
for name, schedule in SCHEDULES.items():
    program = compile_program(program_source("sssp"), schedule, backend="cpp")
    path = os.path.join(out_dir, f"sssp_{name}.cpp")
    program.write(path)
    sources[name] = path
    lines = len(program.source_text.splitlines())
    found = [marker for marker in MARKERS[name] if marker in program.source_text]
    print(f"{name:16s} -> {path} ({lines} lines)")
    print(f"{'':16s}    schedule-specific constructs: {', '.join(found)}")

gxx = shutil.which("g++")
if gxx is None:
    print("\ng++ not found; skipping compile-and-run verification")
else:
    print("\ncompiling and running all variants on a 20x22 road grid ...")
    graph = road_grid(20, 22, seed=3)
    reference = dijkstra_reference(graph, 0)
    graph_file = os.path.join(out_dir, "road.el")
    save_edge_list(graph, graph_file)
    for name, cpp in sources.items():
        exe = os.path.join(out_dir, name)
        subprocess.run(
            [gxx, "-O2", "-std=c++17", "-fopenmp", "-o", exe, cpp], check=True
        )
        out = os.path.join(out_dir, f"{name}.out")
        env = dict(os.environ, REPRO_OUTPUT=out, OMP_NUM_THREADS="4")
        subprocess.run([exe, graph_file, "0"], check=True, env=env)
        with open(out) as handle:
            values = handle.read().split()
        dist = np.array([int(x) for x in values[1:]], dtype=np.int64)
        status = "matches Dijkstra" if np.array_equal(dist, reference) else "MISMATCH"
        print(f"  {name:16s} {status}")
print(f"\ngenerated sources left in {out_dir}")
