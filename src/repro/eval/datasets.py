"""Synthetic stand-ins for the paper's datasets (Table 3).

The paper evaluates on five social/web graphs (LiveJournal, Orkut, Twitter,
Friendster, WebGraph) and three road networks (Massachusetts, Germany,
RoadUSA).  Those range up to 3.6 billion edges; this reproduction generates
structurally analogous graphs at laptop scale:

- Social/web graphs → R-MAT with the Graph500 skew: heavy-tailed degrees,
  small diameter, dense cores.  Relative sizes and densities mirror the
  paper's table (Orkut densest, Friendster largest, etc.).
- Road networks → jittered grids: near-planar, uniform low degree, large
  diameter, Euclidean edge weights, and coordinates for A*.

Weight conventions follow Table 4's caption: social/web graphs get uniform
integer weights in [1, 1000); the wBFS runs use [1, log n); road networks
keep their "original" (Euclidean) weights.

Every dataset is generated deterministically from a fixed seed and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import GraphError
from ..graph.csr import CSRGraph
from ..graph.generators import assign_log_weights, assign_uniform_weights, rmat, road_grid

__all__ = [
    "Dataset",
    "DATASETS",
    "SOCIAL_GRAPHS",
    "WEB_GRAPHS",
    "ROAD_GRAPHS",
    "load",
    "best_delta",
    "sources_for",
    "pairs_for",
]


@dataclass(frozen=True)
class Dataset:
    """Registry entry describing one stand-in graph."""

    name: str
    paper_name: str
    kind: str  # "social", "web", or "road"
    generator: str  # "rmat" or "road_grid"
    params: tuple  # generator-specific parameters
    seed: int


SOCIAL_GRAPHS = ("OK", "LJ", "TW", "FT")
WEB_GRAPHS = ("WB",)
ROAD_GRAPHS = ("MA", "GE", "RD")

# Relative scale mirrors Table 3: OK densest, LJ smallest social, TW/FT/WB
# large, MA tiny road, GE medium, RD largest road.
DATASETS: dict[str, Dataset] = {
    "OK": Dataset("OK", "Orkut", "social", "rmat", (11, 36), seed=11),
    "LJ": Dataset("LJ", "LiveJournal", "social", "rmat", (12, 12), seed=12),
    "TW": Dataset("TW", "Twitter", "social", "rmat", (13, 24), seed=13),
    "FT": Dataset("FT", "Friendster", "social", "rmat", (13, 30), seed=14),
    "WB": Dataset("WB", "WebGraph", "web", "rmat", (13, 20), seed=15),
    "MA": Dataset("MA", "Massachusetts", "road", "road_grid", (20, 22), seed=21),
    "GE": Dataset("GE", "Germany", "road", "road_grid", (80, 100), seed=22),
    "RD": Dataset("RD", "RoadUSA", "road", "road_grid", (110, 140), seed=23),
}

# Hand-tuned priority-coarsening factors (Section 6.2, "Delta Selection"):
# small deltas for social networks, large deltas for road networks.  Road
# deltas scale with the weight magnitude (edge weights ~ coordinate_scale).
# Values found by sweeping Δ on the stand-ins (see
# benchmarks/test_delta_selection.py); they sit in the same class-dependent
# regimes as the paper's (small for social, large for road).
BEST_DELTA: dict[str, int] = {
    "OK": 32,
    "LJ": 64,
    "TW": 16,
    "FT": 16,
    "WB": 16,
    "MA": 4096,
    "GE": 1024,
    "RD": 512,
}


def best_delta(name: str) -> int:
    """The hand-tuned Δ for a dataset (what Table 4's schedules use)."""
    _check(name)
    return BEST_DELTA[name]


def _check(name: str) -> None:
    if name not in DATASETS:
        raise GraphError(
            f"unknown dataset {name!r}; expected one of {tuple(DATASETS)}"
        )


@lru_cache(maxsize=None)
def load(name: str, weights: str = "default", symmetric: bool = False) -> CSRGraph:
    """Load (generate) a dataset.

    Parameters
    ----------
    weights:
        ``"default"`` — [1, 1000) for social/web, original Euclidean for
        roads; ``"log"`` — [1, log n) (the wBFS convention); ``"original"``
        — road weights (only valid for road graphs).
    symmetric:
        Symmetrize the graph (the k-core / SetCover convention).
    """
    _check(name)
    spec = DATASETS[name]
    if spec.generator == "rmat":
        scale, edge_factor = spec.params
        graph = rmat(scale, edge_factor, seed=spec.seed, weights=None)
        if weights in ("default", "uniform"):
            graph = assign_uniform_weights(graph, 1, 1000, seed=spec.seed + 100)
        elif weights == "log":
            graph = assign_log_weights(graph, seed=spec.seed + 200)
        elif weights == "original":
            raise GraphError("social/web graphs have no original weights")
        else:
            raise GraphError(f"unknown weight convention {weights!r}")
    else:
        rows, cols = spec.params
        graph = road_grid(rows, cols, seed=spec.seed)
        if weights == "log":
            graph = assign_log_weights(graph, seed=spec.seed + 200)
        elif weights not in ("default", "original"):
            raise GraphError(f"unknown weight convention {weights!r}")
    if symmetric:
        graph = graph.symmetrized()
    return graph


def sources_for(name: str, count: int = 3, seed: int = 7) -> list[int]:
    """Deterministic start vertices: the highest-out-degree vertex plus
    random picks among vertices with non-trivial out-degree (the paper
    averages SSSP/wBFS over 10 sources)."""
    graph = load(name)
    degrees = graph.out_degrees()
    rng = np.random.default_rng(seed)
    eligible = np.flatnonzero(degrees > 0)
    if eligible.size == 0:
        raise GraphError(f"dataset {name} has no vertex with out-edges")
    picks = [int(eligible[np.argmax(degrees[eligible])])]
    while len(picks) < count:
        candidate = int(rng.choice(eligible))
        if candidate not in picks:
            picks.append(candidate)
    return picks[:count]


def pairs_for(name: str, count: int = 3, seed: int = 9) -> list[tuple[int, int]]:
    """Deterministic source/destination pairs with a spread of distances
    (the paper's "balanced selection of different distances")."""
    graph = load(name)
    sources = sources_for(name, count, seed)
    rng = np.random.default_rng(seed + 1)
    n = graph.num_vertices
    pairs = []
    for index, source in enumerate(sources):
        if DATASETS[name].kind == "road":
            # Spread targets across the grid: near, middle, far corners.
            offsets = [n - 1, n // 2, n // 3 + 1]
            target = offsets[index % len(offsets)]
        else:
            target = int(rng.integers(0, n))
        if target == source:
            target = (target + 1) % n
        pairs.append((source, target))
    return pairs
