"""Line counting for Table 5.

The paper compares the algorithm line counts of GraphIt-with-extension
against GAPBS, Galois, and Julienne.  We can measure our own DSL programs
directly; the comparison frameworks' counts are the published numbers from
Table 5 (we cannot re-count code we did not port).  The regenerated table
therefore shows *measured* counts for this reproduction's DSL next to the
paper's published counts for every system, including GraphIt's own — so the
claim "GraphIt needs several times fewer lines" can be checked against both.
"""

from __future__ import annotations

from ..lang.programs import ALL_PROGRAMS

__all__ = ["count_lines", "dsl_line_counts", "PAPER_TABLE5"]

# Table 5 of the paper (— marks algorithms a framework does not provide).
PAPER_TABLE5: dict[str, dict[str, int | None]] = {
    "sssp": {"graphit": 28, "gapbs": 77, "galois": 90, "julienne": 65},
    "ppsp": {"graphit": 24, "gapbs": 80, "galois": 99, "julienne": 103},
    "astar": {"graphit": 74, "gapbs": 105, "galois": 139, "julienne": 84},
    "kcore": {"graphit": 24, "gapbs": None, "galois": None, "julienne": 35},
    "setcover": {"graphit": 70, "gapbs": None, "galois": None, "julienne": 72},
}


def count_lines(source: str) -> int:
    """Non-blank, non-comment source lines (the paper's convention)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(("%", "//")):
            continue
        count += 1
    return count


def dsl_line_counts() -> dict[str, int]:
    """Measured line counts of this reproduction's DSL programs."""
    return {name: count_lines(source) for name, source in ALL_PROGRAMS.items()}
