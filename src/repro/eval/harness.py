"""Measurement harness for the evaluation (Section 6).

``run_cell`` executes one (framework, algorithm, dataset) cell under the
paper's conventions — Table 4's weight distributions, symmetrized inputs
for k-core/SetCover, averaging over several sources (SSSP/wBFS) or
source-destination pairs (PPSP/A*) — and reports both wall-clock and
simulated parallel time.  The table/figure builders assemble the cells the
benchmark drivers print.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..algorithms.frameworks import ALGORITHMS, FRAMEWORKS, run_framework, supports
from ..errors import GraphItError
from ..obs import get_tracer, span as trace_span, tracing, write_chrome_trace
from ..runtime.stats import RuntimeStats
from . import datasets

__all__ = [
    "Measurement",
    "run_cell",
    "build_matrix",
    "slowdown_matrix",
    "format_table",
]


@dataclass
class Measurement:
    """Aggregated result of one framework/algorithm/dataset cell."""

    framework: str
    algorithm: str
    dataset: str
    wall_time: float
    simulated_time: float
    runs: int
    rounds: float
    relaxations: float
    extra: dict = field(default_factory=dict)


def _workloads(algorithm: str, dataset: str, trials: int):
    """The (graph, source, target) workloads for one cell."""
    if algorithm in ("kcore", "setcover"):
        graph = datasets.load(dataset, symmetric=True)
        return [(graph, 0, None)]
    weights = "log" if algorithm == "wbfs" else "default"
    graph = datasets.load(dataset, weights=weights)
    if algorithm in ("ppsp", "astar"):
        return [
            (graph, source, target)
            for source, target in datasets.pairs_for(dataset, trials)
        ]
    return [(graph, source, None) for source in datasets.sources_for(dataset, trials)]


def run_cell(
    framework: str,
    algorithm: str,
    dataset: str,
    trials: int = 2,
    num_threads: int = 8,
    delta: int | None = None,
    execution: str = "serial",
    trace_path: str | None = None,
) -> Measurement | None:
    """Run one cell; ``None`` when the framework lacks the algorithm or the
    dataset lacks what the algorithm needs (A* off road graphs).

    ``trace_path`` drops a Chrome-trace artifact of the cell's runs: when no
    tracer is active a fresh one is installed for the cell and the trace is
    written to that path; when one is already active (e.g. the CLI installed
    it) the cell's spans simply join it and no separate file is written.
    """
    if not supports(framework, algorithm):
        return None
    if algorithm == "astar" and datasets.DATASETS[dataset].kind != "road":
        return None  # A* needs coordinates (the paper runs it on roads only)
    if algorithm == "wbfs" and datasets.DATASETS[dataset].kind == "road":
        # Table 4 benchmarks wBFS "on only the social networks and web
        # graphs ... following the convention in previous work".
        return None
    if trace_path is not None and get_tracer() is None:
        with tracing() as tracer:
            measurement = run_cell(
                framework,
                algorithm,
                dataset,
                trials=trials,
                num_threads=num_threads,
                delta=delta,
                execution=execution,
            )
        write_chrome_trace(
            trace_path,
            tracer,
            metadata={
                "framework": framework,
                "algorithm": algorithm,
                "dataset": dataset,
                "execution": execution,
                "num_threads": num_threads,
            },
        )
        return measurement
    if delta is None:
        delta = datasets.best_delta(dataset)
    workloads = _workloads(algorithm, dataset, trials)

    total_wall = 0.0
    merged = RuntimeStats(num_threads=num_threads)
    merged.execution = execution
    for graph, source, target in workloads:
        started = time.perf_counter()
        with trace_span(
            "cell.run",
            "harness",
            framework=framework,
            algorithm=algorithm,
            dataset=dataset,
            source=int(source),
            execution=execution,
        ):
            result = run_framework(
                framework,
                algorithm,
                graph,
                source=source,
                target=target,
                delta=delta,
                num_threads=num_threads,
                execution=execution,
            )
        total_wall += time.perf_counter() - started
        merged.merge(result.stats)
    runs = len(workloads)
    extra: dict = {}
    if execution == "parallel":
        # Real-thread engine engaged: surface its per-run profile so the
        # scalability drivers (Figure 11) can report barrier overheads.
        extra = {
            "execution": execution,
            "parallel_rounds": merged.parallel_rounds / runs,
            "barrier_waits": merged.barrier_waits / runs,
            "barrier_wait_time": merged.barrier_wait_time / runs,
        }
    return Measurement(
        framework=framework,
        algorithm=algorithm,
        dataset=dataset,
        wall_time=total_wall / runs,
        simulated_time=merged.simulated_time() / runs,
        runs=runs,
        rounds=merged.rounds / runs,
        relaxations=merged.relaxations / runs,
        extra=extra,
    )


def build_matrix(
    frameworks: tuple[str, ...],
    algorithms: tuple[str, ...],
    dataset_names: tuple[str, ...],
    trials: int = 2,
    num_threads: int = 8,
    execution: str = "serial",
) -> dict[tuple[str, str, str], Measurement | None]:
    """All requested cells, keyed by (framework, algorithm, dataset)."""
    for framework in frameworks:
        if framework not in FRAMEWORKS:
            raise GraphItError(f"unknown framework {framework!r}")
    for algorithm in algorithms:
        if algorithm not in ALGORITHMS:
            raise GraphItError(f"unknown algorithm {algorithm!r}")
    matrix: dict[tuple[str, str, str], Measurement | None] = {}
    for algorithm in algorithms:
        for dataset in dataset_names:
            for framework in frameworks:
                matrix[(framework, algorithm, dataset)] = run_cell(
                    framework,
                    algorithm,
                    dataset,
                    trials,
                    num_threads,
                    execution=execution,
                )
    return matrix


def slowdown_matrix(
    matrix: dict[tuple[str, str, str], Measurement | None],
    metric: str = "simulated_time",
) -> dict[tuple[str, str, str], float | None]:
    """Per-cell slowdown relative to the fastest framework for that
    (algorithm, dataset) — the quantity Figure 4's heatmap shows."""
    best: dict[tuple[str, str], float] = {}
    for (framework, algorithm, dataset), cell in matrix.items():
        if cell is None:
            continue
        value = getattr(cell, metric)
        key = (algorithm, dataset)
        if key not in best or value < best[key]:
            best[key] = value
    result: dict[tuple[str, str, str], float | None] = {}
    for (framework, algorithm, dataset), cell in matrix.items():
        if cell is None:
            result[(framework, algorithm, dataset)] = None
        else:
            result[(framework, algorithm, dataset)] = getattr(cell, metric) / best[
                (algorithm, dataset)
            ]
    return result


def format_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Plain-text aligned table (what the benchmark drivers print)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
