"""Evaluation harness: datasets, measurement cells, table formatting."""

from . import datasets
from .harness import (
    Measurement,
    build_matrix,
    format_table,
    run_cell,
    slowdown_matrix,
)
from .linecount import PAPER_TABLE5, count_lines, dsl_line_counts

__all__ = [
    "datasets",
    "Measurement",
    "run_cell",
    "build_matrix",
    "slowdown_matrix",
    "format_table",
    "count_lines",
    "dsl_line_counts",
    "PAPER_TABLE5",
]
