"""Command-line interface: ``python -m repro <command>``.

Mirrors the GraphIt compiler's command-line workflow:

- ``compile`` — compile a DSL program (a ``.gt`` file or one of the built-in
  benchmark programs) under a schedule, to Python or C++ source.
- ``run`` — compile with the Python backend and execute on a graph file,
  printing the execution profile and result summary.
- ``generate`` — produce a synthetic graph file (R-MAT or road grid) in the
  edge-list format both backends load.
- ``autotune`` — search for a schedule for an algorithm/graph pair.
- ``lint`` — run the midend diagnostics engine (race/atomicity analysis,
  IR validator, schedule–program compatibility) over one or more programs
  and print structured ``file:line:col: severity[CODE]: message`` findings
  (``--format json`` emits a machine-readable document instead).
- ``analyze`` — print the whole-program effect analysis (per-UDF
  read/write/index sets, monotonicity verdicts with schedule
  admissibility, pairwise fusion-safety) as text or JSON.
- ``trace`` — compile and run a program under the tracer and write a
  Chrome-trace-format JSON (loadable in Perfetto / ``chrome://tracing``).
- ``profile`` — same traced run, printed as a self-time profile table.
- ``metrics`` — run a program and print the always-on metrics registry
  (JSON or Prometheus text); ``--workload`` also writes the workload
  profile (the paper's crossover axes) for the autotuner.
- ``last-run`` — inspect the crash flight recorder's forensics dump from
  the most recent failed invocation.
- ``trace-diff`` — attribute the wall-time delta between two trace /
  profile artifacts to compiler and runtime phases.
- ``bench-native`` — benchmark the native compiled-kernel path against the
  sequential scalar oracle (requires a C++ toolchain).
- ``serve`` — long-running query service: load a graph once, answer
  concurrent point queries over HTTP/JSON with a result cache, request
  coalescing, admission control, and ``/mutate`` support.
- ``bench-serve`` — closed-loop load test against a live query server
  (Zipf-skewed sources, latency percentiles + throughput), writing
  ``BENCH_serve.json``.
- ``bench-check`` — re-run the checked-in benchmarks and fail when a
  fresh run regresses past a tolerance (the CI perf gate);
  ``--attribute`` prints the per-phase diff against the baseline's
  embedded phase profile.

Examples::

    python -m repro generate rmat --scale 10 -o social.el
    python -m repro compile sssp --priority-update lazy --delta 4 --backend cpp -o sssp.cpp
    python -m repro run sssp social.el 0 --priority-update eager_with_fusion --delta 32
    python -m repro autotune sssp social.el --trials 30
    python -m repro lint sssp kcore examples/my_prog.gt --werror
    python -m repro analyze sssp widest --format json
    python -m repro trace examples/sssp_delta.gt --out trace.json
    python -m repro profile sssp --execution parallel --threads 4
    python -m repro metrics sssp social.el 0 --format prom
    python -m repro metrics sssp --workload profile.json
    python -m repro last-run
    python -m repro trace-diff baseline_trace.json fresh_trace.json
    python -m repro serve --graph social.el --port 8732
    python -m repro bench-serve --clients 8 --enforce-floors
    python -m repro bench-check --tolerance 0.2 --attribute
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from .autotune import autotune
from .backend import compile_program
from .errors import GraphItError
from .graph.generators import rmat, road_grid
from .graph.io import load_edge_list, load_npz, save_edge_list
from .lang.programs import ALL_PROGRAMS
from .midend.schedule import Schedule

__all__ = ["main"]


def _add_schedule_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("schedule (Table 2)")
    group.add_argument(
        "--priority-update",
        default="eager_no_fusion",
        choices=("eager_with_fusion", "eager_no_fusion", "lazy", "lazy_constant_sum"),
        help="bucket update strategy (configApplyPriorityUpdate)",
    )
    group.add_argument(
        "--delta", type=int, default=1, help="priority coarsening factor Δ"
    )
    group.add_argument(
        "--fusion-threshold",
        type=int,
        default=1000,
        help="bucket fusion size threshold (configBucketFusionThreshold)",
    )
    group.add_argument(
        "--num-buckets",
        type=int,
        default=128,
        help="materialized buckets for the lazy strategies (configNumBuckets)",
    )
    group.add_argument(
        "--direction",
        default="SparsePush",
        choices=("SparsePush", "DensePull"),
        help="edge traversal direction (configApplyDirection)",
    )
    group.add_argument("--threads", type=int, default=8, help="virtual threads")
    group.add_argument(
        "--execution",
        default="serial",
        choices=("serial", "parallel", "native"),
        help="run virtual-thread partitions inline (serial, the bit-exact "
        "oracle), on real worker threads (parallel), or as a compiled "
        "shared-library kernel (native; falls back to serial vectorized "
        "Python with an N101 note when no C++ toolchain is available) "
        "(configExecution)",
    )


def _schedule_from_args(args: argparse.Namespace) -> Schedule:
    return Schedule(
        priority_update=args.priority_update,
        delta=args.delta,
        bucket_fusion_threshold=args.fusion_threshold,
        num_buckets=args.num_buckets,
        direction=args.direction,
        num_threads=args.threads,
        execution=getattr(args, "execution", "serial"),
        sanitize=getattr(args, "sanitize", False),
        incremental=getattr(args, "incremental", False),
    )


def _load_source(program: str) -> str:
    if program in ALL_PROGRAMS:
        return ALL_PROGRAMS[program]
    if os.path.exists(program):
        with open(program, "r", encoding="utf-8") as handle:
            return handle.read()
    raise GraphItError(
        f"{program!r} is neither a built-in program "
        f"({', '.join(sorted(ALL_PROGRAMS))}) nor a readable file"
    )


def _load_graph(path: str):
    if path.endswith(".npz"):
        return load_npz(path)
    return load_edge_list(path)


def _cmd_compile(args: argparse.Namespace) -> int:
    source = _load_source(args.program)
    program = compile_program(source, _schedule_from_args(args), backend=args.backend)
    if args.output:
        program.write(args.output)
        print(f"wrote {args.backend} source to {args.output}")
    else:
        sys.stdout.write(program.source_text)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "incremental", False):
        return _cmd_run_incremental(args)
    source = _load_source(args.program)
    program = compile_program(source, _schedule_from_args(args))
    result = program.run([args.program, args.graph, *args.args])
    stats = result.stats
    if (
        program.schedule.execution == "native"
        and program.native_fallback_reason is None
    ):
        # Interpreter counters (rounds, relaxations, ...) are collected by
        # the Python runtime only; the compiled kernel produces the output
        # vectors but no instrumentation (documented in DESIGN.md §11).
        print("native kernel executed (interpreter counters unavailable)")
    else:
        print(
            f"rounds={stats.rounds} fused={stats.fused_rounds} "
            f"syncs={stats.global_syncs} relaxations={stats.relaxations} "
            f"simulated_time={stats.simulated_time():.0f}"
        )
    sanitizer = result.context.sanitizer
    if sanitizer is not None:
        udfs = sorted({entry["udf"] for entry in sanitizer.log})
        print(
            f"sanitizer: {len(sanitizer.log)} apply scopes validated "
            f"against the static effect summary (udfs: {', '.join(udfs)})"
        )
    for name, value in sorted(result.globals.items()):
        if isinstance(value, np.ndarray):
            finite = value[np.abs(value) < 2**62]
            summary = (
                f"min={finite.min()} max={finite.max()}" if finite.size else "empty"
            )
            print(f"vector {name}: size={value.size} {summary}")
    return 0


def _cmd_run_incremental(args: argparse.Namespace) -> int:
    """``repro run --incremental``: converge, mutate, resume, verify.

    The program is compiled first so the I001 eligibility gate runs on the
    actual DSL (ineligible programs — the k-core peel, extern processors —
    fail at plan time with the analysis's reasons).  The recognized
    relaxation shape then routes onto the interpreted incremental engine;
    after every mutation batch from the script the resumed vector is
    checked bit-for-bit against a from-scratch run on the mutated graph
    (disable with ``--no-verify``).
    """
    from .graph.mutations import parse_mutation_script
    from .incremental import IncrementalSession

    if not args.mutations:
        raise GraphItError("--incremental requires --mutations <script>")
    source = _load_source(args.program)
    schedule = _schedule_from_args(args)
    program = compile_program(source, schedule)
    verdict = program.plan.incremental_eligibility
    if verdict is None or not verdict.eligible:  # pragma: no cover - plan gate
        raise GraphItError("program is not eligible for incremental resume")
    if verdict.relaxation_shape == "unrecognized":
        raise GraphItError(
            "the program's ordered loop is an extremal fixpoint, but its "
            "relaxation body is not one the incremental engine implements "
            "(expected vec[src] + weight under min, or min(vec[src], "
            "weight) under max)"
        )
    algorithm = "sssp" if verdict.kind == "min" else "widest_path"

    graph = _load_graph(args.graph)
    source_vertex = int(args.args[0]) if args.args else 0
    with open(args.mutations, "r", encoding="utf-8") as handle:
        batches = parse_mutation_script(handle.read())
    if not batches:
        raise GraphItError(f"mutation script {args.mutations!r} is empty")

    session = IncrementalSession(
        graph, algorithm, source=source_vertex, schedule=schedule
    )
    base = session.run()
    print(
        f"converged from scratch: rounds={base.stats.rounds} "
        f"relaxations={base.stats.relaxations}"
    )
    verify = not args.no_verify
    for index, batch in enumerate(batches):
        result = session.apply(batch)
        line = (
            f"batch {index}: mutations={len(batch)} seeds={result.seeds} "
            f"invalidated={result.invalidated} "
            f"touched={result.vertices_touched}/{graph.num_vertices} "
            f"relaxations={result.stats.relaxations}"
        )
        if verify:
            oracle = IncrementalSession(
                session.graph, algorithm, source=source_vertex, schedule=schedule
            )
            if not np.array_equal(result.values, oracle.run().values):
                print(line + " verify=MISMATCH")
                print(
                    "run --incremental: resumed vector diverged from the "
                    "full re-run oracle"
                )
                return 1
            line += " verify=ok"
        print(line)
    values = session.values
    finite = values[np.abs(values) < 2**62]
    summary = f"min={finite.min()} max={finite.max()}" if finite.size else "empty"
    print(f"final vector: size={values.size} {summary}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "rmat":
        graph = rmat(args.scale, args.edge_factor, seed=args.seed)
    else:
        side = max(2, int(round((1 << args.scale) ** 0.5)))
        graph = road_grid(side, side, seed=args.seed)
    save_edge_list(graph, args.output)
    print(
        f"wrote {args.kind} graph ({graph.num_vertices} vertices, "
        f"{graph.num_edges} edges) to {args.output}"
    )
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    result = autotune(
        args.algorithm,
        graph,
        source=args.source,
        target=args.target,
        max_trials=args.trials,
        num_threads=args.threads,
        seed=args.seed,
    )
    best = result.best_schedule
    print(
        f"best schedule after {result.num_trials} trials "
        f"(space ~{result.space_size:,}):"
    )
    print(
        f"  priority_update={best.priority_update} delta={best.delta} "
        f"direction={best.direction} fusion_threshold="
        f"{best.bucket_fusion_threshold} num_buckets={best.num_buckets}"
    )
    print(f"  simulated cost: {result.best_cost:,.0f}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .midend.analysis.diagnostics import (
        Severity,
        lint_program,
        render_diagnostic,
    )

    schedule: Schedule | None = None
    if args.priority_update is not None:
        schedule = Schedule(
            priority_update=args.priority_update,
            delta=args.delta,
            direction=args.direction,
        )

    as_json = getattr(args, "format", "text") == "json"
    findings: list[dict] = []
    total_errors = 0
    total_warnings = 0
    for name in args.programs:
        source = _load_source(name)
        diagnostics = lint_program(
            source,
            schedule=schedule,
            filename=name,
            include_info=args.info,
        )
        for diagnostic in diagnostics:
            if as_json:
                findings.append(
                    {
                        "code": diagnostic.code,
                        "severity": str(diagnostic.severity),
                        "span": {
                            "file": diagnostic.span.file or name,
                            "line": diagnostic.span.line,
                            "column": diagnostic.span.column,
                        },
                        "message": diagnostic.message,
                    }
                )
            else:
                print(render_diagnostic(diagnostic))
        total_errors += sum(
            1 for d in diagnostics if d.severity is Severity.ERROR
        )
        total_warnings += sum(
            1 for d in diagnostics if d.severity is Severity.WARNING
        )

    failed = bool(total_errors or (args.werror and total_warnings))
    checked = len(args.programs)
    if as_json:
        import json

        print(
            json.dumps(
                {
                    "diagnostics": findings,
                    "checked": checked,
                    "errors": total_errors,
                    "warnings": total_warnings,
                    "werror": bool(args.werror),
                    "ok": not failed,
                },
                indent=2,
            )
        )
    else:
        print(
            f"checked {checked} program{'s' if checked != 1 else ''}: "
            f"{total_errors} error(s), {total_warnings} warning(s)"
            + (" [-Werror]" if args.werror and total_warnings else "")
        )
    return 1 if failed else 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analyze import build_analysis_document, render_analysis_text

    schedule: Schedule | None = None
    if args.priority_update is not None:
        schedule = Schedule(
            priority_update=args.priority_update,
            delta=args.delta,
            direction=args.direction,
        )
    sources = {name: _load_source(name) for name in args.programs}
    document = build_analysis_document(sources, schedule)
    if args.format == "json":
        import json

        print(json.dumps(document, indent=2))
    else:
        sys.stdout.write(render_analysis_text(document))
    return 0


# Maps each schedule CLI flag to its Schedule field and argparse default;
# ``trace``/``profile`` apply only the flags the user actually changed, so the
# program's own inline ``schedule:`` block stays in charge of the rest.
_SCHEDULE_ARG_DEFAULTS = {
    "priority_update": ("priority_update", "eager_no_fusion"),
    "delta": ("delta", 1),
    "fusion_threshold": ("bucket_fusion_threshold", 1000),
    "num_buckets": ("num_buckets", 128),
    "direction": ("direction", "SparsePush"),
    "threads": ("num_threads", 8),
    "execution": ("execution", "serial"),
}


def _schedule_with_overrides(base: Schedule, args: argparse.Namespace) -> Schedule:
    overrides = {}
    for arg_name, (field_name, default) in _SCHEDULE_ARG_DEFAULTS.items():
        value = getattr(args, arg_name)
        if value != default:
            overrides[field_name] = value
    return base.with_(**overrides) if overrides else base


def _traced_run(args: argparse.Namespace):
    """Compile and run ``args.program`` under a fresh tracer.

    Returns ``(tracer, result, schedule, graph_name)``.  The schedule
    resolution compiles once *outside* the tracer to pick up the program's
    inline ``schedule:`` block, then overlays only the schedule flags the
    user set explicitly.
    """
    from .obs import tracing

    source = _load_source(args.program)
    base_schedule = compile_program(source, None).schedule
    schedule = _schedule_with_overrides(base_schedule, args)
    if args.graph is None or args.graph == "-":
        graph = rmat(10, 16, seed=0, weights=(1, 4))
        graph_name = "rmat(scale=10,edge_factor=16,seed=0)"
    else:
        graph = _load_graph(args.graph)
        graph_name = args.graph
    program_args = list(args.args) if args.args else ["0"]
    with tracing() as tracer:
        program = compile_program(source, schedule)
        result = program.run(
            [args.program, graph_name, *program_args], graph=graph
        )
    return tracer, result, schedule, graph_name


def _trace_metadata(args, schedule: Schedule, graph_name: str) -> dict:
    return {
        "program": args.program,
        "graph": graph_name,
        "schedule": {
            "priority_update": schedule.priority_update,
            "delta": schedule.delta,
            "direction": schedule.direction,
            "bucket_fusion_threshold": schedule.bucket_fusion_threshold,
            "num_buckets": schedule.num_buckets,
            "num_threads": schedule.num_threads,
            "execution": schedule.execution,
        },
    }


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import write_chrome_trace

    tracer, result, schedule, graph_name = _traced_run(args)
    write_chrome_trace(
        args.out, tracer, metadata=_trace_metadata(args, schedule, graph_name)
    )
    stats = result.stats
    spans = sum(1 for e in tracer.events if e.get("ph") == "X")
    print(
        f"wrote {len(tracer.events)} trace events ({spans} spans) "
        f"to {args.out}"
    )
    print(
        f"rounds={stats.rounds} relaxations={stats.relaxations} "
        f"execution={schedule.execution} phases={len(stats.phase_timings)}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import format_profile, self_profile, write_chrome_trace

    tracer, result, schedule, graph_name = _traced_run(args)
    rows = self_profile(tracer.events)
    print(format_profile(rows, top=args.top))
    if args.out:
        write_chrome_trace(
            args.out,
            tracer,
            metadata=_trace_metadata(args, schedule, graph_name),
        )
        print(f"wrote trace to {args.out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """``repro metrics``: run once, print the always-on metrics registry.

    The registry is process-wide and always on (``REPRO_METRICS=0``
    disables), so the snapshot covers the compile and the run the command
    just performed — no tracer needed.  ``--workload`` additionally writes
    the run's workload profile (frontier shape, bucket occupancy,
    redundant-update ratio — the crossover axes) for the autotuner.
    """
    import json

    from .obs import metrics as metrics_registry
    from .obs import workload_profile, write_workload_profile

    source = _load_source(args.program)
    base_schedule = compile_program(source, None).schedule
    schedule = _schedule_with_overrides(base_schedule, args)
    if args.graph is None or args.graph == "-":
        graph = rmat(10, 16, seed=0, weights=(1, 4))
        graph_name = "rmat(scale=10,edge_factor=16,seed=0)"
    else:
        graph = _load_graph(args.graph)
        graph_name = args.graph
    program_args = list(args.args) if args.args else ["0"]
    program = compile_program(source, schedule)
    result = program.run([args.program, graph_name, *program_args], graph=graph)

    snap = metrics_registry.snapshot()
    if args.format == "prom":
        text = metrics_registry.prometheus_text()
    else:
        text = json.dumps(snap, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote metrics ({args.format}) to {args.out}")
    else:
        sys.stdout.write(text)
    if args.workload:
        profile = workload_profile(
            result.stats, schedule, graph, metrics_snapshot=snap
        )
        write_workload_profile(args.workload, profile)
        print(f"wrote workload profile to {args.workload}")
    return 0


def _cmd_last_run(args: argparse.Namespace) -> int:
    """``repro last-run``: show the flight recorder's last forensics dump."""
    import json

    from .obs import last_run_path

    path = args.path or last_run_path()
    if not os.path.exists(path):
        print(
            f"no forensics dump at {path!r} (written when a repro command "
            "fails with the flight recorder enabled)"
        )
        return 1
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if args.raw:
        print(json.dumps(document, indent=2))
        return 0
    error = document.get("error") or {}
    print(f"forensics dump: {path}")
    print(f"written_at: {document.get('written_at')}")
    print(f"argv: {' '.join(document.get('argv') or []) or '(unknown)'}")
    print(f"error: {error.get('type')}: {error.get('message')}")
    context = document.get("context") or {}
    if context:
        print(f"context: {json.dumps(context, sort_keys=True)}")
    events = document.get("events") or []
    print(f"{len(events)} recorded span(s); most recent last:")
    for event in events[-args.tail:]:
        name = f"{event.get('cat')}:{event.get('name')}"
        mark = " [raised]" if event.get("error") else ""
        print(
            f"  {event.get('ts_us', 0):>10.0f}us "
            f"{name:<34} {event.get('dur_us', 0):>9.0f}us{mark}"
        )
    trace = error.get("traceback") or ""
    if isinstance(trace, list):
        trace = "".join(trace)
    trace = trace.strip()
    if trace and args.traceback:
        print("traceback:")
        for line in trace.splitlines():
            print(f"  {line}")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    """``repro trace-diff A B``: attribute a wall-time delta to phases."""
    import json

    from .obs import format_trace_diff, trace_diff

    try:
        diff = trace_diff(args.baseline, args.fresh)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        raise GraphItError(f"trace-diff: {error}")
    if args.format == "json":
        print(json.dumps(diff, indent=2))
    else:
        print(format_trace_diff(diff, top=args.top))
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    """Re-run the checked-in benchmarks and compare against their baselines.

    Each fresh run reuses the baseline's own parameters (graph scale, delta,
    workers, ...) so the comparison is like-for-like.  Two kinds of checks:

    * **perf**: the fresh speedup must not fall more than ``tolerance``
      below the baseline's (``fresh/baseline - 1 >= -tolerance``),
    * **exact**: deterministic counters (relaxations, priority updates,
      parallel rounds) must match bit-for-bit — any drift means the
      *behaviour* changed, not the machine.
    """
    import json
    import tempfile

    def load(path: str) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError as error:
            raise GraphItError(f"cannot read baseline {path!r}: {error}")

    rows: list[list[str]] = []
    failures: list[str] = []
    # (bench, baseline record, fresh record) pairs for --attribute.
    profiled: list[tuple[str, dict, dict]] = []

    def check_perf(bench: str, metric: str, base: float, fresh: float, tol: float):
        delta = fresh / base - 1.0 if base else float("inf")
        ok = delta >= -tol
        rows.append(
            [
                bench,
                metric,
                f"{base:.2f}",
                f"{fresh:.2f}",
                f"{delta:+.1%}",
                f"-{tol:.0%}",
                "ok" if ok else "FAIL",
            ]
        )
        if not ok:
            failures.append(
                f"{bench}: {metric} regressed {delta:+.1%} "
                f"(baseline {base:.2f}, fresh {fresh:.2f}, "
                f"tolerance -{tol:.0%})"
            )

    def check_ceiling(bench: str, metric: str, base: float, fresh: float, tol: float):
        """Perf check for lower-is-better metrics (latencies): the fresh
        value must not rise more than ``tolerance`` above the baseline."""
        delta = fresh / base - 1.0 if base else float("inf")
        ok = delta <= tol
        rows.append(
            [
                bench,
                metric,
                f"{base:.2f}",
                f"{fresh:.2f}",
                f"{delta:+.1%}",
                f"+{tol:.0%}",
                "ok" if ok else "FAIL",
            ]
        )
        if not ok:
            failures.append(
                f"{bench}: {metric} regressed {delta:+.1%} "
                f"(baseline {base:.2f}, fresh {fresh:.2f}, "
                f"tolerance +{tol:.0%})"
            )

    def check_floor(bench: str, metric: str, floor: float, fresh: float, *,
                    ceiling: bool = False):
        """Absolute budget check: the fresh value must stay on the right
        side of the checked-in floor/ceiling regardless of the baseline."""
        ok = fresh <= floor if ceiling else fresh >= floor
        bound = "<=" if ceiling else ">="
        rows.append(
            [
                bench,
                metric,
                f"{floor:.2f}",
                f"{fresh:.2f}",
                "budget",
                bound,
                "ok" if ok else "FAIL",
            ]
        )
        if not ok:
            failures.append(
                f"{bench}: {metric} {fresh:.2f} violates the absolute "
                f"budget ({bound} {floor:.2f})"
            )

    def check_exact(bench: str, metric: str, base, fresh):
        ok = base == fresh
        rows.append(
            [bench, metric, str(base), str(fresh), "exact", "=", "ok" if ok else "FAIL"]
        )
        if not ok:
            # Same shape as the perf failure line: metric, baseline,
            # measured value, percent delta — everything needed to triage
            # from the CI log alone.
            drift = ""
            if isinstance(base, (int, float)) and isinstance(
                fresh, (int, float)
            ) and base:
                drift = f", delta {fresh / base - 1.0:+.1%}"
            failures.append(
                f"{bench}: deterministic counter {metric} drifted "
                f"(baseline {base}, fresh {fresh}{drift})"
            )

    out_dir = args.out_dir or tempfile.mkdtemp(prefix="bench-check-")
    os.makedirs(out_dir, exist_ok=True)
    tol_kernels = (
        args.tolerance_kernels
        if args.tolerance_kernels is not None
        else args.tolerance
    )
    tol_parallel = (
        args.tolerance_parallel
        if args.tolerance_parallel is not None
        else args.tolerance
    )

    # -- bench-kernels ------------------------------------------------
    base_k = load(args.kernels_baseline)
    fresh_k_path = os.path.join(out_dir, "BENCH_apply.fresh.json")
    rc = _cmd_bench_kernels(
        argparse.Namespace(
            scale=base_k["graph"]["scale"],
            edge_factor=base_k["graph"]["edge_factor"],
            seed=base_k["graph"]["seed"],
            delta=base_k["delta"],
            threads=base_k["num_threads"],
            repeats=args.repeats or base_k["repeats"],
            min_speedup=None,
            output=fresh_k_path,
        )
    )
    if rc != 0:
        print("bench-check: fresh bench-kernels run failed")
        return rc
    fresh_k = load(fresh_k_path)
    profiled.append(("kernels", base_k, fresh_k))
    check_perf(
        "kernels", "speedup", base_k["speedup"], fresh_k["speedup"], tol_kernels
    )
    for metric in ("relaxations", "priority_updates", "frontier_vertices"):
        check_exact("kernels", metric, base_k[metric], fresh_k[metric])

    # -- bench-parallel -----------------------------------------------
    base_p = load(args.parallel_baseline)
    fresh_p_path = os.path.join(out_dir, "BENCH_parallel.fresh.json")
    rc = _cmd_bench_parallel(
        argparse.Namespace(
            scale=base_p["graph"]["scale"],
            edge_factor=base_p["graph"]["edge_factor"],
            seed=base_p["graph"]["seed"],
            delta=base_p["delta"],
            workers=base_p["workers"],
            strategy=base_p["strategy"],
            repeats=args.repeats or base_p["repeats"],
            min_speedup=None,
            output=fresh_p_path,
        )
    )
    if rc != 0:
        print("bench-check: fresh bench-parallel run failed")
        return rc
    fresh_p = load(fresh_p_path)
    profiled.append(("parallel", base_p, fresh_p))
    check_perf(
        "parallel",
        "speedup_vs_oracle",
        base_p["speedup_vs_oracle"],
        fresh_p["speedup_vs_oracle"],
        tol_parallel,
    )
    for metric in ("parallel_rounds", "barrier_waits"):
        check_exact("parallel", metric, base_p[metric], fresh_p[metric])

    # -- bench-native -------------------------------------------------
    # Skips gracefully (not a failure) when the machine has no C++
    # toolchain — the native path itself degrades the same way (N101).
    from .backend.native import discover_toolchain

    tol_native = (
        args.tolerance_native
        if args.tolerance_native is not None
        else args.tolerance
    )
    base_n = (
        load(args.native_baseline)
        if os.path.exists(args.native_baseline)
        else None
    )
    if base_n is None:
        print(
            f"bench-check: no native baseline at {args.native_baseline!r}; "
            "skipping the native benchmark"
        )
    elif discover_toolchain() is None:
        print(
            "bench-check: no C++ toolchain on this machine; skipping the "
            "native benchmark (the runtime falls back the same way: N101)"
        )
    else:
        fresh_n_path = os.path.join(out_dir, "BENCH_native.fresh.json")
        rc = _cmd_bench_native(
            argparse.Namespace(
                scale=base_n["graph"]["scale"],
                edge_factor=base_n["graph"]["edge_factor"],
                seed=base_n["graph"]["seed"],
                delta=base_n["delta"],
                threads=base_n["num_threads"],
                strategy=base_n["strategy"],
                repeats=args.repeats or base_n["repeats"],
                min_speedup=None,
                output=fresh_n_path,
            )
        )
        if rc != 0:
            print("bench-check: fresh bench-native run failed")
            return rc
        fresh_n = load(fresh_n_path)
        check_perf(
            "native",
            "speedup_vs_oracle",
            base_n["speedup_vs_oracle"],
            fresh_n["speedup_vs_oracle"],
            tol_native,
        )
        for name, base_sum in base_n["vector_checksums"].items():
            check_exact(
                "native",
                f"checksum[{name}]",
                base_sum,
                fresh_n["vector_checksums"].get(name),
            )

    # -- bench-incremental --------------------------------------------
    tol_incremental = (
        args.tolerance_incremental
        if args.tolerance_incremental is not None
        else args.tolerance
    )
    base_i = (
        load(args.incremental_baseline)
        if os.path.exists(args.incremental_baseline)
        else None
    )
    if base_i is None:
        print(
            f"bench-check: no incremental baseline at "
            f"{args.incremental_baseline!r}; skipping the incremental "
            "benchmark"
        )
    else:
        fresh_i_path = os.path.join(out_dir, "BENCH_incremental.fresh.json")
        rc = _cmd_bench_incremental(
            argparse.Namespace(
                scale=base_i["graph"]["scale"],
                edge_factor=base_i["graph"]["edge_factor"],
                seed=base_i["graph"]["seed"],
                delta=base_i["delta"],
                algorithm=base_i["algorithm"],
                strategy=base_i["strategy"],
                batches=base_i["num_batches"],
                batch_size=base_i["batch_size"],
                repeats=args.repeats or base_i["repeats"],
                min_speedup=None,
                output=fresh_i_path,
            )
        )
        if rc != 0:
            print("bench-check: fresh bench-incremental run failed")
            return rc
        fresh_i = load(fresh_i_path)
        check_perf(
            "incremental",
            "speedup_vs_full",
            base_i["speedup"],
            fresh_i["speedup"],
            tol_incremental,
        )
        for metric in (
            "incremental_seeds",
            "incremental_invalidated",
            "incremental_vertices_touched",
        ):
            check_exact("incremental", metric, base_i[metric], fresh_i[metric])

    # -- bench-serve ---------------------------------------------------
    tol_serve = (
        args.tolerance_serve if args.tolerance_serve is not None else args.tolerance
    )
    base_s = (
        load(args.serve_baseline) if os.path.exists(args.serve_baseline) else None
    )
    if base_s is None:
        print(
            f"bench-check: no serve baseline at {args.serve_baseline!r}; "
            "skipping the query-service benchmark"
        )
    else:
        fresh_s_path = os.path.join(out_dir, "BENCH_serve.fresh.json")
        rc = _cmd_bench_serve(
            argparse.Namespace(
                scale=base_s["graph"]["scale"],
                edge_factor=base_s["graph"]["edge_factor"],
                seed=base_s["graph"]["seed"],
                clients=base_s["clients"],
                requests=base_s["requests_per_client"],
                pool_size=base_s["pool_size"],
                zipf_s=base_s["zipf_s"],
                program=base_s["program"],
                delta=base_s["schedule"]["delta"],
                cached_requests=base_s["cached_requests"],
                max_pending=base_s["max_pending"],
                output=fresh_s_path,
                enforce_floors=False,
            )
        )
        if rc != 0:
            print("bench-check: fresh bench-serve run failed")
            return rc
        fresh_s = load(fresh_s_path)
        profiled.append(("serve", base_s, fresh_s))
        check_perf(
            "serve",
            "throughput_qps",
            base_s["throughput_qps"],
            fresh_s["throughput_qps"],
            tol_serve,
        )
        check_ceiling(
            "serve", "p95_ms", base_s["p95_ms"], fresh_s["p95_ms"], tol_serve
        )
        check_ceiling(
            "serve",
            "cached_p95_ms",
            base_s["cached_p95_ms"],
            fresh_s["cached_p95_ms"],
            tol_serve,
        )
        # The acceptance floors are absolute: however the baseline drifts,
        # the fresh run must clear them on its own.
        floors = base_s.get("floors", {})
        if "throughput_qps" in floors:
            check_floor(
                "serve",
                "floor[throughput_qps]",
                floors["throughput_qps"],
                fresh_s["throughput_qps"],
            )
        if "p95_ms" in floors:
            check_floor(
                "serve",
                "floor[p95_ms]",
                floors["p95_ms"],
                fresh_s["p95_ms"],
                ceiling=True,
            )
        if "cached_p95_ms" in floors:
            check_floor(
                "serve",
                "floor[cached_p95_ms]",
                floors["cached_p95_ms"],
                fresh_s["cached_p95_ms"],
                ceiling=True,
            )
        for metric in ("unique_sources", "responses_ok", "total_requests"):
            check_exact("serve", metric, base_s[metric], fresh_s[metric])

    from .eval.harness import format_table

    print(
        format_table(
            ["bench", "metric", "baseline", "fresh", "delta", "tolerance", "status"],
            rows,
            title="bench-check: fresh runs vs checked-in baselines",
        )
    )
    if getattr(args, "attribute", False):
        # Per-phase attribution of each benchmark's wall-time change,
        # against the phase profile embedded in the baseline record.
        from .obs import format_trace_diff, trace_diff

        for bench, base_record, fresh_record in profiled:
            print()
            if "phase_profile" not in base_record:
                print(
                    f"bench-check: {bench} baseline has no embedded phase "
                    "profile; re-generate the baseline to enable "
                    "attribution"
                )
                continue
            print(f"bench-check attribution ({bench}):")
            print(
                format_trace_diff(
                    trace_diff(base_record, fresh_record), top=8
                )
            )

    if failures:
        print()
        for failure in failures:
            print(f"bench-check FAIL: {failure}")
        return 1
    print("\nbench-check: all checks passed")
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    """Micro-benchmark the vectorized apply operators against the scalar
    reference interpreter from identical state, and write the results.

    The two paths run the same ``applyUpdatePriority`` (SSSP relaxation)
    over a full-graph frontier on a deterministic R-MAT input; the stats
    dumps and output vectors must be bit-identical (the benchmark aborts
    otherwise), so the speedup measures pure interpreter overhead.
    """
    import dataclasses
    import json
    import time

    from .backend.runtime_support import Context
    from .buckets.lazy import LazyBucketQueue
    from .graph.properties import INT_MAX

    graph = rmat(args.scale, args.edge_factor, seed=args.seed, weights=(1, 4))
    n = graph.num_vertices
    schedule = Schedule(
        priority_update="lazy", delta=args.delta, num_threads=args.threads
    )

    def make_closures(context, dist):
        queue = LazyBucketQueue(
            dist,
            direction="lower_first",
            delta=args.delta,
            num_open_buckets=schedule.num_buckets,
            stats=context.stats,
            initial_vertices=np.empty(0, dtype=np.int64),
        )

        def udf(src, dst, weight):
            new_dist = dist[src] + weight
            queue.update_priority_min(dst, new_dist)

        kernel = dict(
            kind="write_min",
            value=lambda src, dst, weight, k_cur: dist[src] + weight,
            hazard=lambda: [dist],
        )
        return queue, udf, kernel

    # Capture a genuine mid-execution state: run SSSP with the scalar
    # interpreter and snapshot (distances, frontier, current bucket) at the
    # round touching the most edges — the state the paper's apply operator
    # spends its time in.
    degrees = graph.out_degrees()
    source = int(np.argmax(degrees))
    warm_context = Context(argv=["bench"], schedule=schedule)
    warm_dist = np.full(n, INT_MAX, dtype=np.int64)
    warm_dist[source] = 0
    warm_queue = LazyBucketQueue(
        warm_dist,
        direction="lower_first",
        delta=args.delta,
        num_open_buckets=schedule.num_buckets,
        stats=warm_context.stats,
        initial_vertices=np.array([source], dtype=np.int64),
    )

    def warm_udf(src, dst, weight):
        warm_queue.update_priority_min(dst, warm_dist[src] + weight)

    snapshot = None
    while True:
        bucket = warm_queue.dequeue_ready_set()
        if bucket.size == 0:
            break
        touched = int(degrees[bucket].sum())
        if snapshot is None or touched > snapshot[3]:
            snapshot = (warm_dist.copy(), bucket.copy(), warm_queue._cur_order, touched)
        warm_context.apply_update_priority(graph, bucket, warm_udf, warm_queue)
    snap_dist, frontier, snap_order, touched_edges = snapshot

    def make_state():
        context = Context(argv=["bench"], schedule=schedule)
        dist = snap_dist.copy()
        queue, udf, kernel = make_closures(context, dist)
        queue._cur_order = snap_order
        return context, dist, queue, udf, kernel

    def dump(stats):
        d = dataclasses.asdict(stats)
        d.pop("_current_work", None)
        return d

    def run_once(vectorized):
        context, dist, queue, udf, kernel = make_state()
        context.vectorize = vectorized
        started = time.perf_counter()
        context.apply_update_priority(
            graph, frontier, udf, queue, kernel=kernel
        )
        elapsed = time.perf_counter() - started
        return elapsed, dist, dump(context.stats), context

    # Correctness gate first: one run per path, bit-identical or abort.
    _, scalar_dist, scalar_stats, _ = run_once(False)
    _, vector_dist, vector_stats, vector_ctx = run_once(True)
    if not np.array_equal(scalar_dist, vector_dist) or scalar_stats != vector_stats:
        print("bench-kernels: scalar and vectorized runs diverged; aborting")
        return 1
    if vector_ctx.vectorized_applies == 0:
        print("bench-kernels: kernel descriptor was not used; aborting")
        return 1

    scalar_time = min(run_once(False)[0] for _ in range(args.repeats))
    vector_time = min(run_once(True)[0] for _ in range(args.repeats))
    speedup = scalar_time / vector_time if vector_time > 0 else float("inf")

    # One extra traced run, outside the timed section, embeds a per-phase
    # profile in the record so ``bench-check --attribute`` can say *which*
    # phase moved when the speedup regresses.
    from .obs import phase_profile, tracing

    with tracing() as tracer:
        run_once(True)

    record = {
        "benchmark": "apply_update_priority (SSSP relaxation, SparsePush, lazy)",
        "graph": {
            "kind": "rmat",
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "num_vertices": int(n),
            "num_edges": int(graph.num_edges),
        },
        "delta": args.delta,
        "num_threads": args.threads,
        "repeats": args.repeats,
        "frontier_vertices": int(frontier.size),
        "frontier_edges": int(touched_edges),
        "scalar_seconds": scalar_time,
        "vectorized_seconds": vector_time,
        "speedup": speedup,
        "stats_identical": True,
        "relaxations": scalar_stats["relaxations"],
        "priority_updates": scalar_stats["priority_updates"],
        "phase_profile": phase_profile(tracer.events),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"{touched_edges} frontier edges ({frontier.size} vertices): "
        f"scalar {scalar_time:.4f}s, vectorized {vector_time:.4f}s, "
        f"speedup {speedup:.1f}x -> {args.output}"
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"bench-kernels: speedup {speedup:.1f}x is below the required "
            f"{args.min_speedup:.1f}x"
        )
        return 1
    return 0


def _cmd_bench_parallel(args: argparse.Namespace) -> int:
    """End-to-end benchmark of the parallel execution engine.

    Runs the same compiled program from identical inputs three ways:

    * ``oracle``   — the scalar reference interpreter (``vectorize=False``),
      the sequential oracle every parallel run is differentially tested
      against;
    * ``serial``   — vectorized kernels on the serial execution engine;
    * ``parallel`` — vectorized kernels driven by the real-thread
      produce/commit engine at ``--workers`` workers.

    Correctness gates first: the parallel run must be bit-identical to the
    oracle (output vectors and all deterministic stats counters) or the
    benchmark aborts.  The headline ratio is parallel vs the scalar oracle —
    the sequential-baseline methodology of the paper's scalability study
    (Figure 11).  Parallel vs serial-vectorized is recorded as well; on a
    single-core container it hovers near 1x (threads cannot mint cores, the
    engine can only overlap GIL-releasing kernel gathers) and is
    informational, not gated.
    """
    import dataclasses
    import json
    import time

    cpu_count = os.cpu_count() or 1
    if args.workers > cpu_count:
        print(
            f"bench-parallel: warning: {args.workers} workers on "
            f"{cpu_count} CPU core(s); threads cannot mint cores, so the "
            "parallel-vs-serial ratio will hover near 1x on this machine",
            file=sys.stderr,
        )
    source = ALL_PROGRAMS["sssp"]
    graph = rmat(args.scale, args.edge_factor, seed=args.seed, weights=(1, 4))
    # Start from the max-out-degree vertex so the traversal covers the giant
    # component (R-MAT leaves many low-numbered vertices isolated).
    start_vertex = int(np.argmax(graph.out_degrees()))
    base = Schedule(
        priority_update=args.strategy,
        delta=args.delta,
        num_threads=args.workers,
    )
    oracle_prog = compile_program(source, base)
    parallel_prog = compile_program(source, base.with_(execution="parallel"))

    parallel_only = {
        "execution",
        "parallel_rounds",
        "barrier_waits",
        "barrier_wait_time",
        "worker_wall_time",
    }

    def dump(stats):
        d = dataclasses.asdict(stats)
        d.pop("_current_work", None)
        for key in parallel_only:
            d.pop(key, None)
        return d

    def run_once(program, vectorize):
        started = time.perf_counter()
        result = program.run(
            ["bench", "-", str(start_vertex)], graph=graph, vectorize=vectorize
        )
        return time.perf_counter() - started, result

    # Correctness gate: parallel output and deterministic stats must match
    # the sequential oracle bit for bit before any timing is trusted.
    _, oracle_res = run_once(oracle_prog, False)
    _, parallel_res = run_once(parallel_prog, True)
    for name, value in oracle_res.globals.items():
        if isinstance(value, np.ndarray) and not np.array_equal(
            value, parallel_res.globals[name]
        ):
            print(
                f"bench-parallel: vector {name} diverged from the oracle; "
                "aborting"
            )
            return 1
    if dump(oracle_res.stats) != dump(parallel_res.stats):
        print("bench-parallel: stats diverged from the oracle; aborting")
        return 1
    if args.workers > 1 and parallel_res.stats.parallel_rounds == 0:
        print("bench-parallel: the parallel engine never engaged; aborting")
        return 1

    oracle_time = min(run_once(oracle_prog, False)[0] for _ in range(args.repeats))
    serial_time = min(run_once(oracle_prog, True)[0] for _ in range(args.repeats))
    parallel_time = min(
        run_once(parallel_prog, True)[0] for _ in range(args.repeats)
    )
    speedup = oracle_time / parallel_time if parallel_time > 0 else float("inf")
    vs_serial = serial_time / parallel_time if parallel_time > 0 else float("inf")

    # Traced run outside the timed section: embeds the per-phase profile
    # ``bench-check --attribute`` diffs against the baseline's.
    from .obs import phase_profile, tracing

    with tracing() as tracer:
        run_once(parallel_prog, True)

    summary = parallel_res.stats.parallel_summary()
    record = {
        "benchmark": (
            f"sssp end-to-end ({args.strategy}, delta={args.delta}, "
            "parallel engine vs sequential scalar oracle)"
        ),
        "graph": {
            "kind": "rmat",
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
        },
        "strategy": args.strategy,
        "delta": args.delta,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "oracle_seconds": oracle_time,
        "serial_vectorized_seconds": serial_time,
        "parallel_seconds": parallel_time,
        "speedup_vs_oracle": speedup,
        "speedup_vs_serial_vectorized": vs_serial,
        "parallel_rounds": int(parallel_res.stats.parallel_rounds),
        "barrier_waits": int(parallel_res.stats.barrier_waits),
        "barrier_wait_seconds": float(parallel_res.stats.barrier_wait_time),
        "worker_busy_seconds": summary["worker_busy_time"],
        "outputs_identical": True,
        "stats_identical": True,
        "phase_profile": phase_profile(tracer.events),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"{args.workers} workers on {graph.num_edges} edges: "
        f"oracle {oracle_time:.4f}s, serial-vectorized {serial_time:.4f}s, "
        f"parallel {parallel_time:.4f}s; {speedup:.1f}x vs oracle, "
        f"{vs_serial:.2f}x vs serial-vectorized -> {args.output}"
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"bench-parallel: speedup {speedup:.1f}x vs the oracle is below "
            f"the required {args.min_speedup:.1f}x"
        )
        return 1
    return 0


def _cmd_bench_native(args: argparse.Namespace) -> int:
    """End-to-end benchmark of the native (compiled shared-library) path.

    Runs the same compiled program from identical inputs two ways:

    * ``oracle`` — the scalar reference interpreter (``vectorize=False``),
      the sequential oracle the native kernel is differentially tested
      against;
    * ``native`` — the C++ backend compiled into a cached ``.so`` and
      invoked in-process through the stable C ABI.

    Correctness gates first: the native output vectors must be bit-identical
    to the oracle or the benchmark aborts (interpreter statistics are
    *interpreter-only* by design and are not compared).  The first native run
    pays the compile (recorded as ``compile_seconds``); timed runs then hit
    the kernel cache, so the headline ``speedup_vs_oracle`` measures warm
    query time — the paper's steady-state methodology.
    """
    import json
    import time

    from .backend.native import (
        build_kernel,
        discover_toolchain,
        generate_native_cpp,
        kernel_cache_dir,
        kernel_key,
    )

    toolchain = discover_toolchain()
    if toolchain is None:
        print(
            "bench-native: no C++ toolchain found (install g++ or clang++, "
            "or set REPRO_NATIVE_CXX); nothing to benchmark"
        )
        return 1

    source = ALL_PROGRAMS["sssp"]
    graph = rmat(args.scale, args.edge_factor, seed=args.seed, weights=(1, 4))
    start_vertex = int(np.argmax(graph.out_degrees()))
    base = Schedule(
        priority_update=args.strategy, delta=args.delta, num_threads=args.threads
    )
    oracle_prog = compile_program(source, base)
    native_prog = compile_program(source, base.with_(execution="native"))
    argv = ["bench", "-", str(start_vertex)]

    # Build (or reuse) the kernel explicitly so the compile cost is measured
    # apart from the query time.
    try:
        kernel_source = generate_native_cpp(native_prog.plan)
    except Exception as exc:  # CompileError: unlowerable program shape
        print(f"bench-native: cannot lower program to native: {exc}")
        return 1
    key = kernel_key(kernel_source, toolchain)
    cache_hit = (kernel_cache_dir() / f"{key}.so").exists()
    build_start = time.perf_counter()
    build_kernel(kernel_source, toolchain)
    compile_seconds = time.perf_counter() - build_start

    def run_once(program, vectorize):
        started = time.perf_counter()
        result = program.run(argv, graph=graph, vectorize=vectorize)
        return time.perf_counter() - started, result

    # Correctness gate: native output vectors must equal the scalar oracle
    # bit for bit before any timing is trusted.
    _, oracle_res = run_once(oracle_prog, False)
    _, native_res = run_once(native_prog, True)
    if native_prog.native_fallback_reason is not None:
        print(
            "bench-native: native execution fell back to Python "
            f"({native_prog.native_fallback_reason}); aborting"
        )
        return 1
    vectors_checked = 0
    checksums: dict[str, int] = {}
    for name, value in sorted(oracle_res.globals.items()):
        if not isinstance(value, np.ndarray):
            continue
        fresh = native_res.globals.get(name)
        if fresh is None or not np.array_equal(value, fresh):
            print(f"bench-native: vector {name} diverged from the oracle; aborting")
            return 1
        vectors_checked += 1
        finite = value[np.abs(value) < 2**62]
        checksums[name] = int(finite.sum())
    if vectors_checked == 0:
        print("bench-native: program produced no output vectors; aborting")
        return 1

    oracle_time = min(run_once(oracle_prog, False)[0] for _ in range(args.repeats))
    native_time = min(run_once(native_prog, True)[0] for _ in range(args.repeats))
    speedup = oracle_time / native_time if native_time > 0 else float("inf")

    record = {
        "benchmark": (
            f"sssp end-to-end ({args.strategy}, delta={args.delta}, "
            "native compiled kernel vs sequential scalar oracle)"
        ),
        "graph": {
            "kind": "rmat",
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
        },
        "strategy": args.strategy,
        "delta": args.delta,
        "num_threads": args.threads,
        "repeats": args.repeats,
        "toolchain": {
            "cxx": toolchain.cxx,
            "version": toolchain.version,
            "openmp": toolchain.openmp,
        },
        "kernel_key": key,
        "kernel_cache_hit": cache_hit,
        "compile_seconds": compile_seconds,
        "oracle_seconds": oracle_time,
        "native_seconds": native_time,
        "speedup_vs_oracle": speedup,
        "outputs_identical": True,
        "vector_checksums": checksums,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"{graph.num_edges} edges: oracle {oracle_time:.4f}s, native "
        f"{native_time:.4f}s (compile {compile_seconds:.2f}s"
        f"{', cached' if cache_hit else ''}); "
        f"{speedup:.1f}x vs oracle -> {args.output}"
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"bench-native: speedup {speedup:.1f}x vs the oracle is below "
            f"the required {args.min_speedup:.1f}x"
        )
        return 1
    return 0


def _cmd_bench_incremental(args: argparse.Namespace) -> int:
    """Benchmark incremental resume against full recomputation.

    Converges once, then applies deterministic small mutation batches.
    After every batch the resumed vector is compared bit-for-bit against a
    from-scratch run on the mutated graph (the benchmark aborts on any
    mismatch), and both paths are timed: the incremental apply once (its
    state is consumed), the full re-run as a min over ``--repeats`` — the
    stable-timing bias favours the *full* path, so the reported speedup is
    conservative.
    """
    import json
    import time

    from .graph.mutations import Mutation
    from .incremental import IncrementalSession

    if args.algorithm == "kcore":
        if args.strategy not in ("lazy_constant_sum", "lazy", "eager_no_fusion"):
            raise GraphItError(
                "k-core supports lazy_constant_sum, lazy, or eager_no_fusion"
            )
        graph = rmat(args.scale, args.edge_factor, seed=args.seed).symmetrized()
        schedule = Schedule(priority_update=args.strategy, delta=1)
        source = 0
    else:
        if args.strategy == "lazy_constant_sum":
            raise GraphItError(
                f"{args.algorithm} is a min/max program; lazy_constant_sum "
                f"only applies to constant-sum updates"
            )
        graph = rmat(args.scale, args.edge_factor, seed=args.seed, weights=(1, 8))
        schedule = Schedule(priority_update=args.strategy, delta=args.delta)
        source = int(np.argmax(graph.out_degrees()))

    rng = np.random.default_rng(args.seed)
    n = graph.num_vertices

    def make_batch():
        """One deterministic batch: distinct (src, dst) pairs per kind."""
        srcs, dsts, _ = graph.edge_list()
        chosen = rng.choice(srcs.size, size=min(args.batch_size, srcs.size), replace=False)
        batch: list[Mutation] = []
        seen: set[tuple[int, int]] = set()
        for i in chosen:
            src, dst = int(srcs[i]), int(dsts[i])
            if (src, dst) in seen:
                continue
            seen.add((src, dst))
            roll = rng.random()
            if roll < 0.4:
                batch.append(
                    Mutation.add(
                        int(rng.integers(n)),
                        int(rng.integers(n)),
                        int(rng.integers(1, 9)),
                    )
                )
            elif roll < 0.7 or args.algorithm == "kcore":
                batch.append(Mutation.remove(src, dst))
            else:
                batch.append(Mutation.update(src, dst, int(rng.integers(1, 9))))
        return batch

    session = IncrementalSession(graph, args.algorithm, source=source, schedule=schedule)
    session.run()

    incremental_seconds = 0.0
    full_seconds = 0.0
    seeds_total = 0
    invalidated_total = 0
    touched_total = 0
    for index in range(args.batches):
        batch = make_batch()
        started = time.perf_counter()
        result = session.apply(batch)
        incremental_seconds += time.perf_counter() - started
        seeds_total += result.seeds
        invalidated_total += result.invalidated
        touched_total += result.vertices_touched

        # Full-recompute oracle on the mutated graph: correctness gate and
        # the baseline timing in one.
        times = []
        oracle_values = None
        for _ in range(args.repeats):
            fresh = IncrementalSession(
                session.graph, args.algorithm, source=source, schedule=schedule
            )
            started = time.perf_counter()
            oracle_values = fresh.run().values
            times.append(time.perf_counter() - started)
        full_seconds += min(times)
        if not np.array_equal(result.values, oracle_values):
            print(
                f"bench-incremental: batch {index} diverged from the "
                f"full-recompute oracle; aborting"
            )
            return 1

    speedup = full_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    record = {
        "benchmark": (
            f"incremental resume vs full recompute "
            f"({args.algorithm}, {args.strategy})"
        ),
        "graph": {
            "kind": "rmat",
            "scale": args.scale,
            "edge_factor": args.edge_factor,
            "seed": args.seed,
            "num_vertices": int(n),
            "num_edges": int(graph.num_edges),
        },
        "algorithm": args.algorithm,
        "strategy": args.strategy,
        "delta": schedule.delta,
        "num_batches": args.batches,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": speedup,
        "bit_exact": True,
        "incremental_seeds": seeds_total,
        "incremental_invalidated": invalidated_total,
        "incremental_vertices_touched": touched_total,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"{args.batches} batches x {args.batch_size} mutations: "
        f"full {full_seconds:.4f}s, incremental {incremental_seconds:.4f}s, "
        f"speedup {speedup:.1f}x -> {args.output}"
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"bench-incremental: speedup {speedup:.1f}x is below the "
            f"required {args.min_speedup:.1f}x"
        )
        return 1
    return 0


def _resolve_serve_graph(spec: str):
    """A graph for the query service: a file path or an ``rmat:`` spec.

    ``rmat:scale=10,edge_factor=16,seed=0`` generates a synthetic graph
    in-process — the CI smoke job and local experiments boot without a
    fixture file on disk.
    """
    if spec.startswith("rmat:"):
        params = {"scale": 10, "edge_factor": 16, "seed": 0}
        for part in spec[len("rmat:"):].split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            if not sep or name.strip() not in params:
                raise GraphItError(
                    f"bad rmat spec component {part!r}; expected "
                    "scale=/edge_factor=/seed="
                )
            try:
                params[name.strip()] = int(value)
            except ValueError:
                raise GraphItError(f"rmat spec {name.strip()!r} must be an integer")
        graph = rmat(
            params["scale"], params["edge_factor"], seed=params["seed"],
            weights=(1, 4),
        )
        name = (
            f"rmat(scale={params['scale']},"
            f"edge_factor={params['edge_factor']},seed={params['seed']})"
        )
        return graph, name
    return _load_graph(spec), spec


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: load the graph once, answer queries until killed."""
    import asyncio

    from .serve import QueryServer, ServeEngine

    graph, name = _resolve_serve_graph(args.graph)
    engine = ServeEngine(
        graph,
        graph_name=name,
        max_pending=args.max_pending,
        cache_capacity=args.cache_capacity,
        workers=args.threads,
    )
    server = QueryServer(engine, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        print(
            f"serving {name} ({graph.num_vertices} vertices, "
            f"{graph.num_edges} edges) on "
            f"http://{server.host}:{server.port}",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("serve: shutting down")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """``repro bench-serve``: the closed-loop load test (CI perf gate)."""
    import json

    from .obs import phase_profile, tracing
    from .serve.bench import check_floors, run_serve_bench
    from .serve.client import ServeClient
    from .serve.server import start_in_thread

    record = run_serve_bench(
        scale=args.scale,
        edge_factor=args.edge_factor,
        seed=args.seed,
        clients=args.clients,
        requests=args.requests,
        pool_size=args.pool_size,
        zipf_s=args.zipf_s,
        program=args.program,
        delta=args.delta,
        cached_requests=args.cached_requests,
        max_pending=args.max_pending,
    )

    # A short traced pass on a fresh (cold-cache) server embeds the phase
    # profile `bench-check --attribute` diffs on regression.
    with tracing() as tracer:
        handle = start_in_thread(rmat(args.scale, args.edge_factor,
                                      seed=args.seed, weights=(1, 4)))
        try:
            with ServeClient(*handle.address) as client:
                for source in (0, 1, 0):
                    client.query(
                        args.program,
                        source=source,
                        schedule={"priority_update": "lazy", "delta": args.delta},
                    )
        finally:
            handle.stop()
    record["phase_profile"] = phase_profile(tracer.events)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"{record['total_requests']} requests from {args.clients} clients: "
        f"{record['throughput_qps']:.0f} qps, "
        f"p50 {record['p50_ms']:.2f}ms p95 {record['p95_ms']:.2f}ms "
        f"p99 {record['p99_ms']:.2f}ms, "
        f"cached p95 {record['cached_p95_ms']:.2f}ms -> {args.output}"
    )
    if args.enforce_floors:
        problems = check_floors(record)
        for problem in problems:
            print(f"bench-serve FAIL: {problem}")
        if problems:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphIt priority-extension reproduction (CGO 2020)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser(
        "compile", help="compile a DSL program to Python or C++ source"
    )
    compile_parser.add_argument(
        "program", help=f"a .gt file or one of: {', '.join(sorted(ALL_PROGRAMS))}"
    )
    compile_parser.add_argument(
        "--backend", default="python", choices=("python", "cpp")
    )
    compile_parser.add_argument("-o", "--output", help="output file (default stdout)")
    _add_schedule_arguments(compile_parser)
    compile_parser.set_defaults(handler=_cmd_compile)

    run_parser = commands.add_parser(
        "run", help="compile (Python backend) and run on a graph file"
    )
    run_parser.add_argument("program")
    run_parser.add_argument("graph", help="edge-list (.el) or .npz graph file")
    run_parser.add_argument(
        "args", nargs="*", help="extra argv for the program (e.g. start vertex)"
    )
    _add_schedule_arguments(run_parser)
    run_parser.add_argument(
        "--sanitize",
        action="store_true",
        help="validate every apply operator against the static effect "
        "summary at runtime (fails loudly on any unreported access)",
    )
    run_parser.add_argument(
        "--incremental",
        action="store_true",
        help="after the converged run, apply the --mutations script batch "
        "by batch and resume the ordered engine from a seeded frontier "
        "instead of recomputing (requires an I001-eligible program)",
    )
    run_parser.add_argument(
        "--mutations",
        default=None,
        help="mutation script: lines of 'add SRC DST [W]' / 'remove SRC "
        "DST' / 'update SRC DST W', with 'flush' separating batches",
    )
    run_parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-batch bit-exact comparison against a "
        "from-scratch run on the mutated graph",
    )
    run_parser.set_defaults(handler=_cmd_run)

    generate_parser = commands.add_parser(
        "generate", help="generate a synthetic graph file"
    )
    generate_parser.add_argument("kind", choices=("rmat", "road"))
    generate_parser.add_argument("--scale", type=int, default=10)
    generate_parser.add_argument("--edge-factor", type=int, default=16)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("-o", "--output", required=True)
    generate_parser.set_defaults(handler=_cmd_generate)

    autotune_parser = commands.add_parser(
        "autotune", help="search for a schedule for an algorithm/graph pair"
    )
    autotune_parser.add_argument(
        "algorithm",
        choices=("sssp", "wbfs", "ppsp", "astar", "kcore", "setcover"),
    )
    autotune_parser.add_argument("graph")
    autotune_parser.add_argument("--source", type=int, default=0)
    autotune_parser.add_argument("--target", type=int, default=None)
    autotune_parser.add_argument("--trials", type=int, default=40)
    autotune_parser.add_argument("--threads", type=int, default=8)
    autotune_parser.add_argument("--seed", type=int, default=0)
    autotune_parser.set_defaults(handler=_cmd_autotune)

    lint_parser = commands.add_parser(
        "lint",
        help="run the midend diagnostics engine over one or more programs",
    )
    lint_parser.add_argument(
        "programs",
        nargs="+",
        help=f".gt files and/or built-ins: {', '.join(sorted(ALL_PROGRAMS))}",
    )
    lint_parser.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as errors (nonzero exit on any warning)",
    )
    lint_parser.add_argument(
        "--info",
        action="store_true",
        help="also print informational race-classification notes (R002/R003)",
    )
    lint_group = lint_parser.add_argument_group(
        "schedule to lint under (default: the program's own / a feasible one)"
    )
    lint_group.add_argument(
        "--priority-update",
        default=None,
        choices=(
            "eager_with_fusion",
            "eager_no_fusion",
            "lazy",
            "lazy_constant_sum",
        ),
    )
    lint_group.add_argument("--delta", type=int, default=1)
    lint_group.add_argument(
        "--direction", default="SparsePush", choices=("SparsePush", "DensePull")
    )
    lint_parser.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="text prints file:line:col diagnostics; json emits one "
        "machine-readable document (code, severity, span, message)",
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    analyze_parser = commands.add_parser(
        "analyze",
        help="print the whole-program effect analysis: per-UDF read/write "
        "sets, monotonicity verdicts, and the fusion-safety matrix",
    )
    analyze_parser.add_argument(
        "programs",
        nargs="+",
        help=f".gt files and/or built-ins: {', '.join(sorted(ALL_PROGRAMS))}",
    )
    analyze_parser.add_argument(
        "--format", default="text", choices=("text", "json")
    )
    analyze_group = analyze_parser.add_argument_group(
        "schedule to analyze under (default: the program's own / a feasible one)"
    )
    analyze_group.add_argument(
        "--priority-update",
        default=None,
        choices=(
            "eager_with_fusion",
            "eager_no_fusion",
            "lazy",
            "lazy_constant_sum",
        ),
    )
    analyze_group.add_argument("--delta", type=int, default=1)
    analyze_group.add_argument(
        "--direction", default="SparsePush", choices=("SparsePush", "DensePull")
    )
    analyze_parser.set_defaults(handler=_cmd_analyze)

    bench_parser = commands.add_parser(
        "bench-kernels",
        help="benchmark the vectorized apply operators vs the scalar "
        "interpreter and write BENCH_apply.json",
    )
    bench_parser.add_argument("--scale", type=int, default=13)
    bench_parser.add_argument("--edge-factor", type=int, default=16)
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument("--delta", type=int, default=3)
    bench_parser.add_argument("--threads", type=int, default=8)
    bench_parser.add_argument("--repeats", type=int, default=3)
    bench_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero when the vectorized path is below this speedup",
    )
    bench_parser.add_argument("-o", "--output", default="BENCH_apply.json")
    bench_parser.set_defaults(handler=_cmd_bench_kernels)

    par_parser = commands.add_parser(
        "bench-parallel",
        help="benchmark the parallel execution engine end-to-end against the "
        "sequential scalar oracle and write BENCH_parallel.json",
    )
    par_parser.add_argument("--scale", type=int, default=13)
    par_parser.add_argument("--edge-factor", type=int, default=16)
    par_parser.add_argument("--seed", type=int, default=0)
    par_parser.add_argument("--delta", type=int, default=3)
    par_parser.add_argument("--workers", type=int, default=4)
    par_parser.add_argument(
        "--strategy",
        default="eager_with_fusion",
        choices=("eager_with_fusion", "eager_no_fusion", "lazy"),
    )
    par_parser.add_argument("--repeats", type=int, default=3)
    par_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero when the parallel engine is below this speedup "
        "over the sequential scalar oracle",
    )
    par_parser.add_argument("-o", "--output", default="BENCH_parallel.json")
    par_parser.set_defaults(handler=_cmd_bench_parallel)

    native_parser = commands.add_parser(
        "bench-native",
        help="benchmark the native compiled kernel end-to-end against the "
        "sequential scalar oracle and write BENCH_native.json",
    )
    native_parser.add_argument("--scale", type=int, default=13)
    native_parser.add_argument("--edge-factor", type=int, default=16)
    native_parser.add_argument("--seed", type=int, default=0)
    native_parser.add_argument("--delta", type=int, default=3)
    native_parser.add_argument("--threads", type=int, default=4)
    native_parser.add_argument(
        "--strategy",
        default="eager_with_fusion",
        choices=("eager_with_fusion", "eager_no_fusion", "lazy"),
    )
    native_parser.add_argument("--repeats", type=int, default=3)
    native_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero when the native kernel is below this speedup "
        "over the sequential scalar oracle",
    )
    native_parser.add_argument("-o", "--output", default="BENCH_native.json")
    native_parser.set_defaults(handler=_cmd_bench_native)

    incr_parser = commands.add_parser(
        "bench-incremental",
        help="benchmark incremental resume against full recomputation on "
        "small mutation batches and write BENCH_incremental.json",
    )
    incr_parser.add_argument("--scale", type=int, default=13)
    incr_parser.add_argument("--edge-factor", type=int, default=16)
    incr_parser.add_argument("--seed", type=int, default=0)
    incr_parser.add_argument("--delta", type=int, default=3)
    incr_parser.add_argument(
        "--algorithm",
        default="sssp",
        choices=("sssp", "widest_path", "kcore"),
    )
    incr_parser.add_argument(
        "--strategy",
        default="lazy",
        choices=("eager_with_fusion", "eager_no_fusion", "lazy", "lazy_constant_sum"),
    )
    incr_parser.add_argument(
        "--batches", type=int, default=5, help="number of mutation batches"
    )
    incr_parser.add_argument(
        "--batch-size", type=int, default=8, help="mutations per batch"
    )
    incr_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="full-recompute timing repeats (min is used)",
    )
    incr_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit nonzero when incremental resume is below this speedup "
        "over full recomputation",
    )
    incr_parser.add_argument("-o", "--output", default="BENCH_incremental.json")
    incr_parser.set_defaults(handler=_cmd_bench_incremental)

    trace_parser = commands.add_parser(
        "trace",
        help="run a program under the tracer and write Chrome-trace JSON "
        "(open in Perfetto / chrome://tracing)",
    )
    trace_parser.add_argument(
        "program", help=f"a .gt file or one of: {', '.join(sorted(ALL_PROGRAMS))}"
    )
    trace_parser.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="edge-list (.el) or .npz graph file; '-' or omitted for a "
        "synthetic R-MAT (scale 10)",
    )
    trace_parser.add_argument(
        "args", nargs="*", help="extra argv for the program (default: '0')"
    )
    trace_parser.add_argument(
        "--out", default="trace.json", help="output trace file"
    )
    _add_schedule_arguments(trace_parser)
    trace_parser.set_defaults(handler=_cmd_trace)

    profile_parser = commands.add_parser(
        "profile",
        help="run a program under the tracer and print a self-time profile",
    )
    profile_parser.add_argument(
        "program", help=f"a .gt file or one of: {', '.join(sorted(ALL_PROGRAMS))}"
    )
    profile_parser.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="edge-list (.el) or .npz graph file; '-' or omitted for a "
        "synthetic R-MAT (scale 10)",
    )
    profile_parser.add_argument(
        "args", nargs="*", help="extra argv for the program (default: '0')"
    )
    profile_parser.add_argument(
        "--top", type=int, default=15, help="rows to print (default 15)"
    )
    profile_parser.add_argument(
        "--out", default=None, help="also write the Chrome-trace JSON here"
    )
    _add_schedule_arguments(profile_parser)
    profile_parser.set_defaults(handler=_cmd_profile)

    metrics_parser = commands.add_parser(
        "metrics",
        help="run a program and print the always-on metrics registry "
        "(JSON or Prometheus text exposition)",
    )
    metrics_parser.add_argument(
        "program", help=f"a .gt file or one of: {', '.join(sorted(ALL_PROGRAMS))}"
    )
    metrics_parser.add_argument(
        "graph",
        nargs="?",
        default=None,
        help="edge-list (.el) or .npz graph file; '-' or omitted for a "
        "synthetic R-MAT (scale 10)",
    )
    metrics_parser.add_argument(
        "args", nargs="*", help="extra argv for the program (default: '0')"
    )
    metrics_parser.add_argument(
        "--format",
        default="json",
        choices=("json", "prom"),
        help="json dumps the snapshot; prom emits Prometheus text "
        "exposition format",
    )
    metrics_parser.add_argument(
        "--out", default=None, help="write the metrics here instead of stdout"
    )
    metrics_parser.add_argument(
        "--workload",
        default=None,
        metavar="PATH",
        help="also write the run's workload profile (frontier shape, "
        "bucket occupancy, redundant-update ratio) as JSON",
    )
    _add_schedule_arguments(metrics_parser)
    metrics_parser.set_defaults(handler=_cmd_metrics)

    last_run_parser = commands.add_parser(
        "last-run",
        help="inspect the flight recorder forensics dump from the most "
        "recent failed invocation",
    )
    last_run_parser.add_argument(
        "--path",
        default=None,
        help="forensics file (default: $REPRO_STATE_DIR or "
        ".repro/last_run.json)",
    )
    last_run_parser.add_argument(
        "--raw", action="store_true", help="print the raw JSON document"
    )
    last_run_parser.add_argument(
        "--tail",
        type=int,
        default=20,
        help="recorded spans to show (default 20)",
    )
    last_run_parser.add_argument(
        "--traceback",
        action="store_true",
        help="also print the recorded Python traceback",
    )
    last_run_parser.set_defaults(handler=_cmd_last_run)

    diff_parser = commands.add_parser(
        "trace-diff",
        help="attribute the wall-time delta between two runs to phases "
        "(inputs: chrome traces, phase profiles, or bench records)",
    )
    diff_parser.add_argument(
        "baseline", help="baseline artifact (trace/profile/bench JSON)"
    )
    diff_parser.add_argument(
        "fresh", help="fresh artifact to attribute against the baseline"
    )
    diff_parser.add_argument(
        "--top", type=int, default=10, help="phases to print (default 10)"
    )
    diff_parser.add_argument(
        "--format", default="text", choices=("text", "json")
    )
    diff_parser.set_defaults(handler=_cmd_trace_diff)

    serve_parser = commands.add_parser(
        "serve",
        help="long-running query service: load a graph once, answer "
        "concurrent point queries over HTTP/JSON",
    )
    serve_parser.add_argument(
        "--graph",
        required=True,
        help="graph file (.el/.npz) or an in-process generator spec like "
        "rmat:scale=10,edge_factor=16,seed=0",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8732, help="0 picks an ephemeral port"
    )
    serve_parser.add_argument(
        "--threads",
        type=int,
        default=2,
        help="worker threads running traversals (default 2)",
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission budget: fresh traversals beyond this many pending "
        "are rejected with 429 + Retry-After (cache hits and coalesced "
        "joins are always admitted)",
    )
    serve_parser.add_argument(
        "--cache-capacity",
        type=int,
        default=128,
        help="result-cache capacity in traversals (default 128)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    bserve_parser = commands.add_parser(
        "bench-serve",
        help="closed-loop load test against a live query server and write "
        "BENCH_serve.json (the CI perf gate for repro serve)",
    )
    bserve_parser.add_argument("--scale", type=int, default=10)
    bserve_parser.add_argument("--edge-factor", type=int, default=16)
    bserve_parser.add_argument("--seed", type=int, default=0)
    bserve_parser.add_argument(
        "--clients", type=int, default=8, help="closed-loop client threads"
    )
    bserve_parser.add_argument(
        "--requests", type=int, default=50, help="requests per client"
    )
    bserve_parser.add_argument(
        "--pool-size",
        type=int,
        default=24,
        help="size of the hot-source pool the Zipf draw ranks over",
    )
    bserve_parser.add_argument(
        "--zipf-s", type=float, default=1.2, help="Zipf skew exponent"
    )
    bserve_parser.add_argument(
        "--program", default="sssp", help="servable program to query"
    )
    bserve_parser.add_argument("--delta", type=int, default=3)
    bserve_parser.add_argument(
        "--cached-requests",
        type=int,
        default=200,
        help="requests in the cached-hit phase (one client, hot source)",
    )
    bserve_parser.add_argument("--max-pending", type=int, default=64)
    bserve_parser.add_argument("-o", "--output", default="BENCH_serve.json")
    bserve_parser.add_argument(
        "--enforce-floors",
        action="store_true",
        help="fail when the run misses the absolute qps/latency floors",
    )
    bserve_parser.set_defaults(handler=_cmd_bench_serve)

    check_parser = commands.add_parser(
        "bench-check",
        help="re-run both benchmarks and fail on regressions vs the "
        "checked-in baselines (the CI perf gate)",
    )
    check_parser.add_argument(
        "--kernels-baseline",
        default="BENCH_apply.json",
        help="baseline record for bench-kernels",
    )
    check_parser.add_argument(
        "--parallel-baseline",
        default="BENCH_parallel.json",
        help="baseline record for bench-parallel",
    )
    check_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional speedup regression (0.2 = -20%%)",
    )
    check_parser.add_argument(
        "--tolerance-kernels",
        type=float,
        default=None,
        help="override --tolerance for the kernels benchmark",
    )
    check_parser.add_argument(
        "--tolerance-parallel",
        type=float,
        default=None,
        help="override --tolerance for the parallel benchmark",
    )
    check_parser.add_argument(
        "--native-baseline",
        default="BENCH_native.json",
        help="baseline record for bench-native (skipped when the file or "
        "a C++ toolchain is missing)",
    )
    check_parser.add_argument(
        "--tolerance-native",
        type=float,
        default=None,
        help="override --tolerance for the native benchmark",
    )
    check_parser.add_argument(
        "--incremental-baseline",
        default="BENCH_incremental.json",
        help="baseline record for bench-incremental",
    )
    check_parser.add_argument(
        "--tolerance-incremental",
        type=float,
        default=None,
        help="override --tolerance for the incremental benchmark",
    )
    check_parser.add_argument(
        "--serve-baseline",
        default="BENCH_serve.json",
        help="baseline record for bench-serve (skipped when missing)",
    )
    check_parser.add_argument(
        "--tolerance-serve",
        type=float,
        default=None,
        help="override --tolerance for the query-service benchmark",
    )
    check_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override the baselines' repeat count for the fresh runs",
    )
    check_parser.add_argument(
        "--out-dir",
        default=None,
        help="directory for the fresh bench JSON (default: a temp dir)",
    )
    check_parser.add_argument(
        "--attribute",
        action="store_true",
        help="print a per-phase trace-diff of each benchmark against the "
        "phase profile embedded in its baseline record",
    )
    check_parser.set_defaults(handler=_cmd_bench_check)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    effective_argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return args.handler(args)
    except GraphItError as error:
        _dump_forensics_quietly(error, effective_argv)
        print(f"error: {error}", file=sys.stderr)
        return 1
    except Exception as error:
        # Unexpected crash: preserve the traceback for the caller, but
        # dump the flight recorder first so `repro last-run` has the
        # spans leading up to it.
        _dump_forensics_quietly(error, effective_argv)
        raise


def _dump_forensics_quietly(error: BaseException, argv: list[str]) -> None:
    """Write the flight-recorder dump, never masking the original error."""
    from .obs import dump_forensics

    path = dump_forensics(error, argv=argv)
    if path is not None:
        print(
            f"forensics written to {path} (inspect with `repro last-run`)",
            file=sys.stderr,
        )
