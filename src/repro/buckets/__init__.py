"""Bucketing substrate: lazy (Julienne-style), eager (GAPBS-style with
bucket fusion), and relaxed (Galois-style) priority queues."""

from .eager import EagerBucketQueue
from .interface import (
    NULL_PRIORITY_HIGHER,
    NULL_PRIORITY_LOWER,
    AbstractPriorityQueue,
    PriorityDirection,
)
from .lazy import LazyBucketQueue
from .relaxed import RelaxedPriorityQueue

__all__ = [
    "AbstractPriorityQueue",
    "PriorityDirection",
    "LazyBucketQueue",
    "EagerBucketQueue",
    "RelaxedPriorityQueue",
    "NULL_PRIORITY_LOWER",
    "NULL_PRIORITY_HIGHER",
]
