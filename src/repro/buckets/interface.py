"""Abstract priority queue: the Table 1 operator vocabulary.

Both bucketing strategies (lazy, Section 3.1; eager, Section 3.2) implement
this interface.  The queue does not own the priorities: it references a
*priority vector* (e.g. the ``dist`` array in SSSP) and maps values to bucket
indices with the coarsening factor Δ, exactly as the paper's redesigned
Julienne interface does ("computes the priorities using a priority vector and
Δ value ... eliminating extra function calls").

Internally all implementations work in *order space*: an ascending integer
sequence of buckets to process.  For ``lower_first`` queues the order of a
priority value ``p`` is ``p // Δ``; for ``higher_first`` queues it is
``-(p // Δ)``, so that ascending order always means "process next".  This
lets one implementation serve SSSP (lower first) and SetCover (higher first).

Monotonicity contract (Section 2): priorities move in one direction only.
Updates that would move a vertex into an already-processed bucket are a
priority inversion; with priority coarsening the implementations clamp such
updates into the current bucket (counted in ``stats``), which is what both
GAPBS and the paper's Figure 10 transformed function do.  Updates to vertices
whose bucket has already been finalized are ignored.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod

import numpy as np

from ..errors import PriorityQueueError
from ..graph.properties import INT_MAX
from ..runtime.stats import RuntimeStats

__all__ = ["PriorityDirection", "AbstractPriorityQueue", "NULL_PRIORITY_LOWER", "NULL_PRIORITY_HIGHER"]

# Null priority sentinels (Section 2's ∅): a vertex with the null priority is
# not tracked by the queue until an update gives it a real priority.
NULL_PRIORITY_LOWER = INT_MAX
NULL_PRIORITY_HIGHER = np.int64(-(2**62))


class PriorityDirection(enum.Enum):
    """Which end of the priority range is processed first."""

    LOWER_FIRST = "lower_first"
    HIGHER_FIRST = "higher_first"

    @classmethod
    def parse(cls, value: "PriorityDirection | str") -> "PriorityDirection":
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise PriorityQueueError(
            f"unknown priority direction {value!r}; "
            f"expected 'lower_first' or 'higher_first'"
        )


class AbstractPriorityQueue(ABC):
    """Common state and the Table 1 operator set.

    Parameters
    ----------
    priority_vector:
        int64 numpy array of per-vertex priority values; the queue keeps a
        live reference (updates through the queue mutate it in place).
    direction:
        ``lower_first`` or ``higher_first`` processing order.
    delta:
        Priority-coarsening factor Δ; bucket of value ``p`` is ``p // Δ``.
    allow_coarsening:
        Mirrors the constructor flag in Table 1.  When False, ``delta`` must
        be 1 (strict ordering, required by k-core and SetCover).
    stats:
        Statistics sink (a fresh one is created when omitted).
    initial_vertices:
        The vertices initially present in the queue.  ``None`` means "every
        vertex whose priority is non-null" (the k-core/SetCover pattern);
        SSSP passes ``[start_vertex]``.
    """

    def __init__(
        self,
        priority_vector: np.ndarray,
        direction: PriorityDirection | str = PriorityDirection.LOWER_FIRST,
        delta: int = 1,
        allow_coarsening: bool = True,
        stats: RuntimeStats | None = None,
        initial_vertices: np.ndarray | list[int] | None = None,
    ):
        if priority_vector.dtype != np.int64 or priority_vector.ndim != 1:
            raise PriorityQueueError("priority_vector must be a 1-D int64 array")
        if delta < 1:
            raise PriorityQueueError("delta must be >= 1")
        self.direction = PriorityDirection.parse(direction)
        if not allow_coarsening and delta != 1:
            raise PriorityQueueError(
                "delta coarsening requested on a queue with coarsening disabled"
            )
        self.priority_vector = priority_vector
        self.delta = int(delta)
        self.allow_coarsening = bool(allow_coarsening)
        self.stats = stats if stats is not None else RuntimeStats()
        self.num_vertices = priority_vector.size
        self.priority_inversions = 0
        # Order of the bucket currently being processed; buckets with order
        # strictly below this are finalized.
        self._cur_order: int | None = None

        if self.direction is PriorityDirection.LOWER_FIRST:
            self.null_priority = NULL_PRIORITY_LOWER
        else:
            self.null_priority = NULL_PRIORITY_HIGHER

        if initial_vertices is None:
            initial = np.flatnonzero(priority_vector != self.null_priority).astype(
                np.int64
            )
        else:
            initial = np.asarray(initial_vertices, dtype=np.int64)
        self._initial_vertices = initial
        # Priority value each vertex was last processed at; the sentinel is a
        # value no real priority (or null sentinel) can take.
        self._processed_value = np.full(
            self.num_vertices, np.iinfo(np.int64).min, dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Order-space mapping
    # ------------------------------------------------------------------
    def order_of_value(self, value: int | np.ndarray) -> int | np.ndarray:
        """Map priority value(s) to order space (ascending = next to process)."""
        bucket = value // self.delta
        if self.direction is PriorityDirection.LOWER_FIRST:
            return bucket
        return -bucket

    def value_of_order(self, order: int) -> int:
        """The smallest-magnitude priority value mapping to ``order``."""
        if self.direction is PriorityDirection.LOWER_FIRST:
            return order * self.delta
        return -order * self.delta

    @property
    def current_order(self) -> int | None:
        """Order of the bucket being processed (None before first dequeue)."""
        return self._cur_order

    # ------------------------------------------------------------------
    # Table 1 operators
    # ------------------------------------------------------------------
    def get_current_priority(self) -> int:
        """Priority value of the current bucket (``pq.getCurrentPriority()``)."""
        if self._cur_order is None:
            raise PriorityQueueError("no bucket has been dequeued yet")
        return self.value_of_order(self._cur_order)

    def finished_vertex(self, vertex: int) -> bool:
        """True when ``vertex``'s priority can no longer change
        (``pq.finishedVertex(v)``): its bucket has already been processed."""
        if self._cur_order is None:
            return False
        priority = self.priority_vector[vertex]
        if priority == self.null_priority:
            return False
        return self.order_of_value(int(priority)) < self._cur_order

    @abstractmethod
    def finished(self) -> bool:
        """True when no bucket remains to process (``pq.finished()``)."""

    @abstractmethod
    def dequeue_ready_set(self) -> np.ndarray:
        """Extract the next ready bucket as an array of vertex ids
        (``pq.dequeueReadySet()``)."""

    @abstractmethod
    def update_priority_min(self, vertex: int, new_value: int) -> bool:
        """Decrease ``vertex``'s priority to ``new_value`` if smaller
        (``pq.updatePriorityMin``).  Returns True when the priority changed."""

    @abstractmethod
    def update_priority_max(self, vertex: int, new_value: int) -> bool:
        """Increase ``vertex``'s priority to ``new_value`` if larger
        (``pq.updatePriorityMax``).  Returns True when the priority changed."""

    @abstractmethod
    def update_priority_sum(
        self, vertex: int, sum_diff: int, min_threshold: int | None = None
    ) -> bool:
        """Add ``sum_diff`` to ``vertex``'s priority, clamped at
        ``min_threshold`` (``pq.updatePrioritySum``)."""

    # ------------------------------------------------------------------
    # Shared helpers for implementations
    # ------------------------------------------------------------------
    def _clamped_order(self, order: int) -> int:
        """Clamp a target order into the unprocessed range, counting inversions."""
        if self._cur_order is not None and order < self._cur_order:
            self.priority_inversions += 1
            return self._cur_order
        return order

    def _filter_and_mark_live(self, members: np.ndarray, order: int) -> np.ndarray:
        """Select the live entries of a popped bucket and mark them processed.

        An entry is live when its vertex's current priority still maps to
        this bucket or an earlier one (later-mapping copies are early stale
        duplicates; at-or-earlier covers inversion-clamped insertions), its
        priority is not null (removed vertices), and the vertex has not
        already been processed at this exact priority value (the stale-copy
        filter — the role of GAPBS' ``dist >= Δ * bucket`` check).
        """
        if members.size == 0:
            return members
        values = self.priority_vector[members]
        orders = np.asarray(self.order_of_value(values))
        live_mask = (
            (orders <= order)
            & (values != self.null_priority)
            & (values != self._processed_value[members])
        )
        live = members[live_mask]
        self._processed_value[live] = values[live_mask]
        return live

    def _is_finalized(self, vertex: int) -> bool:
        """Updates to finalized vertices are ignored (k-core correctness)."""
        if self._cur_order is None:
            return False
        priority = self.priority_vector[vertex]
        if priority == self.null_priority:
            return False
        return self.order_of_value(int(priority)) < self._cur_order

    _sum_sign: int = 0

    def _check_sum_sign(self, sum_diff: int) -> None:
        """Enforce Section 2's monotonic-change contract for sum updates.

        ``updatePriorityMin``/``Max`` are inherently monotone (a larger/smaller
        value is simply a no-op, like the writeMin in the generated code), but
        ``updatePrioritySum`` could move priorities both ways; the contract
        requires one direction per queue, so the first update's sign is pinned.
        """
        if sum_diff == 0:
            return
        sign = 1 if sum_diff > 0 else -1
        if self._sum_sign == 0:
            self._sum_sign = sign
        elif self._sum_sign != sign:
            raise PriorityQueueError(
                "updatePrioritySum changed direction; priorities must change "
                "monotonically (Section 2)"
            )
