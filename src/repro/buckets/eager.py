"""Eager bucket queue with thread-local buckets and bucket fusion
(Sections 3.2 and 3.3 of the paper).

Each virtual thread owns a set of local buckets (``local_bins`` in the
generated code, Figure 9(c)); a priority update immediately inserts the
vertex into the updating thread's local bucket for its new priority — no
buffering, no dedup flags.  Extracting the next bucket takes a global
minimum across threads and gathers their local buckets into a global
frontier (one global synchronization).

Bucket fusion (Figure 7) lets a thread keep processing its *own* local
bucket for the current priority without synchronizing, as long as that local
bucket stays below a size threshold; large local buckets are left for the
global gather so the work gets redistributed.  The executor drives fusion via
:meth:`pop_local_bucket`.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import PriorityQueueError
from ..obs import metrics
from ..obs import span as trace_span
from ..runtime.stats import RuntimeStats
from .interface import AbstractPriorityQueue, PriorityDirection

__all__ = ["EagerBucketQueue"]

_DEQUEUES = metrics.counter("bucket.dequeues")
_FRONTIER_SIZE = metrics.histogram("bucket.frontier_size")
_OCCUPANCY = metrics.histogram("bucket.occupancy")
_DELTA = metrics.gauge("bucket.delta")


class EagerBucketQueue(AbstractPriorityQueue):
    """Bucketing structure with immediate (eager) thread-local bucket updates."""

    def __init__(
        self,
        priority_vector: np.ndarray,
        direction: PriorityDirection | str = PriorityDirection.LOWER_FIRST,
        delta: int = 1,
        allow_coarsening: bool = True,
        num_threads: int = 8,
        stats: RuntimeStats | None = None,
        initial_vertices: np.ndarray | list[int] | None = None,
    ):
        super().__init__(
            priority_vector,
            direction=direction,
            delta=delta,
            allow_coarsening=allow_coarsening,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        if num_threads < 1:
            raise PriorityQueueError("num_threads must be positive")
        self.num_threads = int(num_threads)
        self.stats.num_threads = self.num_threads
        # local_bins[t] maps order -> list of vertex-id arrays.
        self._local_bins: list[dict[int, list[np.ndarray]]] = [
            {} for _ in range(self.num_threads)
        ]
        # Cached per-thread minimum open order (None = thread has no bins).
        # Maintained on insert (cheap monotone min) and invalidated only
        # when a thread's minimum bin is popped, so ``min_order`` no longer
        # rescans every thread's dict on each dequeue.
        self._min_cache: list[int | None] = [None] * self.num_threads
        self._active_thread = 0
        # The bucket-fusion synchronization contract (Figure 7): the ONLY
        # lock in the eager queue guards the global bucket advancement —
        # picking the global minimum order and gathering every thread's
        # local bucket.  Inserts target a single thread's local bins and
        # ``pop_local_bucket`` (a fused run) touches only the calling
        # thread's bins, so neither takes the lock.  Under the parallel
        # engine all queue mutation is additionally serialized on the
        # coordinator; the lock is the strategy-faithful contract and
        # protects direct library users driving the queue from real threads.
        self._advance_lock = threading.Lock()
        self.global_advances = 0

        if self._initial_vertices.size:
            orders = np.asarray(
                self.order_of_value(self.priority_vector[self._initial_vertices])
            )
            self._cur_order = None
            # Initial contents are dealt round-robin across threads so the
            # first round has work for everyone.
            for offset, (vertex, order) in enumerate(
                zip(self._initial_vertices.tolist(), orders.tolist())
            ):
                self._insert(offset % self.num_threads, int(vertex), int(order))

    # ------------------------------------------------------------------
    # Thread context
    # ------------------------------------------------------------------
    def set_thread(self, thread_id: int) -> None:
        """Select which virtual thread's local bins subsequent updates target."""
        if not 0 <= thread_id < self.num_threads:
            raise PriorityQueueError(
                f"thread {thread_id} out of range [0, {self.num_threads})"
            )
        self._active_thread = thread_id

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    def finished(self) -> bool:
        return all(not bins for bins in self._local_bins)

    def min_order(self) -> int | None:
        """Smallest bucket order present in any thread's local bins.

        Served from the per-thread minimum cache; no per-call scan over
        every thread's bin dictionary.
        """
        candidates = [order for order in self._min_cache if order is not None]
        return min(candidates) if candidates else None

    def _note_insert(self, thread_id: int, order: int) -> None:
        """Update thread ``thread_id``'s cached minimum after an insert."""
        cached = self._min_cache[thread_id]
        if cached is None or order < cached:
            self._min_cache[thread_id] = order

    def _note_removal(self, thread_id: int, order: int) -> None:
        """Recompute thread ``thread_id``'s cached minimum after its bin
        for ``order`` was removed (only needed when it was the minimum)."""
        if self._min_cache[thread_id] != order:
            return
        bins = self._local_bins[thread_id]
        self._min_cache[thread_id] = min(bins) if bins else None

    def dequeue_ready_set(self) -> np.ndarray:
        """Pick the global minimum bucket and gather every thread's local
        bucket of that priority into one frontier (Figure 6, line 8).

        Costs one global synchronization per call, charged by the executor.
        The advancement runs under :attr:`_advance_lock` — the single lock
        site of the eager strategy (Figure 7's contract: no locking inside a
        fused run, one lock at global bucket advancement).
        """
        with trace_span("bucket.advance", "bucket", strategy="eager") as sp:
            with self._advance_lock:
                self.global_advances += 1
                while True:
                    order = self.min_order()
                    if order is None:
                        return np.empty(0, dtype=np.int64)
                    if self._cur_order is not None and order < self._cur_order:
                        # Purely stale bins below the current bucket: drain
                        # and drop them without moving the current priority
                        # backwards.
                        self._gather_order(order)
                        continue
                    self._cur_order = order
                    # Distinct priority orders across every thread's local
                    # bins, sampled before the gather empties the current one.
                    occupancy = len(
                        {o for bins in self._local_bins for o in bins}
                    )
                    members = self._gather_order(order)
                    live = self._filter_and_mark_live(members, order)
                    if live.size:
                        self.stats.vertices_processed += int(live.size)
                        self.stats.frontier_per_round.append(int(live.size))
                        self.stats.bucket_occupancy_per_round.append(occupancy)
                        _DEQUEUES.inc()
                        _FRONTIER_SIZE.observe(live.size)
                        _OCCUPANCY.observe(occupancy)
                        _DELTA.set(self.delta)
                        if sp is not None:
                            sp["order"] = int(order)
                            sp["frontier"] = int(live.size)
                        return live

    def pop_local_bucket(self, thread_id: int, max_size: int) -> np.ndarray | None:
        """Fusion support: pop thread ``thread_id``'s local bucket for the
        *current* priority if it is non-empty and below ``max_size``.

        Returns ``None`` when the local bucket is empty or too large (a large
        bucket is left in place so the global gather redistributes it across
        threads — the load-balance threshold of Figure 7, line 16).

        Deliberately takes **no lock**: a fused run reads and writes only the
        calling thread's local bins, which is the whole point of bucket
        fusion (synchronization-free processing of small local buckets).
        """
        if self._cur_order is None:
            raise PriorityQueueError("pop_local_bucket before any dequeue")
        bins = self._local_bins[thread_id]
        chunks = bins.get(self._cur_order)
        if not chunks:
            return None
        size = sum(chunk.size for chunk in chunks)
        if size >= max_size:
            return None
        del bins[self._cur_order]
        self._note_removal(thread_id, self._cur_order)
        members = np.unique(np.concatenate(chunks))
        live = self._filter_and_mark_live(members, self._cur_order)
        if live.size == 0:
            return None
        self.stats.vertices_processed += int(live.size)
        return live

    # ------------------------------------------------------------------
    # Priority update operators (scalar)
    # ------------------------------------------------------------------
    def update_priority_min(self, vertex: int, new_value: int) -> bool:
        old = int(self.priority_vector[vertex])
        if new_value >= old:
            return False
        if self._is_finalized(vertex):
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        order = self._clamped_order(int(self.order_of_value(new_value)))
        self._insert(self._active_thread, vertex, order)
        return True

    def update_priority_max(self, vertex: int, new_value: int) -> bool:
        old = int(self.priority_vector[vertex])
        if old != self.null_priority and new_value <= old:
            return False
        if self._is_finalized(vertex):
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        order = self._clamped_order(int(self.order_of_value(new_value)))
        self._insert(self._active_thread, vertex, order)
        return True

    def update_priority_sum(
        self, vertex: int, sum_diff: int, min_threshold: int | None = None
    ) -> bool:
        self._check_sum_sign(sum_diff)
        if self._is_finalized(vertex):
            return False
        old = int(self.priority_vector[vertex])
        if old == self.null_priority:
            raise PriorityQueueError(
                "updatePrioritySum on a vertex with null priority"
            )
        new_value = old + sum_diff
        if min_threshold is not None:
            if sum_diff < 0:
                new_value = max(new_value, min_threshold)
            else:
                new_value = min(new_value, min_threshold)
        if new_value == old:
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        order = self._clamped_order(int(self.order_of_value(new_value)))
        self._insert(self._active_thread, vertex, order)
        return True

    # ------------------------------------------------------------------
    # Batch update (used by the vectorized executors)
    # ------------------------------------------------------------------
    def insert_changed_batch(self, thread_id: int, vertices: np.ndarray) -> None:
        """Insert a batch of vertices whose priorities the caller already
        updated, into ``thread_id``'s local bins by their new priority.

        Unlike the lazy queue there is no deduplication: every changed vertex
        costs a bucket insertion (the eager tradeoff the paper measures).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return
        orders = np.asarray(self.order_of_value(self.priority_vector[vertices]))
        if self._cur_order is not None:
            below = orders < self._cur_order
            self.priority_inversions += int(np.count_nonzero(below))
            orders = np.maximum(orders, self._cur_order)
        bins = self._local_bins[thread_id]
        self.stats.bucket_inserts += int(vertices.size)
        for order in np.unique(orders):
            members = vertices[orders == order]
            bins.setdefault(int(order), []).append(members)
            self._note_insert(thread_id, int(order))

    def insert_batch_at(
        self, thread_id: int, vertices: np.ndarray, orders: np.ndarray
    ) -> None:
        """Raw insertion at explicit orders (no clamping, no priority read).

        Used by eager constant-sum algorithms (k-core): every unit decrement
        of a vertex's priority is a separate bucket insertion, so the vertex
        leaves a stale copy in each intermediate bucket — the churn that
        makes eager k-core slow (Table 7).  Callers must pass orders that are
        not below the current bucket.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        orders = np.asarray(orders, dtype=np.int64)
        if vertices.size == 0:
            return
        bins = self._local_bins[thread_id]
        self.stats.bucket_inserts += int(vertices.size)
        for order in np.unique(orders):
            members = vertices[orders == order]
            bins.setdefault(int(order), []).append(members)
            self._note_insert(thread_id, int(order))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insert(self, thread_id: int, vertex: int, order: int) -> None:
        self.stats.bucket_inserts += 1
        self._local_bins[thread_id].setdefault(order, []).append(
            np.array([vertex], dtype=np.int64)
        )
        self._note_insert(thread_id, order)

    def _gather_order(self, order: int) -> np.ndarray:
        chunks: list[np.ndarray] = []
        for thread_id, bins in enumerate(self._local_bins):
            thread_chunks = bins.pop(order, None)
            if thread_chunks:
                chunks.extend(thread_chunks)
            self._note_removal(thread_id, order)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))
