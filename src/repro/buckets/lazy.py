"""Lazy bucket queue (Julienne-style, Section 3.1 of the paper).

The lazy approach buffers bucket updates: a priority update immediately
mutates the priority vector but only appends the vertex (once, guarded by a
deduplication flag — the CAS on ``dedup_flags`` in Figure 9(a)) to an update
buffer.  At the next ``dequeue_ready_set`` the buffer is reduced — each
vertex is bucketed once, by its *final* priority — and the buckets are
updated in bulk.  This makes each vertex pay a single bucket insertion per
round no matter how many of its incoming edges fired, which is why lazy wins
for k-core (Table 7).

Only ``num_open_buckets`` buckets are materialized at a time; vertices whose
order falls beyond the open window go to an overflow bucket, which is
re-bucketed when the window is exhausted — Julienne's design.
"""

from __future__ import annotations

import numpy as np

from ..errors import PriorityQueueError
from ..obs import metrics
from ..obs import span as trace_span
from ..runtime.stats import RuntimeStats
from .interface import AbstractPriorityQueue, PriorityDirection

__all__ = ["LazyBucketQueue"]

_DEQUEUES = metrics.counter("bucket.dequeues")
_FRONTIER_SIZE = metrics.histogram("bucket.frontier_size")
_OCCUPANCY = metrics.histogram("bucket.occupancy")
_REBUCKETS = metrics.counter("bucket.rebucket_overflows")
_REDUCE_BATCHES = metrics.counter("bucket.reduce_batches")
_DELTA = metrics.gauge("bucket.delta")


class LazyBucketQueue(AbstractPriorityQueue):
    """Bucketing structure with buffered (lazy) bucket updates."""

    def __init__(
        self,
        priority_vector: np.ndarray,
        direction: PriorityDirection | str = PriorityDirection.LOWER_FIRST,
        delta: int = 1,
        allow_coarsening: bool = True,
        num_open_buckets: int = 128,
        stats: RuntimeStats | None = None,
        initial_vertices: np.ndarray | list[int] | None = None,
        priority_fn=None,
    ):
        super().__init__(
            priority_vector,
            direction=direction,
            delta=delta,
            allow_coarsening=allow_coarsening,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        if num_open_buckets < 1:
            raise PriorityQueueError("num_open_buckets must be positive")
        self.num_open_buckets = int(num_open_buckets)
        # Julienne's *original* interface computes priorities through a
        # user-supplied function called once per buffered vertex; the
        # paper's redesign (the default, priority_fn=None) reads the
        # priority vector directly, "eliminating extra function calls"
        # (Section 5.1).  The lambda mode exists to measure that redesign.
        self.priority_fn = priority_fn

        # Open window: buckets with orders [base, base + num_open_buckets).
        self._base: int = 0
        self._buckets: list[list[np.ndarray]] = [
            [] for _ in range(self.num_open_buckets)
        ]
        self._overflow: list[np.ndarray] = []

        # Update buffer with per-vertex dedup flags.
        self._pending: list[np.ndarray] = []
        self._pending_flags = np.zeros(self.num_vertices, dtype=bool)
        # Per-worker private update buffers (Figure 5): under the parallel
        # engine each worker appends into its own buffer during the round and
        # the buffers are merged into the shared pending list at the round
        # barrier, just before the reduce — two synchronizations per round,
        # not one per update.  The dedup flags stay shared (Figure 9(a) keeps
        # one CAS-guarded ``dedup_flags`` array for all threads).
        self._local_pending: dict[int, list[np.ndarray]] = {}

        if self._initial_vertices.size:
            orders = self.order_of_value(
                self.priority_vector[self._initial_vertices]
            )
            self._base = int(orders.min())
            self._bulk_insert(self._initial_vertices, orders)

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    def finished(self) -> bool:
        if self._pending:
            return False
        if any(self._local_pending.values()):
            return False
        if self._overflow:
            return False
        return all(not bucket for bucket in self._buckets)

    def dequeue_ready_set(self) -> np.ndarray:
        """Reduce the update buffer, bulk-update buckets, and pop the next
        non-empty bucket (``getNextBucket`` in the generated code)."""
        with trace_span("bucket.advance", "bucket", strategy="lazy") as sp:
            self._flush_pending()
            while True:
                order = self._next_nonempty_order()
                if order is None:
                    if not self._overflow:
                        return np.empty(0, dtype=np.int64)
                    self._rebucket_overflow()
                    continue
                self._cur_order = order
                members = self._pop_bucket(order)
                live = self._filter_and_mark_live(members, order)
                if live.size == 0:
                    continue
                occupancy = 1 + sum(
                    1 for bucket in self._buckets if bucket
                ) + (1 if self._overflow else 0)
                self.stats.vertices_processed += int(live.size)
                self.stats.frontier_per_round.append(int(live.size))
                self.stats.bucket_occupancy_per_round.append(occupancy)
                _DEQUEUES.inc()
                _FRONTIER_SIZE.observe(live.size)
                _OCCUPANCY.observe(occupancy)
                _DELTA.set(self.delta)
                if sp is not None:
                    sp["order"] = int(order)
                    sp["frontier"] = int(live.size)
                return live

    # ------------------------------------------------------------------
    # Priority update operators (scalar)
    # ------------------------------------------------------------------
    def update_priority_min(self, vertex: int, new_value: int) -> bool:
        old = int(self.priority_vector[vertex])
        if new_value >= old:
            return False
        if self._is_finalized(vertex):
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        self._buffer_vertex(vertex)
        return True

    def update_priority_max(self, vertex: int, new_value: int) -> bool:
        old = int(self.priority_vector[vertex])
        if old != self.null_priority and new_value <= old:
            return False
        if self._is_finalized(vertex):
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        self._buffer_vertex(vertex)
        return True

    def update_priority_sum(
        self, vertex: int, sum_diff: int, min_threshold: int | None = None
    ) -> bool:
        self._check_sum_sign(sum_diff)
        if self._is_finalized(vertex):
            return False
        old = int(self.priority_vector[vertex])
        if old == self.null_priority:
            raise PriorityQueueError(
                "updatePrioritySum on a vertex with null priority"
            )
        new_value = old + sum_diff
        if min_threshold is not None:
            if sum_diff < 0:
                new_value = max(new_value, min_threshold)
            else:
                new_value = min(new_value, min_threshold)
        if new_value == old:
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        self._buffer_vertex(vertex)
        return True

    # ------------------------------------------------------------------
    # Priority update operators (batch, used by vectorized executors)
    # ------------------------------------------------------------------
    def buffer_changed_batch(self, vertices: np.ndarray) -> int:
        """Buffer a batch of *distinct changed* vertices whose priorities the
        caller already updated in the priority vector.

        Deduplicates against the pending flags; returns how many entries were
        actually appended.  Accounting is per *vertex*, not per attempt: only
        fresh (previously unflagged) vertices charge a buffer append, and
        already-flagged vertices count as dedup hits.  This matches the
        histogram operator (Figure 10), which buffers each changed vertex
        once per round.  The scalar interpreter charges an append per
        *attempt* instead — use :meth:`buffer_attempts_batch` when the
        scalar path's counters must be reproduced exactly.
        """
        return self._buffer_changed_into(vertices, self._pending)

    def _buffer_changed_into(
        self, vertices: np.ndarray, sink: list[np.ndarray]
    ) -> int:
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        if vertices.size == 0:
            return 0
        fresh_mask = ~self._pending_flags[vertices]
        fresh = vertices[fresh_mask]
        self.stats.dedup_hits += int(vertices.size - fresh.size)
        if fresh.size:
            self._pending_flags[fresh] = True
            sink.append(fresh)
            self.stats.buffer_appends += int(fresh.size)
        return int(fresh.size)

    def buffer_attempts_batch(self, vertices: np.ndarray) -> int:
        """Buffer a stream of successful-update attempts, scalar-exactly.

        ``vertices`` is the multiset of vertices whose updates succeeded, one
        entry per successful update (duplicates allowed).  Every attempt
        charges a buffer append (the unconditional append counter of
        Figure 9(a)) and every attempt on an already-flagged vertex —
        including the second and later occurrences within this very batch —
        counts as a dedup hit, exactly as if :meth:`_buffer_vertex` had run
        once per attempt.  This is what the vectorized apply operators use to
        keep ``RuntimeStats`` bit-identical to the scalar interpreter.

        Returns how many distinct vertices were freshly appended.
        """
        return self._buffer_attempts_into(vertices, self._pending)

    def _buffer_attempts_into(
        self, vertices: np.ndarray, sink: list[np.ndarray]
    ) -> int:
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return 0
        self.stats.buffer_appends += int(vertices.size)
        if vertices.size > 1 and bool(np.all(vertices[1:] >= vertices[:-1])):
            # Destination-sorted streams (the common case for the vectorized
            # operators) dedupe with a boundary mask instead of a full sort.
            first = np.empty(vertices.size, dtype=bool)
            first[0] = True
            np.not_equal(vertices[1:], vertices[:-1], out=first[1:])
            unique = vertices[first]
        else:
            unique = np.unique(vertices)
        fresh = unique[~self._pending_flags[unique]]
        self.stats.dedup_hits += int(vertices.size - fresh.size)
        if fresh.size:
            self._pending_flags[fresh] = True
            sink.append(fresh)
        return int(fresh.size)

    # ------------------------------------------------------------------
    # Per-worker private buffers (parallel engine, Figure 5)
    # ------------------------------------------------------------------
    def buffer_changed_local(self, thread_id: int, vertices: np.ndarray) -> int:
        """Per-worker variant of :meth:`buffer_changed_batch`.

        Appends land in worker ``thread_id``'s private buffer (the
        per-thread update buffers of Figure 5) instead of the shared pending
        list; the dedup flags stay shared, so the accounting
        (``buffer_appends`` / ``dedup_hits``) is bit-identical to the shared
        path.  The private buffers are folded back into the shared pending
        list at the next round barrier by :meth:`merge_local_buffers`.
        """
        sink = self._local_pending.setdefault(int(thread_id), [])
        return self._buffer_changed_into(vertices, sink)

    def buffer_attempts_local(self, thread_id: int, vertices: np.ndarray) -> int:
        """Per-worker variant of :meth:`buffer_attempts_batch` (same
        scalar-exact per-attempt accounting, private per-worker sink)."""
        sink = self._local_pending.setdefault(int(thread_id), [])
        return self._buffer_attempts_into(vertices, sink)

    def merge_local_buffers(self) -> int:
        """Merge the per-worker private buffers into the shared pending list.

        Runs at the round barrier — the first of the two synchronizations
        per round in Figure 5 (the second is the bulk bucket update in
        :meth:`dequeue_ready_set`).  Buffers are merged in thread-id order,
        which is exactly the order the coordinator commits chunks in, so the
        merged stream matches what shared global appends would have produced.
        The subsequent reduce sorts and dedups anyway, making the result
        independent of merge order by construction.

        Returns the number of buffered arrays moved.
        """
        if not self._local_pending:
            return 0
        moved = 0
        for thread_id in sorted(self._local_pending):
            chunks = self._local_pending[thread_id]
            self._pending.extend(chunks)
            moved += len(chunks)
        self._local_pending.clear()
        return moved

    def apply_histogram_updates(
        self,
        vertices: np.ndarray,
        counts: np.ndarray,
        constant: int,
        threshold: int | None,
    ) -> np.ndarray:
        """The lazy-with-constant-sum path (Figure 10, vectorized).

        Applies ``priority += constant * count`` (clamped at ``threshold``)
        to each vertex, skipping finalized vertices, and buffers the changed
        ones.  Returns the changed vertices.
        """
        self._check_sum_sign(constant)
        vertices = np.asarray(vertices, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        old = self.priority_vector[vertices]
        alive = old != self.null_priority
        if self._cur_order is not None:
            alive &= self.order_of_value(old) >= self._cur_order
        vertices, counts, old = vertices[alive], counts[alive], old[alive]
        if vertices.size == 0:
            return vertices
        new_values = old + constant * counts
        if threshold is not None:
            if constant < 0:
                new_values = np.maximum(new_values, threshold)
            else:
                new_values = np.minimum(new_values, threshold)
        changed = new_values != old
        changed_vertices = vertices[changed]
        self.priority_vector[changed_vertices] = new_values[changed]
        self.stats.priority_updates += int(changed_vertices.size)
        self.buffer_changed_batch(changed_vertices)
        return changed_vertices

    def requeue_batch(self, vertices: np.ndarray) -> int:
        """Re-buffer vertices for another pass at their *unchanged* priority.

        A plain buffered update would be dropped at dequeue by the
        processed-at-value filter; requeuing clears that marker first.  Used
        by SetCover for candidate sets that lost a conflict-resolution round
        and must be retried in the same bucket.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        self._processed_value[vertices] = np.iinfo(np.int64).min
        return self.buffer_changed_batch(vertices)

    def remove_batch(self, vertices: np.ndarray) -> None:
        """Retire vertices from the queue by nulling their priority.

        Stale bucket entries are filtered at dequeue time (their priority no
        longer maps to any bucket).  Used by SetCover when a set is chosen
        for the cover or has no uncovered elements left.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        self.priority_vector[vertices] = self.null_priority

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _buffer_vertex(self, vertex: int) -> None:
        """Append once per round, guarded by the dedup flag (the CAS in
        Figure 9(a), line 21)."""
        self.stats.buffer_appends += 1
        if self._pending_flags[vertex]:
            self.stats.dedup_hits += 1
            return
        self._pending_flags[vertex] = True
        self._pending.append(np.array([vertex], dtype=np.int64))

    def _flush_pending(self) -> None:
        """Reduce the buffer and bulk-update buckets (Figure 5, lines 12-13)."""
        self.merge_local_buffers()
        if not self._pending:
            return
        _REDUCE_BATCHES.inc()
        with trace_span("bucket.reduce", "bucket", strategy="lazy") as sp:
            self._flush_pending_traced(sp)

    def _flush_pending_traced(self, sp: dict | None) -> None:
        pending = np.unique(np.concatenate(self._pending))
        if sp is not None:
            sp["buffered"] = int(pending.size)
        self._pending.clear()
        self._pending_flags[pending] = False
        self.stats.buffer_reductions += int(pending.size)
        priorities = self.priority_vector[pending]
        live = pending[priorities != self.null_priority]
        if self.priority_fn is not None:
            # Lambda interface: one Python call per vertex per reduction.
            orders = np.fromiter(
                (
                    self.order_of_value(int(self.priority_fn(int(v))))
                    for v in live
                ),
                dtype=np.int64,
                count=live.size,
            )
        else:
            orders = self.order_of_value(self.priority_vector[live])
        if self._cur_order is not None:
            below = orders < self._cur_order
            self.priority_inversions += int(np.count_nonzero(below))
            orders = np.maximum(orders, self._cur_order)
        self._bulk_insert(live, orders)

    def _bulk_insert(self, vertices: np.ndarray, orders: np.ndarray) -> None:
        if vertices.size == 0:
            return
        self.stats.bucket_inserts += int(vertices.size)
        window_end = self._base + self.num_open_buckets
        in_window = (orders >= self._base) & (orders < window_end)
        overflow = vertices[~in_window]
        if overflow.size:
            self._overflow.append(overflow)
        window_vertices = vertices[in_window]
        window_orders = orders[in_window]
        if window_vertices.size:
            for order in np.unique(window_orders):
                members = window_vertices[window_orders == order]
                self._buckets[int(order) - self._base].append(members)

    def _next_nonempty_order(self) -> int | None:
        start = self._base if self._cur_order is None else max(self._base, self._cur_order)
        for order in range(start, self._base + self.num_open_buckets):
            if self._buckets[order - self._base]:
                return order
        return None

    def _rebucket_overflow(self) -> None:
        """Open a new window at the smallest overflow order and redistribute."""
        _REBUCKETS.inc()
        with trace_span("bucket.rebucket_overflow", "bucket", strategy="lazy") as sp:
            self._rebucket_overflow_traced(sp)

    def _rebucket_overflow_traced(self, sp: dict | None) -> None:
        overflow = np.concatenate(self._overflow)
        if sp is not None:
            sp["overflow"] = int(overflow.size)
            sp["old_base"] = int(self._base)
        self._overflow.clear()
        priorities = self.priority_vector[overflow]
        live = overflow[priorities != self.null_priority]
        orders = np.asarray(self.order_of_value(self.priority_vector[live]))
        if self._cur_order is not None:
            keep = orders >= self._cur_order
            live, orders = live[keep], orders[keep]
        if live.size == 0:
            return
        self._base = int(orders.min())
        if sp is not None:
            sp["new_base"] = self._base
        self._buckets = [[] for _ in range(self.num_open_buckets)]
        self._bulk_insert(live, orders)

    def _pop_bucket(self, order: int) -> np.ndarray:
        slot = order - self._base
        if not self._buckets[slot]:
            return np.empty(0, dtype=np.int64)
        members = np.concatenate(self._buckets[slot])
        self._buckets[slot] = []
        return np.unique(members)
