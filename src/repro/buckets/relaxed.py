"""Approximate (relaxed) priority ordering, emulating Galois' ordered list.

Galois (Section 7, "Approximate Priority Ordering") processes work from
several relaxed priority queues without synchronizing globally after each
priority: threads may run ahead on slightly-out-of-order work.  The win is
far fewer global synchronizations; the cost is lost work-efficiency, because
a vertex processed before its priority is final gets re-processed after a
better update arrives.

The emulation keeps order-indexed bins like the eager queue but dequeues a
bounded *chunk* spanning the ``slack`` smallest orders, without any
stale-entry filtering and without a per-priority barrier — the executor
charges one synchronization only when the window of orders moves.  Strict
ordering is unavailable, which is why this queue (like Galois) cannot run
k-core or SetCover; it raises on ``updatePrioritySum``.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import PriorityQueueError
from ..obs import instant as trace_instant
from ..obs import metrics
from ..obs import span as trace_span
from ..runtime.stats import RuntimeStats
from .interface import AbstractPriorityQueue, PriorityDirection

__all__ = ["RelaxedPriorityQueue"]

# The relaxed queue records aggregate metrics only — chunk order under the
# parallel engine is scheduling-dependent by design, so there are no
# per-round stats lists here (sums stay deterministic, sequences would not).
_DEQUEUES = metrics.counter("bucket.dequeues")
_FRONTIER_SIZE = metrics.histogram("bucket.frontier_size")
_WINDOW_ADVANCES = metrics.counter("bucket.window_advances")
_DELTA = metrics.gauge("bucket.delta")


class RelaxedPriorityQueue(AbstractPriorityQueue):
    """A relaxed multi-bin queue: approximately ordered, cheaply synchronized."""

    def __init__(
        self,
        priority_vector: np.ndarray,
        direction: PriorityDirection | str = PriorityDirection.LOWER_FIRST,
        delta: int = 1,
        allow_coarsening: bool = True,
        slack: int = 2,
        chunk_size: int = 1024,
        stats: RuntimeStats | None = None,
        initial_vertices: np.ndarray | list[int] | None = None,
    ):
        super().__init__(
            priority_vector,
            direction=direction,
            delta=delta,
            allow_coarsening=allow_coarsening,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        if slack < 1:
            raise PriorityQueueError("slack must be >= 1")
        if chunk_size < 1:
            raise PriorityQueueError("chunk_size must be >= 1")
        self.slack = int(slack)
        self.chunk_size = int(chunk_size)
        self._bins: dict[int, list[np.ndarray]] = {}
        # Relaxed synchronization contract: threads run ahead on
        # approximately-ordered work without a per-priority barrier; the only
        # synchronization is when the window of open orders moves or a batch
        # of insertions lands in the shared bins.  One lock guards both.
        # Under the parallel engine commits are additionally serialized (in
        # completion order) by the engine's commit lock; this lock keeps the
        # queue safe for direct library users driving it from real threads.
        self._window_lock = threading.Lock()
        self.window_advances = 0
        if self._initial_vertices.size:
            orders = np.asarray(
                self.order_of_value(self.priority_vector[self._initial_vertices])
            )
            for order in np.unique(orders):
                members = self._initial_vertices[orders == order]
                self._bins.setdefault(int(order), []).append(members)

    def finished(self) -> bool:
        return not self._bins

    def dequeue_ready_set(self) -> np.ndarray:
        """Pop up to ``chunk_size`` vertices from the ``slack`` smallest
        orders — approximately ordered, duplicates and stale entries kept
        (they are the work-efficiency loss the paper attributes to Galois)."""
        with trace_span(
            "bucket.dequeue_chunk", "bucket", strategy="relaxed"
        ) as sp, self._window_lock:
            if not self._bins:
                return np.empty(0, dtype=np.int64)
            window = sorted(self._bins)[: self.slack]
            if self._cur_order != window[0]:
                # The priority window moved: this is the only point the
                # relaxed strategy synchronizes at (charged by the executor).
                self.window_advances += 1
                _WINDOW_ADVANCES.inc()
                trace_instant(
                    "bucket.window_advance",
                    "bucket",
                    strategy="relaxed",
                    order=int(window[0]),
                )
            self._cur_order = window[0]
            popped: list[np.ndarray] = []
            budget = self.chunk_size
            for order in window:
                chunks = self._bins[order]
                while chunks and budget > 0:
                    chunk = chunks.pop()
                    if chunk.size > budget:
                        chunks.append(chunk[budget:])
                        chunk = chunk[:budget]
                    popped.append(chunk)
                    budget -= chunk.size
                if not chunks:
                    del self._bins[order]
                if budget == 0:
                    break
            members = (
                np.concatenate(popped) if popped else np.empty(0, dtype=np.int64)
            )
            self.stats.vertices_processed += int(members.size)
            if members.size:
                _DEQUEUES.inc()
                _FRONTIER_SIZE.observe(members.size)
                _DELTA.set(self.delta)
            if sp is not None:
                sp["order"] = int(self._cur_order)
                sp["chunk"] = int(members.size)
            return members

    def update_priority_min(self, vertex: int, new_value: int) -> bool:
        old = int(self.priority_vector[vertex])
        if new_value >= old:
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        self._insert(vertex, int(self.order_of_value(new_value)))
        return True

    def update_priority_max(self, vertex: int, new_value: int) -> bool:
        old = int(self.priority_vector[vertex])
        if old != self.null_priority and new_value <= old:
            return False
        self.priority_vector[vertex] = new_value
        self.stats.priority_updates += 1
        self._insert(vertex, int(self.order_of_value(new_value)))
        return True

    def update_priority_sum(
        self, vertex: int, sum_diff: int, min_threshold: int | None = None
    ) -> bool:
        raise PriorityQueueError(
            "approximate priority ordering cannot run algorithms that need "
            "strict per-priority synchronization (k-core, SetCover) — "
            "matching Galois' limitation described in the paper"
        )

    def insert_changed_batch(self, vertices: np.ndarray) -> None:
        """Batch insertion of already-updated vertices (vectorized path)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return
        orders = np.asarray(self.order_of_value(self.priority_vector[vertices]))
        with self._window_lock:
            self.stats.bucket_inserts += int(vertices.size)
            for order in np.unique(orders):
                members = vertices[orders == order]
                self._bins.setdefault(int(order), []).append(members)

    def _insert(self, vertex: int, order: int) -> None:
        with self._window_lock:
            self.stats.bucket_inserts += 1
            self._bins.setdefault(order, []).append(
                np.array([vertex], dtype=np.int64)
            )
