"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`GraphItError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish frontend, scheduling, and runtime failures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .lang.span import Span


class GraphItError(Exception):
    """Base class for all errors raised by this library.

    Every error may carry a :class:`~repro.lang.span.Span` pointing at the
    offending source location; when present the message is prefixed with the
    clickable ``file:line:col`` rendering compilers use.
    """

    def __init__(self, message: str, *, span: "Span | None" = None):
        if span is not None and span.is_known:
            message = f"{span}: {message}"
        super().__init__(message)
        self.span = span


class GraphError(GraphItError):
    """Raised for malformed graphs or invalid graph operations."""


class ParseError(GraphItError):
    """Raised by the lexer/parser on malformed DSL input.

    Carries the 1-based source ``line`` and ``column`` of the offending token
    when available, so error messages can point at the source location.
    """

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
        *,
        span: "Span | None" = None,
    ):
        if span is None and line is not None:
            from .lang.span import Span

            span = Span(line=line, column=column or 0)
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.span = span
        self.line = line
        self.column = column


class TypeCheckError(GraphItError):
    """Raised by the type checker on ill-typed DSL programs."""


class SchedulingError(GraphItError):
    """Raised for invalid schedules or illegal optimization combinations."""


class MonotonicityError(SchedulingError):
    """Raised when a relaxed/fused schedule requires a monotone priority
    update the effect analysis could not prove (diagnostic ``M001``).

    ``eager_with_fusion`` drains same-bucket insertions locally, out of the
    global bucket order; that is only sound when every priority update moves
    priorities toward the processing front.  The carried span points at the
    offending update site.
    """

    def __init__(self, message: str, *, span: "Span | None" = None):
        # The span is carried for the diagnostics engine but deliberately not
        # passed to GraphItError: lint renders the location itself and would
        # otherwise print it twice.
        super().__init__(message)
        self.span = span


class IncrementalityError(SchedulingError):
    """Raised when a schedule requests incremental resume for a program
    whose ordered loop is not an extremal min/max fixpoint (diagnostic
    ``I001``).

    Resuming a converged run is only sound when the converged vector is
    the unique fixpoint of a monotone min/max combine; sum-update loops
    (k-core) and extern bucket processors are rejected here at plan time.
    """

    def __init__(self, message: str, *, span: "Span | None" = None):
        # Mirrors MonotonicityError: the span feeds the diagnostics engine
        # without being baked into the rendered message.
        super().__init__(message)
        self.span = span


class CompileError(GraphItError):
    """Raised when the midend or a backend cannot lower a program."""


class IRValidationError(CompileError):
    """Raised by the midend IR validator when a pass leaves the IR broken.

    These errors indicate either malformed input the frontend failed to
    reject or a compiler bug (a transform corrupted the IR); both carry the
    span of the offending node so they are located rather than silent.
    """


class PriorityQueueError(GraphItError):
    """Raised for invalid priority-queue operations.

    The most important case is a violation of the monotonicity contract from
    Section 2 of the paper: priorities may only move in the queue's declared
    direction (decreasing for ``lower_first``, increasing for ``higher_first``).
    """


class AutotuneError(GraphItError):
    """Raised when autotuning cannot produce a valid schedule."""
