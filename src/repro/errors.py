"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`GraphItError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish frontend, scheduling, and runtime failures.
"""

from __future__ import annotations


class GraphItError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(GraphItError):
    """Raised for malformed graphs or invalid graph operations."""


class ParseError(GraphItError):
    """Raised by the lexer/parser on malformed DSL input.

    Carries the 1-based source ``line`` and ``column`` of the offending token
    when available, so error messages can point at the source location.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class TypeCheckError(GraphItError):
    """Raised by the type checker on ill-typed DSL programs."""


class SchedulingError(GraphItError):
    """Raised for invalid schedules or illegal optimization combinations."""


class CompileError(GraphItError):
    """Raised when the midend or a backend cannot lower a program."""


class PriorityQueueError(GraphItError):
    """Raised for invalid priority-queue operations.

    The most important case is a violation of the monotonicity contract from
    Section 2 of the paper: priorities may only move in the queue's declared
    direction (decreasing for ``lower_first``, increasing for ``higher_first``).
    """


class AutotuneError(GraphItError):
    """Raised when autotuning cannot produce a valid schedule."""
