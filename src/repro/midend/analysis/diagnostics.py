"""The midend diagnostics engine: structured, located, stable-coded.

Three layers, all reporting :class:`Diagnostic` records with source spans,
a severity, and a stable code (``R…`` race analysis, ``V…`` IR validator,
``S…`` schedule checker, ``P…``/``T…`` frontend):

1. **Race/atomicity diagnostics** — the projection of
   :mod:`~repro.midend.analysis.races` onto user-facing findings: an
   unordered racy write is an ``R001`` error, benign guarded races and
   dedup requirements are informational notes.
2. **IR validator** (:func:`validate_ir`) — run between midend passes; it
   checks the invariants each pass is supposed to preserve (symbols
   resolved, types intact, lowered constructs only after lowering) and
   turns silent miscompiles into located errors.
3. **Schedule–program compatibility** (:func:`check_schedule_compat`) —
   cross-checks :class:`~repro.midend.schedule.SchedulingProgram` labels
   against the labels that actually occur in the program (the misspelled
   label footgun, ``S001``) and flags knobs that are dead under the chosen
   strategy (``S002``).

:func:`lint_program` runs the full pipeline over DSL source and collects
everything without stopping at the first failure where possible; it backs
the ``repro lint`` CLI subcommand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ...errors import (
    CompileError,
    IncrementalityError,
    IRValidationError,
    MonotonicityError,
    ParseError,
    SchedulingError,
    TypeCheckError,
)
from ...lang import ast_nodes as ast
from ...lang.parser import parse
from ...lang.span import Span
from ...lang.typecheck import typecheck
from ...lang.types import PriorityQueueType
from ..schedule import Schedule, SchedulingProgram
from .races import RaceClass, RaceReport, analyze_races

__all__ = [
    "Severity",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "race_diagnostics",
    "validate_ir",
    "check_schedule_compat",
    "lint_program",
    "render_diagnostic",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so errors sort first."""

    ERROR = 0
    WARNING = 1
    INFO = 2

    def __str__(self) -> str:
        return self.name.lower()


#: The stable diagnostic code registry.  Codes are append-only: tools and
#: suppression lists depend on them never being renumbered.
DIAGNOSTIC_CODES: dict[str, str] = {
    "P001": "syntax error (lexer/parser rejection)",
    "T001": "type error (frontend type checker rejection)",
    "V001": "unresolved symbol in the IR (call to an unknown function)",
    "V002": "program has no main function",
    "V003": "IR invariant violated (stage mismatch, lost type, bad lowering)",
    "S001": "schedule configures a label that appears in no program statement",
    "S002": "schedule knob is dead under the configured strategy",
    "S003": "schedule is infeasible for this program",
    "R001": "non-atomic write to shared state under a parallel schedule",
    "R002": "benign race: guarded monotonic test-and-set (note)",
    "R003": "sum update requires clamped fetch_add + deduplication (note)",
    "M001": "relaxed/fused schedule requires a monotone priority update",
    "I001": "incremental resume requires an extremal (min/max) ordered loop",
    # V1xx: UDF vectorization pass (batch-kernel classification).
    "V101": "apply UDF fell back to the scalar interpreter (not vectorizable)",
    # N1xx: native execution path.
    "N101": "native execution unavailable; fell back to vectorized Python",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, message, and source span."""

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:  # pragma: no cover - guard
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def with_file(self, file: str | None) -> "Diagnostic":
        if self.span.file is not None or file is None:
            return self
        return replace(self, span=self.span.with_file(file))

    def __str__(self) -> str:
        return render_diagnostic(self)


def render_diagnostic(diagnostic: Diagnostic) -> str:
    """``file:line:col: severity[CODE]: message`` (clickable in terminals)."""
    location = str(diagnostic.span) if diagnostic.span.is_known else "<program>"
    return (
        f"{location}: {diagnostic.severity}[{diagnostic.code}]: "
        f"{diagnostic.message}"
    )


def _sorted(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    return sorted(
        diagnostics, key=lambda d: (d.span.line, d.span.column, d.severity, d.code)
    )


# ----------------------------------------------------------------------
# Span fallbacks: every diagnostic must carry a *resolvable* span
# ----------------------------------------------------------------------
def _fallback_span(file: str | None) -> Span:
    """The top-of-file anchor used when no better location exists.

    Line 1 / column 1 is always resolvable in an editor, unlike the
    historical ``Span(file=...)`` dummy that rendered as ``?:?``.
    """
    return Span(line=1, column=1, file=file)


def _located(span: Span | None, file: str | None) -> Span:
    """``span`` when it points at real source, else the file's anchor."""
    if span is not None and span.is_known:
        return span.with_file(span.file or file)
    return _fallback_span(file)


def _program_anchor(program: ast.Program) -> Span:
    """The first located declaration of the program (fallback: line 1)."""
    file = program.source_file
    for group in (program.functions, program.constants, program.elements):
        for node in group:
            span = Span.from_node(node, file=file)
            if span.is_known:
                return span
    return _fallback_span(file)


# ----------------------------------------------------------------------
# Layer 1: race/atomicity diagnostics
# ----------------------------------------------------------------------
def race_diagnostics(report: RaceReport) -> list[Diagnostic]:
    """Project a :class:`RaceReport` onto user-facing diagnostics."""
    found: list[Diagnostic] = []
    for site in report.sites:
        if site.race_class is RaceClass.UNORDERED_RACY:
            found.append(
                Diagnostic(
                    code="R001",
                    severity=Severity.ERROR,
                    message=(
                        f"write to {site.target} in UDF "
                        f"{report.udf_name!r} races under "
                        f"{report.parallelization}/{report.direction}: "
                        f"{site.reason}"
                    ),
                    span=site.span,
                )
            )
        elif site.race_class is RaceClass.BENIGN and "benign race" in site.reason:
            found.append(
                Diagnostic(
                    code="R002",
                    severity=Severity.INFO,
                    message=(
                        f"write to {site.target} in UDF "
                        f"{report.udf_name!r} is a {site.reason}"
                    ),
                    span=site.span,
                )
            )
        elif site.race_class is RaceClass.NEEDS_DEDUP:
            found.append(
                Diagnostic(
                    code="R003",
                    severity=Severity.INFO,
                    message=(
                        f"sum update on {site.target} in UDF "
                        f"{report.udf_name!r} lowers to clamped fetch_add "
                        f"with bucket deduplication"
                    ),
                    span=site.span,
                )
            )
    return found


# ----------------------------------------------------------------------
# Layer 2: the IR validator (run between midend passes)
# ----------------------------------------------------------------------
_BUILTIN_CALLS = frozenset({"load", "atoi", "max", "min"})

#: Pass ordering for stage checks.
_STAGES = ("parsed", "typed", "planned", "lowered")


def validate_ir(
    program: ast.Program,
    stage: str = "typed",
    *,
    schedule: Schedule | None = None,
    transformed_udf: ast.FuncDecl | None = None,
) -> list[Diagnostic]:
    """Check the invariants the midend passes must preserve.

    ``stage`` names the pass boundary being validated (one of
    ``parsed``/``typed``/``planned``/``lowered``).  Returns the violations
    as diagnostics; :func:`validate_ir_or_raise` is the raising variant the
    pipeline uses.
    """
    if stage not in _STAGES:
        raise ValueError(f"unknown IR stage {stage!r}; expected one of {_STAGES}")
    file = program.source_file
    found: list[Diagnostic] = []

    # --- main exists -------------------------------------------------
    if program.function("main") is None:
        found.append(
            Diagnostic(
                code="V002",
                severity=Severity.ERROR,
                message="program has no main function",
                span=_program_anchor(program),
            )
        )

    # --- symbols resolved: every Call / apply target names a function
    known_functions = {func.name for func in program.functions}
    known_externs = {extern.name for extern in program.externs}
    callable_names = known_functions | known_externs | _BUILTIN_CALLS
    for func in program.functions:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and node.function not in callable_names:
                found.append(
                    Diagnostic(
                        code="V001",
                        severity=Severity.ERROR,
                        message=(
                            f"call to unknown function {node.function!r} "
                            f"in {func.name!r} (symbol resolution broken "
                            f"after stage {stage!r})"
                        ),
                        span=Span.from_node(node, file=file),
                    )
                )
            if (
                isinstance(node, ast.MethodCall)
                and node.method in ("applyUpdatePriority", "apply")
                and node.arguments
                and isinstance(node.arguments[0], ast.Name)
                and node.arguments[0].identifier not in callable_names
            ):
                found.append(
                    Diagnostic(
                        code="V001",
                        severity=Severity.ERROR,
                        message=(
                            f"{node.method} references unknown function "
                            f"{node.arguments[0].identifier!r}"
                        ),
                        span=Span.from_node(node, file=file),
                    )
                )

    # --- types intact: declarations keep their declared types --------
    for func in program.functions:
        for name, declared in func.parameters:
            if declared is None:
                found.append(
                    _type_lost(f"parameter {name!r} of {func.name!r}", func, file)
                )
        for node in ast.walk(func):
            if isinstance(node, ast.VarDecl) and node.declared_type is None:
                found.append(_type_lost(f"var {node.name!r}", node, file))
    for const in program.constants:
        if const.declared_type is None:
            found.append(_type_lost(f"const {const.name!r}", const, file))

    # --- lowered constructs only after lowering ----------------------
    from ..transforms.histogram_transform import TRANSFORMED_SUFFIX

    stage_index = _STAGES.index(stage)
    if stage_index < _STAGES.index("lowered"):
        for func in program.functions:
            if func.name.endswith(TRANSFORMED_SUFFIX):
                found.append(
                    Diagnostic(
                        code="V003",
                        severity=Severity.ERROR,
                        message=(
                            f"lowered function {func.name!r} present before "
                            f"the lowering stage (found at {stage!r})"
                        ),
                        span=Span.from_node(func, file=file),
                    )
                )
    else:
        if (
            schedule is not None
            and schedule.uses_histogram
            and transformed_udf is None
        ):
            found.append(
                Diagnostic(
                    code="V003",
                    severity=Severity.ERROR,
                    message=(
                        "histogram schedule reached the backend without a "
                        "transformed UDF (lowering did not run)"
                    ),
                    span=_program_anchor(program),
                )
            )
        if transformed_udf is not None:
            queue_names = {
                const.name
                for const in program.constants
                if isinstance(const.declared_type, PriorityQueueType)
            }
            valid_names = callable_names | queue_names | {
                name for name, _ in transformed_udf.parameters
            }
            for node in ast.walk(transformed_udf):
                if isinstance(node, ast.Call) and node.function not in valid_names:
                    found.append(
                        Diagnostic(
                            code="V001",
                            severity=Severity.ERROR,
                            message=(
                                f"transformed UDF {transformed_udf.name!r} "
                                f"calls unknown function {node.function!r}"
                            ),
                            span=Span.from_node(node, file=file),
                        )
                    )
    return _sorted(found)


def _type_lost(what: str, node: ast.Node, file: str | None) -> Diagnostic:
    return Diagnostic(
        code="V003",
        severity=Severity.ERROR,
        message=f"declared type of {what} was lost by a midend pass",
        span=Span.from_node(node, file=file),
    )


def validate_ir_or_raise(program: ast.Program, stage: str, **kwargs) -> None:
    """Raise :class:`IRValidationError` on the first validator finding."""
    found = validate_ir(program, stage, **kwargs)
    if found:
        first = found[0]
        raise IRValidationError(
            f"[{first.code}] {first.message} (IR validation at stage {stage!r})",
            span=first.span,
        )


# ----------------------------------------------------------------------
# Layer 3: schedule–program compatibility
# ----------------------------------------------------------------------
#: knob name (as stored by SchedulingProgram commands) -> (predicate on the
#: final schedule, explanation).  A knob is *dead* when configured but the
#: strategy it modifies is not in effect.
def _dead_knob_rules():
    return (
        (
            "bucket_fusion_threshold",
            lambda s: not s.uses_fusion,
            "bucket_fusion_threshold only applies to eager_with_fusion",
        ),
        (
            "num_buckets",
            lambda s: s.is_eager,
            "num_buckets only applies to the lazy strategies",
        ),
        (
            "chunk_size",
            lambda s: s.parallelization == "static-vertex-parallel",
            "chunk_size only applies to the dynamic parallelization policies",
        ),
        (
            "execution",
            lambda s: s.execution == "parallel" and s.num_threads == 1,
            "execution=parallel with num_threads=1 never engages the "
            "thread-backed engine (single-worker rounds fall back to the "
            "serial inline loop)",
        ),
        (
            "num_threads",
            lambda s: s.num_threads == 1 and s.execution == "parallel",
            "num_threads=1 disables both work partitioning and the parallel "
            "engine the schedule requests",
        ),
        (
            "parallelization",
            lambda s: s.execution == "native",
            "native kernels always use OpenMP dynamic scheduling; the "
            "parallelization policy only steers the Python runtime",
        ),
        (
            "chunk_size",
            lambda s: s.execution == "native",
            "native kernels hard-code schedule(dynamic, 64); chunk_size "
            "only steers the Python runtime",
        ),
    )


def program_labels(program: ast.Program) -> set[str]:
    """All statement labels (``#s1#``) appearing anywhere in the program."""
    labels: set[str] = set()
    for func in program.functions:
        for node in ast.walk(func):
            label = getattr(node, "label", None)
            if label:
                labels.add(label)
    return labels


def check_schedule_compat(
    program: ast.Program, scheduling: SchedulingProgram
) -> list[Diagnostic]:
    """Cross-check a scheduling program against the actual program labels."""
    file = program.source_file
    labels_in_program = program_labels(program)
    label_spans = _label_spans(program)
    found: list[Diagnostic] = []

    for label in scheduling.labels:
        if label not in labels_in_program:
            suggestion = _closest(label, labels_in_program)
            hint = f"; did you mean {suggestion!r}?" if suggestion else ""
            found.append(
                Diagnostic(
                    code="S001",
                    severity=Severity.ERROR,
                    message=(
                        f"schedule configures label {label!r} but no "
                        f"statement in the program carries it"
                        f" (program labels: "
                        f"{sorted(labels_in_program) or 'none'}){hint}"
                    ),
                    span=_schedule_command_span(program, label),
                )
            )
            continue
        final = scheduling.schedule_for(label)
        configured = {knob for knob, _ in scheduling.commands_for(label)}
        for knob, is_dead, why in _dead_knob_rules():
            if knob in configured and is_dead(final):
                found.append(
                    Diagnostic(
                        code="S002",
                        severity=Severity.WARNING,
                        message=(
                            f"knob {knob!r} configured for label {label!r} "
                            f"is dead under "
                            f"priority_update={final.priority_update!r}, "
                            f"parallelization={final.parallelization!r}: "
                            f"{why}"
                        ),
                        span=label_spans.get(label, _fallback_span(file)),
                    )
                )
    return _sorted(found)


def _schedule_command_span(program: ast.Program, label: str) -> Span:
    """Locate a misspelled label at the inline schedule command naming it.

    When the scheduling program was built through the Python API (no inline
    command exists), fall back to the closest actual label's statement, then
    to the first labeled statement, then to the program's first declaration —
    every S001 stays anchored to real source.
    """
    for statement in program.schedule:
        if statement.arguments and statement.arguments[0] == label:
            return Span.from_node(statement, file=program.source_file)
    label_spans = _label_spans(program)
    suggestion = _closest(label, set(label_spans))
    if suggestion is not None:
        return label_spans[suggestion]
    if label_spans:
        return min(label_spans.values())
    return _program_anchor(program)


def _label_spans(program: ast.Program) -> dict[str, Span]:
    spans: dict[str, Span] = {}
    for func in program.functions:
        for node in ast.walk(func):
            label = getattr(node, "label", None)
            if label and label not in spans:
                spans[label] = Span.from_node(node, file=program.source_file)
    return spans


def _closest(candidate: str, pool: set[str]) -> str | None:
    """Cheap edit-distance-1-ish suggestion for misspelled labels."""
    import difflib

    matches = difflib.get_close_matches(candidate, sorted(pool), n=1, cutoff=0.5)
    return matches[0] if matches else None


# ----------------------------------------------------------------------
# The full pipeline: repro lint
# ----------------------------------------------------------------------
def lint_program(
    source: str,
    schedule: Schedule | SchedulingProgram | None = None,
    filename: str | None = None,
    include_info: bool = False,
) -> list[Diagnostic]:
    """Run every analysis over DSL ``source`` and collect diagnostics.

    Never raises for program problems — frontend rejections become located
    ``P001``/``T001`` diagnostics, midend rejections become ``V003``/
    ``S003``, and the race/validator/schedule layers contribute their own
    codes.  ``include_info`` adds the informational race-classification
    notes (``R002``/``R003``).
    """
    found: list[Diagnostic] = []

    try:
        program = parse(source, filename)
    except ParseError as error:
        return [
            Diagnostic(
                code="P001",
                severity=Severity.ERROR,
                message=str(error),
                span=_located(getattr(error, "span", None), filename),
            )
        ]

    try:
        typecheck(program)
    except TypeCheckError as error:
        found.append(
            Diagnostic(
                code="T001",
                severity=Severity.ERROR,
                message=str(error),
                span=_located(getattr(error, "span", None), filename),
            )
        )
        return _sorted(found)

    found.extend(validate_ir(program, "typed"))

    # Resolve the scheduling program (explicit > inline block > default).
    from ..transforms.lowering import schedule_from_block

    scheduling: SchedulingProgram | None = None
    resolved: Schedule | SchedulingProgram | None = schedule
    if isinstance(schedule, SchedulingProgram):
        scheduling = schedule
    elif schedule is None and program.schedule:
        try:
            scheduling = schedule_from_block(program)
            resolved = scheduling
        except SchedulingError as error:
            found.append(
                Diagnostic(
                    code="S003",
                    severity=Severity.ERROR,
                    message=str(error),
                    span=_located(getattr(error, "span", None), filename),
                )
            )
            return _sorted(found)
    if scheduling is not None:
        found.extend(check_schedule_compat(program, scheduling))

    # The midend plan: infeasible combinations become located diagnostics.
    from ..transforms.lowering import plan_program

    plan = None
    try:
        try:
            plan = plan_program(program, resolved)
        except (SchedulingError, CompileError):
            if resolved is not None:
                raise
            # No schedule was requested: programs whose ordered loop is
            # eager-ineligible (e.g. SetCover's extern bucket processor)
            # still lint clean under the lazy strategy they require.
            plan = plan_program(program, Schedule(priority_update="lazy"))
            resolved = plan.schedule
    except MonotonicityError as error:
        found.append(
            Diagnostic(
                code="M001",
                severity=Severity.ERROR,
                message=str(error),
                span=_located(getattr(error, "span", None), filename),
            )
        )
    except IncrementalityError as error:
        found.append(
            Diagnostic(
                code="I001",
                severity=Severity.ERROR,
                message=str(error),
                span=_located(getattr(error, "span", None), filename),
            )
        )
    except SchedulingError as error:
        found.append(
            Diagnostic(
                code="S003",
                severity=Severity.ERROR,
                message=str(error),
                span=_located(getattr(error, "span", None), filename),
            )
        )
    except CompileError as error:
        found.append(
            Diagnostic(
                code="V003",
                severity=Severity.ERROR,
                message=str(error),
                span=_located(getattr(error, "span", None), filename),
            )
        )

    # Race analysis over every UDF used by an apply, under its statement's
    # schedule (the plan covers only the recognized ordered loop).
    queue_names = {
        const.name
        for const in program.constants
        if isinstance(const.declared_type, PriorityQueueType)
    }
    seen: set[str] = set()
    for udf_name, label in _apply_udfs(program):
        if udf_name in seen:
            continue
        seen.add(udf_name)
        udf = program.function(udf_name)
        if udf is None:
            continue  # V001 already reported by the validator
        if isinstance(resolved, SchedulingProgram):
            active = resolved.schedule_for(label or "")
        elif isinstance(resolved, Schedule):
            active = resolved
        elif plan is not None:
            active = plan.schedule
        else:
            active = Schedule()
        report = analyze_races(udf, queue_names, active, source_file=filename)
        found.extend(race_diagnostics(report))

    # UDF vectorization classification: every apply UDF that stays on the
    # scalar interpreter gets an informational V101 with the located reason.
    if plan is not None:
        for vec_report in plan.vectorize.values():
            if vec_report.vectorizable:
                continue
            found.append(
                Diagnostic(
                    code="V101",
                    severity=Severity.INFO,
                    message=(
                        f"UDF {vec_report.udf_name!r} falls back to the "
                        f"scalar interpreter: {vec_report.reason}"
                    ),
                    span=_located(vec_report.span, filename),
                )
            )

    if not include_info:
        found = [d for d in found if d.severity is not Severity.INFO]
    return _sorted(_dedup(found))


def _apply_udfs(program: ast.Program):
    """(udf name, statement label) for every apply-style call site."""
    for func in program.functions:
        for node in ast.walk(func):
            if not isinstance(node, (ast.ExprStmt,)):
                continue
            expression = node.expression
            if (
                isinstance(expression, ast.MethodCall)
                and expression.method in ("applyUpdatePriority", "apply")
                and expression.arguments
                and isinstance(expression.arguments[0], ast.Name)
            ):
                yield expression.arguments[0].identifier, node.label


def _dedup(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    seen: set[tuple] = set()
    unique: list[Diagnostic] = []
    for diagnostic in diagnostics:
        key = (diagnostic.code, diagnostic.span.line, diagnostic.span.column,
               diagnostic.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(diagnostic)
    return unique
