"""UDF vectorization analysis: batch-kernel classification of apply UDFs.

The scalar Python interpreter executes every apply UDF one edge at a time;
the GraphIt compilers win by specializing restricted UDF shapes into fused
traversal kernels.  This pass is the Python substrate's version of that
specialization decision: it pattern-matches the UDF shapes of the paper's
evaluated algorithms in the typed AST and classifies each apply UDF as

``vectorizable(kind, operands)``
    The backend may emit a *batch kernel descriptor* for the UDF — numpy
    expressions over whole edge streams — and the runtime executes the
    apply with vectorized scatter-reduces instead of a per-edge closure.
``scalar_fallback``
    The UDF stays on the scalar interpreter (the oracle path).  Fallback is
    never an error: the analysis attaches a located reason, surfaced by
    ``repro lint`` as the informational ``V101`` diagnostic.

Recognized kinds (the six evaluated algorithms plus the unordered baseline
shape):

``write_min`` / ``write_max``
    A single ``updatePriorityMin``/``Max`` on the destination whose new
    value is a pure batch expression (SSSP, wBFS, PPSP, widest path).
``guarded_write_min``
    The A* idiom: a guarded monotonic min-write to an auxiliary vector
    followed by an ``updatePriorityMin`` with a derived priority value.
``sum_const``
    A single constant-difference ``updatePrioritySum`` clamped at the
    current priority (k-core under the plain lazy/eager schedules).
``sum_hist``
    The same UDF under ``lazy_constant_sum``: the Figure 10 histogram
    operator runs one batch update per (vertex, count) pair.
``plain_min``
    A guarded monotonic min-write to a plain vector with no queue
    involvement (whole-edgeset ``apply`` relaxation kernels).

The hard constraint the runtime upholds for every vectorizable kind is
*bit-identical* ``RuntimeStats`` counters and outputs versus the scalar
interpreter; the analysis therefore only admits shapes for which the
sequential-exact batch algorithms in ``runtime_support`` exist, and it
consults the race classification: any UDF with an ``unordered_racy`` write
site falls back (such programs are refused at runtime anyway, diagnostic
``R001``).

Batch expressions are rendered as numpy source strings over the stream
variables ``src``/``dst``/``weight``/``k_cur`` (and ``new_val`` for the
guarded kind's priority expression), closing over the generated module's
globals — the Python backend embeds them verbatim in the kernel descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...lang import ast_nodes as ast
from ...lang.span import Span
from ...lang.types import VectorType
from ..schedule import Schedule
from .races import analyze_races
from .udf_analysis import (
    PriorityUpdate,
    analyze_constant_sum,
    find_priority_updates,
)

__all__ = [
    "VectorKernel",
    "VectorizeReport",
    "analyze_vectorization",
    "analyze_udf_vectorization",
]


@dataclass
class VectorKernel:
    """Everything the backend needs to emit one batch kernel descriptor."""

    kind: str  # write_min | write_max | guarded_write_min | sum_const | sum_hist | plain_min
    queue_name: str | None = None
    value: str | None = None  # batch expr for the candidate value
    guard: str | None = None  # plain_min: source-side guard batch expr
    priority: str | None = None  # guarded kind: priority expr (uses new_val)
    aux: str | None = None  # guarded kind: guarded-write target vector
    target: str | None = None  # plain_min: target vector
    hazard: tuple[str, ...] = ()  # written vectors the value exprs read at src
    constant: int | None = None  # sum kinds: the constant difference


@dataclass
class VectorizeReport:
    """The classification of one apply UDF under one schedule."""

    udf_name: str
    kernel: VectorKernel | None
    reason: str
    span: Span = field(default_factory=Span)

    @property
    def vectorizable(self) -> bool:
        return self.kernel is not None


class _Fallback(Exception):
    """Raised inside the matcher to abort to scalar_fallback with a reason."""

    def __init__(self, reason: str, span: Span | None = None):
        super().__init__(reason)
        self.reason = reason
        self.span = span


# ----------------------------------------------------------------------
# Batch expression classification
# ----------------------------------------------------------------------
_ARITH_OPS = {"+", "-", "*"}
_COMPARE_OPS = {"<", ">", "<=", ">=", "==", "!="}


class _ExprClassifier:
    """Renders a UDF expression as a numpy batch expression string.

    Tracks which program vectors the expression reads indexed by the source
    and destination parameters; the kind matchers use those sets to enforce
    the safety conditions (destination reads of written vectors are only
    legal through the structural patterns the runtime handles exactly, and
    source reads of written vectors become hazard arrays for the restart
    loop).
    """

    def __init__(
        self,
        src_param: str,
        dst_param: str,
        weight_param: str | None,
        locals_inline: dict[str, ast.Expr],
        vector_names: set[str],
        scalar_names: set[str],
        queue_names: set[str],
        new_val_name: str | None = None,
    ):
        self.src_param = src_param
        self.dst_param = dst_param
        self.weight_param = weight_param
        self.locals_inline = locals_inline
        self.vector_names = vector_names
        self.scalar_names = scalar_names
        self.queue_names = queue_names
        self.new_val_name = new_val_name
        self.reads_at_src: set[str] = set()
        self.reads_at_dst: set[str] = set()
        self.uses_k: bool = False
        self._inlining: set[str] = set()

    def classify(self, expression: ast.Expr) -> str:
        if isinstance(expression, ast.IntLiteral):
            return repr(expression.value)
        if isinstance(expression, ast.BoolLiteral):
            return "True" if expression.value else "False"
        if isinstance(expression, ast.Name):
            return self._name(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._binary(expression)
        if isinstance(expression, ast.UnaryOp):
            operand = self.classify(expression.operand)
            if expression.operator == "-":
                return f"(-{operand})"
            if expression.operator == "not":
                return f"(~({operand}))"
            raise _Fallback(
                f"operator {expression.operator!r} has no batch form",
                expression.span,
            )
        if isinstance(expression, ast.Call):
            return self._call(expression)
        if isinstance(expression, ast.Index):
            return self._index(expression)
        if isinstance(expression, ast.MethodCall):
            if (
                expression.method in ("getCurrentPriority", "get_current_priority")
                and isinstance(expression.receiver, ast.Name)
                and expression.receiver.identifier in self.queue_names
            ):
                self.uses_k = True
                return "k_cur"
            raise _Fallback(
                f"method call {expression.method!r} has no batch form",
                expression.span,
            )
        raise _Fallback(
            f"{type(expression).__name__} expression has no batch form",
            expression.span,
        )

    def _name(self, expression: ast.Name) -> str:
        name = expression.identifier
        if name == self.src_param:
            return "src"
        if name == self.dst_param:
            return "dst"
        if name == self.weight_param:
            return "weight"
        if self.new_val_name is not None and name == self.new_val_name:
            return "new_val"
        if name in self.locals_inline:
            if name in self._inlining:
                raise _Fallback(
                    f"local {name!r} is self-referential", expression.span
                )
            self._inlining.add(name)
            try:
                return self.classify(self.locals_inline[name])
            finally:
                self._inlining.discard(name)
        if name == "INT_MAX" or name in self.scalar_names:
            return name
        raise _Fallback(
            f"reads {name!r}, which is not a parameter, an inlineable local, "
            f"or a scalar global",
            expression.span,
        )

    def _binary(self, expression: ast.BinaryOp) -> str:
        left = self.classify(expression.left)
        right = self.classify(expression.right)
        operator = expression.operator
        if operator in _ARITH_OPS or operator in _COMPARE_OPS:
            return f"({left} {operator} {right})"
        if operator == "and":
            return f"(({left}) & ({right}))"
        if operator == "or":
            return f"(({left}) | ({right}))"
        raise _Fallback(
            f"operator {operator!r} has no elementwise batch form",
            expression.span,
        )

    def _call(self, expression: ast.Call) -> str:
        if expression.function in ("min", "max") and len(expression.arguments) == 2:
            numpy_name = (
                "np.minimum" if expression.function == "min" else "np.maximum"
            )
            left = self.classify(expression.arguments[0])
            right = self.classify(expression.arguments[1])
            return f"{numpy_name}({left}, {right})"
        raise _Fallback(
            f"call to {expression.function!r} has no batch form",
            expression.span,
        )

    def _index(self, expression: ast.Index) -> str:
        base = expression.base
        index = expression.index
        if not (isinstance(base, ast.Name) and base.identifier in self.vector_names):
            raise _Fallback(
                "indexed read of something other than a program vector",
                expression.span,
            )
        if not isinstance(index, ast.Name):
            raise _Fallback(
                f"vector {base.identifier!r} indexed by a non-parameter "
                f"expression",
                expression.span,
            )
        if index.identifier == self.src_param:
            self.reads_at_src.add(base.identifier)
            return f"{base.identifier}[src]"
        if index.identifier == self.dst_param:
            self.reads_at_dst.add(base.identifier)
            return f"{base.identifier}[dst]"
        raise _Fallback(
            f"vector {base.identifier!r} indexed by {index.identifier!r}, "
            f"which is neither the source nor the destination parameter",
            expression.span,
        )


# ----------------------------------------------------------------------
# Program context helpers
# ----------------------------------------------------------------------
def _program_vectors(program: ast.Program) -> set[str]:
    return {
        const.name
        for const in program.constants
        if isinstance(const.declared_type, VectorType)
    }


def _program_scalars(program: ast.Program) -> set[str]:
    vectors = _program_vectors(program)
    return {
        const.name
        for const in program.constants
        if const.name not in vectors and not _is_structural(const)
    }


def _is_structural(const: ast.ConstDecl) -> bool:
    from ...lang.types import EdgeSetType, PriorityQueueType

    return isinstance(const.declared_type, (EdgeSetType, PriorityQueueType))


def _queue_constructor(
    program: ast.Program, queue_name: str
) -> tuple[str, str] | None:
    """(direction, priority-vector name) from ``q = new priority_queue(...)``."""
    for func in program.functions:
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.target, ast.Name)
                and node.target.identifier == queue_name
                and isinstance(node.value, ast.New)
            ):
                continue
            arguments = node.value.arguments
            if len(arguments) < 3:
                return None
            direction = arguments[1]
            vector = arguments[2]
            if not (
                isinstance(direction, ast.StringLiteral)
                and isinstance(vector, ast.Name)
            ):
                return None
            return direction.value, vector.identifier
    return None


def _inlineable_locals(udf: ast.FuncDecl) -> dict[str, ast.Expr]:
    """Single-assignment locals with initializers, safe to inline."""
    assigned: set[str] = set()
    for node in ast.walk(udf):
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Name):
            assigned.add(node.target.identifier)
    inline: dict[str, ast.Expr] = {}
    for node in ast.walk(udf):
        if (
            isinstance(node, ast.VarDecl)
            and node.initializer is not None
            and node.name not in assigned
        ):
            inline[node.name] = node.initializer
    return inline


def _flat_statements(
    body: list[ast.Stmt],
) -> tuple[list[ast.VarDecl], list[ast.Stmt]]:
    """Split a flat body into leading-interleaved VarDecls and the rest."""
    decls: list[ast.VarDecl] = []
    rest: list[ast.Stmt] = []
    for statement in body:
        if isinstance(statement, ast.VarDecl):
            decls.append(statement)
        else:
            rest.append(statement)
    return decls, rest


def _check_scalar_global_writes(
    udf: ast.FuncDecl, locals_inline: dict[str, ast.Expr], vectors: set[str]
) -> None:
    """Any write to a scalar global is a side effect no batch kernel has."""
    local_names = {name for name, _ in udf.parameters}
    for node in ast.walk(udf):
        if isinstance(node, ast.VarDecl):
            local_names.add(node.name)
    for node in ast.walk(udf):
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Name):
            name = node.target.identifier
            if name not in local_names:
                raise _Fallback(
                    f"assigns to the scalar global {name!r}, a side effect "
                    f"outside every recognized batch pattern",
                    node.span,
                )


def _written_vectors(udf: ast.FuncDecl, update: PriorityUpdate | None) -> set[str]:
    written: set[str] = set()
    for node in ast.walk(udf):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.target, ast.Index)
            and isinstance(node.target.base, ast.Name)
        ):
            written.add(node.target.base.identifier)
    return written


# ----------------------------------------------------------------------
# Kind matchers
# ----------------------------------------------------------------------
def _match_priority_udf(
    udf: ast.FuncDecl,
    program: ast.Program,
    queue_names: set[str],
    schedule: Schedule,
) -> VectorKernel:
    """Classify an ``applyUpdatePriority`` UDF, or raise ``_Fallback``."""
    parameters = [name for name, _ in udf.parameters]
    if len(parameters) < 2:
        raise _Fallback("edge UDF needs (src, dst[, weight]) parameters")
    src_param, dst_param = parameters[0], parameters[1]
    weight_param = parameters[2] if len(parameters) > 2 else None

    updates = find_priority_updates(udf, queue_names)
    if len(updates) != 1:
        raise _Fallback(
            f"contains {len(updates)} priority updates; exactly one is "
            f"required for a batch kernel"
        )
    update = updates[0]
    if not (
        isinstance(update.vertex_arg, ast.Name)
        and update.vertex_arg.identifier == dst_param
    ):
        raise _Fallback(
            "the priority update does not target the destination parameter",
            Span.from_node(update.call),
        )
    constructor = _queue_constructor(program, update.queue_name)
    if constructor is None:
        raise _Fallback(
            f"could not resolve the constructor of queue "
            f"{update.queue_name!r} (direction and priority vector unknown)"
        )
    direction, priority_vector = constructor

    vectors = _program_vectors(program)
    scalars = _program_scalars(program)
    locals_inline = _inlineable_locals(udf)
    _check_scalar_global_writes(udf, locals_inline, vectors)

    def classifier(new_val_name: str | None = None) -> _ExprClassifier:
        return _ExprClassifier(
            src_param,
            dst_param,
            weight_param,
            locals_inline,
            vectors,
            scalars,
            queue_names,
            new_val_name=new_val_name,
        )

    if update.op == "sum":
        if schedule.uses_histogram:
            kind = "sum_hist"
        else:
            kind = "sum_const"
        info = analyze_constant_sum(udf, queue_names)
        if info is None:
            raise _Fallback(
                "updatePrioritySum is not a single constant-difference "
                "update clamped at the current priority",
                Span.from_node(update.call),
            )
        if info.constant == 0:
            raise _Fallback("constant-sum difference is zero (no-op UDF)")
        decls, rest = _flat_statements(udf.body)
        if len(rest) != 1 or not isinstance(rest[0], ast.ExprStmt):
            raise _Fallback(
                "constant-sum UDF has statements beyond the priority update"
            )
        return VectorKernel(
            kind=kind, queue_name=update.queue_name, constant=info.constant
        )

    # min/max kinds: direction gating keeps the null-priority sentinel on
    # the side where the plain comparison already matches the scalar path.
    if update.op == "min" and direction != "lower_first":
        raise _Fallback(
            "updatePriorityMin on a higher_first queue: the null-priority "
            "sentinel breaks the plain batch comparison"
        )
    if update.op == "max" and direction != "higher_first":
        raise _Fallback(
            "updatePriorityMax on a lower_first queue: the null-priority "
            "sentinel breaks the plain batch comparison"
        )

    decls, rest = _flat_statements(udf.body)
    if len(rest) == 1 and isinstance(rest[0], ast.ExprStmt):
        if rest[0].expression is not update.call:
            raise _Fallback("unrecognized statement alongside the update")
        # ---- plain write_min / write_max -----------------------------
        cls = classifier()
        value = cls.classify(update.value_arg)
        written = {priority_vector}
        illegal = cls.reads_at_dst & written
        if illegal:
            raise _Fallback(
                f"the new value reads {sorted(illegal)[0]!r} at the "
                f"destination, which the kernel itself writes"
            )
        hazard = tuple(sorted(cls.reads_at_src & written))
        return VectorKernel(
            kind="write_min" if update.op == "min" else "write_max",
            queue_name=update.queue_name,
            value=value,
            hazard=hazard,
        )

    if len(rest) == 1 and isinstance(rest[0], ast.If):
        return _match_guarded(
            rest[0],
            update,
            priority_vector,
            classifier,
            dst_param,
            udf,
        )
    raise _Fallback("UDF body does not match any recognized batch shape")


def _match_guarded(
    guard_stmt: ast.If,
    update: PriorityUpdate,
    priority_vector: str,
    classifier,
    dst_param: str,
    udf: ast.FuncDecl,
) -> VectorKernel:
    """The A* shape: ``if v < aux[dst] { aux[dst] = v; pq.updateMin(dst, p) }``."""
    if update.op != "min":
        raise _Fallback("guarded batch kernels support min updates only")
    if guard_stmt.else_body:
        raise _Fallback("guarded update with an else branch")
    then_decls, then_rest = _flat_statements(guard_stmt.then_body)
    if then_decls:
        raise _Fallback("guarded update declares locals inside the guard")
    if len(then_rest) != 2:
        raise _Fallback(
            "guard body must be exactly the auxiliary write followed by "
            "the priority update"
        )
    assign, update_stmt = then_rest
    if not (
        isinstance(assign, ast.Assign)
        and isinstance(assign.target, ast.Index)
        and isinstance(assign.target.base, ast.Name)
        and isinstance(assign.target.index, ast.Name)
        and assign.target.index.identifier == dst_param
    ):
        raise _Fallback(
            "guard body does not start with a destination-indexed "
            "vector write"
        )
    if not (
        isinstance(update_stmt, ast.ExprStmt)
        and update_stmt.expression is update.call
    ):
        raise _Fallback("guard body does not end with the priority update")
    aux = assign.target.base.identifier
    if aux == priority_vector:
        raise _Fallback(
            "guarded write targets the priority vector itself; the "
            "two-level batch algorithm needs a distinct auxiliary vector"
        )

    value_cls = classifier()
    value = value_cls.classify(assign.value)
    condition = guard_stmt.condition
    if not (
        isinstance(condition, ast.BinaryOp)
        and condition.operator == "<"
        and isinstance(condition.right, ast.Index)
        and isinstance(condition.right.base, ast.Name)
        and condition.right.base.identifier == aux
        and isinstance(condition.right.index, ast.Name)
        and condition.right.index.identifier == dst_param
    ):
        raise _Fallback(
            "guard is not the monotonic test `value < aux[dst]` against "
            "the written vector"
        )
    guard_value_cls = classifier()
    guard_value = guard_value_cls.classify(condition.left)
    if guard_value != value:
        raise _Fallback(
            "the guarded comparison tests a different value than the one "
            "written"
        )

    assigned_local = (
        condition.left.identifier
        if isinstance(condition.left, ast.Name)
        else None
    )
    priority_cls = classifier(new_val_name=assigned_local)
    priority = priority_cls.classify(update.value_arg)

    written = {aux, priority_vector}
    for cls in (value_cls, priority_cls):
        illegal = cls.reads_at_dst & written
        if illegal:
            raise _Fallback(
                f"a batch expression reads {sorted(illegal)[0]!r} at the "
                f"destination, which the kernel writes"
            )
    hazard = tuple(
        sorted((value_cls.reads_at_src | priority_cls.reads_at_src) & written)
    )
    return VectorKernel(
        kind="guarded_write_min",
        queue_name=update.queue_name,
        value=value,
        priority=priority,
        aux=aux,
        hazard=hazard,
    )


def _match_plain_udf(
    udf: ast.FuncDecl, program: ast.Program, queue_names: set[str]
) -> VectorKernel:
    """Classify a whole-edgeset ``apply`` UDF (no queue), or raise."""
    parameters = [name for name, _ in udf.parameters]
    if len(parameters) < 2:
        raise _Fallback("edge UDF needs (src, dst[, weight]) parameters")
    src_param, dst_param = parameters[0], parameters[1]
    weight_param = parameters[2] if len(parameters) > 2 else None
    if find_priority_updates(udf, queue_names):
        raise _Fallback("whole-edgeset apply UDF performs priority updates")

    vectors = _program_vectors(program)
    scalars = _program_scalars(program)
    locals_inline = _inlineable_locals(udf)
    _check_scalar_global_writes(udf, locals_inline, vectors)

    def classifier() -> _ExprClassifier:
        return _ExprClassifier(
            src_param,
            dst_param,
            weight_param,
            locals_inline,
            vectors,
            scalars,
            queue_names,
        )

    body = udf.body
    guard_expr: str | None = None
    guard_reads_src: set[str] = set()
    decls, rest = _flat_statements(body)
    if len(rest) == 1 and isinstance(rest[0], ast.If) and not rest[0].else_body:
        outer = rest[0]
        inner_decls, inner_rest = _flat_statements(outer.then_body)
        if (
            len(inner_rest) == 1
            and isinstance(inner_rest[0], ast.If)
            and _is_min_write(inner_rest[0])
        ):
            guard_cls = classifier()
            guard_expr = guard_cls.classify(outer.condition)
            if guard_cls.reads_at_dst:
                raise _Fallback(
                    "the source guard reads destination-indexed state",
                    Span.from_node(outer.condition),
                )
            guard_reads_src = guard_cls.reads_at_src
            rest = inner_rest
        elif _is_min_write(outer):
            pass  # the single If IS the min-write
        else:
            raise _Fallback(
                "UDF body does not match the guarded min-write shape"
            )
    if not (len(rest) == 1 and isinstance(rest[0], ast.If)):
        raise _Fallback("UDF body does not match the guarded min-write shape")
    write_if = rest[0]
    if not _is_min_write(write_if):
        raise _Fallback("UDF body does not match the guarded min-write shape")
    assign = write_if.then_body[0]
    target = assign.target.base.identifier
    if not (
        isinstance(assign.target.index, ast.Name)
        and assign.target.index.identifier == dst_param
    ):
        raise _Fallback("min-write is not indexed by the destination")
    condition = write_if.condition
    if not (
        isinstance(condition.right, ast.Index)
        and isinstance(condition.right.base, ast.Name)
        and condition.right.base.identifier == target
        and isinstance(condition.right.index, ast.Name)
        and condition.right.index.identifier == dst_param
    ):
        raise _Fallback(
            "guard is not the monotonic test `value < target[dst]`"
        )
    value_cls = classifier()
    value = value_cls.classify(assign.value)
    guard_value_cls = classifier()
    if guard_value_cls.classify(condition.left) != value:
        raise _Fallback(
            "the guarded comparison tests a different value than the one "
            "written"
        )
    written = {target}
    if value_cls.reads_at_dst & written:
        raise _Fallback(
            f"the new value reads {target!r} at the destination outside "
            f"the guard"
        )
    hazard = tuple(
        sorted((value_cls.reads_at_src | guard_reads_src) & written)
    )
    return VectorKernel(
        kind="plain_min",
        value=value,
        guard=guard_expr,
        target=target,
        hazard=hazard,
    )


def _is_min_write(statement: ast.Stmt) -> bool:
    return (
        isinstance(statement, ast.If)
        and not statement.else_body
        and len(statement.then_body) == 1
        and isinstance(statement.then_body[0], ast.Assign)
        and isinstance(statement.then_body[0].target, ast.Index)
        and isinstance(statement.then_body[0].target.base, ast.Name)
        and isinstance(statement.condition, ast.BinaryOp)
        and statement.condition.operator == "<"
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_udf_vectorization(
    udf: ast.FuncDecl,
    program: ast.Program,
    queue_names: set[str],
    schedule: Schedule,
    is_priority_apply: bool,
    source_file: str | None = None,
) -> VectorizeReport:
    """Classify one apply UDF; never raises — fallback carries the reason."""
    span = Span.from_node(udf, file=source_file)
    # Race gate: only race-free (ordered-safe / seeded-CAS-equivalent)
    # UDFs vectorize.  Unordered racy programs are refused at runtime.
    report = analyze_races(udf, queue_names, schedule, source_file=source_file)
    racy = report.racy_sites
    if racy:
        first = racy[0]
        return VectorizeReport(
            udf_name=udf.name,
            kernel=None,
            reason=(
                f"race analysis classified the write to {first.target} as "
                f"unordered_racy (R001); only race-free UDFs vectorize"
            ),
            span=first.span,
        )
    try:
        if is_priority_apply:
            kernel = _match_priority_udf(udf, program, queue_names, schedule)
        else:
            kernel = _match_plain_udf(udf, program, queue_names)
    except _Fallback as fallback:
        return VectorizeReport(
            udf_name=udf.name,
            kernel=None,
            reason=fallback.reason,
            span=fallback.span if fallback.span is not None else span,
        )
    return VectorizeReport(
        udf_name=udf.name,
        kernel=kernel,
        reason=f"recognized batch shape {kernel.kind!r}",
        span=span,
    )


def _apply_sites(program: ast.Program):
    """(udf name, is_priority_apply) for every apply-style call site."""
    for func in program.functions:
        for node in ast.walk(func):
            if not isinstance(node, ast.ExprStmt):
                continue
            expression = node.expression
            if (
                isinstance(expression, ast.MethodCall)
                and expression.method in ("applyUpdatePriority", "apply")
                and expression.arguments
                and isinstance(expression.arguments[0], ast.Name)
            ):
                yield (
                    expression.arguments[0].identifier,
                    expression.method == "applyUpdatePriority",
                )


def analyze_vectorization(
    program: ast.Program,
    queue_names: set[str],
    schedule: Schedule,
    source_file: str | None = None,
) -> dict[str, VectorizeReport]:
    """Classify every apply UDF in ``program`` under ``schedule``."""
    reports: dict[str, VectorizeReport] = {}
    for udf_name, is_priority in _apply_sites(program):
        if udf_name in reports:
            continue
        udf = program.function(udf_name)
        if udf is None:
            continue  # V001 reported by the IR validator
        reports[udf_name] = analyze_udf_vectorization(
            udf,
            program,
            queue_names,
            schedule,
            is_priority_apply=is_priority,
            source_file=source_file,
        )
    return reports
