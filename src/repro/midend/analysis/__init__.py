"""Program analyses: UDF priority updates, dependences, loop patterns."""

from .dependence import DependenceInfo, analyze_dependences
from .loop_patterns import OrderedLoopInfo, recognize_ordered_loop
from .udf_analysis import (
    ConstantSumInfo,
    PriorityUpdate,
    analyze_constant_sum,
    find_priority_updates,
)

__all__ = [
    "DependenceInfo",
    "analyze_dependences",
    "OrderedLoopInfo",
    "recognize_ordered_loop",
    "ConstantSumInfo",
    "PriorityUpdate",
    "analyze_constant_sum",
    "find_priority_updates",
]
