"""Program analyses: UDF priority updates, dependences, loop patterns,
race/atomicity classification, whole-program effect summaries, and the
diagnostics engine."""

from .dependence import DependenceInfo, analyze_dependences
from .effects import (
    FusionVerdict,
    Monotonicity,
    MonotonicityVerdict,
    ProgramEffectSummary,
    UDFEffectSummary,
    analyze_program_effects,
    check_fusion_safety,
    fusion_matrix,
    summarize_udf,
)
from .diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    Severity,
    check_schedule_compat,
    lint_program,
    race_diagnostics,
    render_diagnostic,
    validate_ir,
    validate_ir_or_raise,
)
from .loop_patterns import OrderedLoopInfo, recognize_ordered_loop
from .races import RaceClass, RaceReport, WriteSite, analyze_races
from .udf_analysis import (
    ConstantSumInfo,
    PriorityUpdate,
    analyze_constant_sum,
    find_priority_updates,
)

__all__ = [
    "DependenceInfo",
    "analyze_dependences",
    "OrderedLoopInfo",
    "recognize_ordered_loop",
    "ConstantSumInfo",
    "PriorityUpdate",
    "analyze_constant_sum",
    "find_priority_updates",
    "RaceClass",
    "RaceReport",
    "WriteSite",
    "analyze_races",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "Severity",
    "check_schedule_compat",
    "lint_program",
    "race_diagnostics",
    "render_diagnostic",
    "validate_ir",
    "validate_ir_or_raise",
    "FusionVerdict",
    "Monotonicity",
    "MonotonicityVerdict",
    "ProgramEffectSummary",
    "UDFEffectSummary",
    "analyze_program_effects",
    "check_fusion_safety",
    "fusion_matrix",
    "summarize_udf",
]
