"""Analyses of user-defined functions (Section 5.1).

Two questions the compiler asks about a UDF passed to
``applyUpdatePriority``:

1. Which priority-update operators does it contain?  (Needed to lower the
   operators per schedule, to decide whether deduplication is required, and
   to reject UDFs with no update at all.)
2. Is it a *constant-sum* UDF — a single ``updatePrioritySum`` whose
   difference is a compile-time constant and whose threshold is the current
   bucket priority?  Only then may the ``lazy_constant_sum`` (histogram)
   schedule be applied; the analysis extracts the pieces the Figure 10
   transform needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import CompileError
from ...lang import ast_nodes as ast

__all__ = [
    "PriorityUpdate",
    "ConstantSumInfo",
    "find_priority_updates",
    "analyze_constant_sum",
]

_UPDATE_METHODS = {
    "updatePriorityMin": "min",
    "updatePriorityMax": "max",
    "updatePrioritySum": "sum",
}


@dataclass
class PriorityUpdate:
    """One priority-update operator occurrence inside a UDF."""

    op: str  # "min", "max", or "sum"
    call: ast.MethodCall
    queue_name: str
    vertex_arg: ast.Expr
    value_arg: ast.Expr  # new value (min/max) or difference (sum)
    threshold_arg: ast.Expr | None  # sum only
    old_arg: ast.Expr | None = None  # 3-arg min/max form: the read old value

    @property
    def has_old_value(self) -> bool:
        """Whether the UDF passed the current priority (the 3-arg form).

        The race analysis uses the preserved expression to seed the CAS
        loop the C++ backend generates: the first ``compare_exchange``
        attempt starts from the value the UDF already read instead of
        issuing an extra atomic load.
        """
        return self.old_arg is not None


@dataclass
class ConstantSumInfo:
    """Everything the histogram transform (Figure 10) needs."""

    update: PriorityUpdate
    constant: int
    threshold_is_current_priority: bool
    vertex_param: str


def find_priority_updates(
    func: ast.FuncDecl, queue_names: set[str]
) -> list[PriorityUpdate]:
    """All ``updatePriority*`` calls on known queues inside ``func``."""
    updates: list[PriorityUpdate] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.MethodCall):
            continue
        if node.method not in _UPDATE_METHODS:
            continue
        if not isinstance(node.receiver, ast.Name):
            continue
        if node.receiver.identifier not in queue_names:
            continue
        op = _UPDATE_METHODS[node.method]
        arguments = node.arguments
        old_arg: ast.Expr | None = None
        if op in ("min", "max"):
            # Both forms appear in the paper: (v, new) and (v, old, new).
            # The old-value argument is *preserved* (not dropped): the race
            # analysis seeds CAS lowering from it.
            if len(arguments) == 2:
                vertex_arg, value_arg = arguments
            elif len(arguments) == 3:
                vertex_arg, old_arg, value_arg = arguments
            else:
                raise CompileError(
                    f"{node.method} takes 2 or 3 arguments", span=node.span
                )
            threshold_arg = None
        else:
            if len(arguments) == 2:
                vertex_arg, value_arg = arguments
                threshold_arg = None
            elif len(arguments) == 3:
                vertex_arg, value_arg, threshold_arg = arguments
            else:
                raise CompileError(
                    "updatePrioritySum takes 2 or 3 arguments", span=node.span
                )
        updates.append(
            PriorityUpdate(
                op=op,
                call=node,
                queue_name=node.receiver.identifier,
                vertex_arg=vertex_arg,
                value_arg=value_arg,
                threshold_arg=threshold_arg,
                old_arg=old_arg,
            )
        )
    return updates


def _constant_value(expression: ast.Expr) -> int | None:
    """Evaluate a literal (possibly negated) integer expression."""
    if isinstance(expression, ast.IntLiteral):
        return expression.value
    if (
        isinstance(expression, ast.UnaryOp)
        and expression.operator == "-"
        and isinstance(expression.operand, ast.IntLiteral)
    ):
        return -expression.operand.value
    return None


def _resolves_to_current_priority(
    expression: ast.Expr, func: ast.FuncDecl, queue_name: str
) -> bool:
    """True when ``expression`` is ``pq.getCurrentPriority()`` or a local
    variable initialized to it (the ``var k`` pattern of Figure 10)."""
    if _is_current_priority_call(expression, queue_name):
        return True
    if isinstance(expression, ast.Name):
        for node in ast.walk(func):
            if (
                isinstance(node, ast.VarDecl)
                and node.name == expression.identifier
                and node.initializer is not None
                and _is_current_priority_call(node.initializer, queue_name)
            ):
                return True
    return False


def _is_current_priority_call(expression: ast.Expr, queue_name: str) -> bool:
    return (
        isinstance(expression, ast.MethodCall)
        and expression.method in ("getCurrentPriority", "get_current_priority")
        and isinstance(expression.receiver, ast.Name)
        and expression.receiver.identifier == queue_name
    )


def analyze_constant_sum(
    func: ast.FuncDecl, queue_names: set[str]
) -> ConstantSumInfo | None:
    """Detect the Figure 10 pattern; ``None`` when the UDF does not qualify.

    Requirements (Section 5.1): exactly one priority-update operator, it is
    an ``updatePrioritySum``, its difference is a compile-time constant, its
    threshold resolves to the current bucket priority, and its target is a
    plain parameter of the UDF (so the histogram can be keyed on it).
    """
    updates = find_priority_updates(func, queue_names)
    if len(updates) != 1:
        return None
    update = updates[0]
    if update.op != "sum":
        return None
    constant = _constant_value(update.value_arg)
    if constant is None:
        return None
    if update.threshold_arg is None:
        return None
    if not _resolves_to_current_priority(
        update.threshold_arg, func, update.queue_name
    ):
        return None
    if not isinstance(update.vertex_arg, ast.Name):
        return None
    parameter_names = {name for name, _ in func.parameters}
    if update.vertex_arg.identifier not in parameter_names:
        return None
    return ConstantSumInfo(
        update=update,
        constant=constant,
        threshold_is_current_priority=True,
        vertex_param=update.vertex_arg.identifier,
    )
