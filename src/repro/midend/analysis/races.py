"""Race/atomicity analysis for ``applyUpdatePriority`` UDFs.

The paper's compiler silently decides which writes inside an edge UDF need
atomic lowering (the ``atomicWriteMin``/``fetch_add`` of Figure 9) and which
may stay plain.  This module makes that decision explicit and auditable:
every write to shared state — a vertex property vector, a shared scalar
global, or the priority queue itself — is classified under the *active
schedule's* traversal direction and parallelization policy into one of four
:class:`RaceClass`es:

``BENIGN``
    The write cannot race (thread-owned index under the traversal
    direction, or an idempotent constant store), or it races benignly (a
    guarded monotonic test-and-set whose lost updates are re-established
    by a following priority update).
``NEEDS_CAS``
    A min/max priority update on a shared vertex: the backend must lower it
    to a compare-exchange loop (``atomicWriteMin``/``atomicWriteMax``).
``NEEDS_DEDUP``
    A sum priority update: the backend must lower it to a clamped
    ``fetch_add`` *and* deduplicate bucket insertions (processing a vertex
    twice is incorrect for k-core-style UDFs — Section 5.1).
``UNORDERED_RACY``
    A plain, unguarded write to shared state that two threads may perform
    concurrently with differing values: a correctness bug under the chosen
    parallel schedule.  The diagnostics engine reports these as ``R001``
    errors; the Python backend refuses to run them.

The classification is consumed by both backends: the C++ generator emits
``compare_exchange``/``fetch_add`` only for sites classified ``NEEDS_CAS``/
``NEEDS_DEDUP`` (no unconditional atomics), and the Python backend embeds
the classification in the generated module and asserts it at runtime
against the schedule it executes under.

Since the effect-analysis framework landed, this module no longer walks the
IR itself: it is a thin projection of the
:class:`~repro.midend.analysis.effects.UDFEffectSummary` access records
(which preserve the historical statement-order walk) onto race classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...lang import ast_nodes as ast
from ...lang.span import Span
from ..schedule import Schedule
from .effects.model import Access, AccessKind, TargetKind, UDFEffectSummary
from .udf_analysis import PriorityUpdate

__all__ = ["RaceClass", "WriteSite", "RaceReport", "analyze_races"]


class RaceClass(enum.Enum):
    """Classification of one shared write under a parallel schedule."""

    BENIGN = "benign"
    NEEDS_CAS = "needs_cas"
    NEEDS_DEDUP = "needs_dedup"
    UNORDERED_RACY = "unordered_racy"

    @property
    def is_atomic(self) -> bool:
        """Whether the C++ backend must emit an atomic for this site."""
        return self in (RaceClass.NEEDS_CAS, RaceClass.NEEDS_DEDUP)


@dataclass
class WriteSite:
    """One classified write to shared state inside a UDF."""

    node: ast.Node  # the Assign or MethodCall performing the write
    target: str  # rendered target, e.g. "dist[dst]" or "priority(pq)"
    race_class: RaceClass
    reason: str
    span: Span
    update: PriorityUpdate | None = None  # set for priority-update sites
    cas_seed: ast.Expr | None = None  # old-value expr seeding the CAS loop

    @property
    def is_priority_update(self) -> bool:
        return self.update is not None


@dataclass
class RaceReport:
    """The full classification of one UDF under one schedule."""

    udf_name: str
    direction: str
    parallelization: str
    sites: list[WriteSite] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates the backends and diagnostics consume
    # ------------------------------------------------------------------
    @property
    def needs_atomics(self) -> bool:
        return any(site.race_class.is_atomic for site in self.sites)

    @property
    def needs_deduplication(self) -> bool:
        return any(
            site.race_class is RaceClass.NEEDS_DEDUP for site in self.sites
        )

    @property
    def racy_sites(self) -> list[WriteSite]:
        return [
            site
            for site in self.sites
            if site.race_class is RaceClass.UNORDERED_RACY
        ]

    def site_for(self, node: ast.Node) -> WriteSite | None:
        """The classified site for an AST node (identity match)."""
        for site in self.sites:
            if site.node is node:
                return site
        return None

    def summary(self) -> list[dict]:
        """JSON-serializable per-site summary (embedded in generated code)."""
        return [
            {
                "target": site.target,
                "class": site.race_class.value,
                "line": site.span.line,
                "reason": site.reason,
            }
            for site in self.sites
        ]


def analyze_races(
    udf: ast.FuncDecl,
    queue_names: set[str],
    schedule: Schedule,
    source_file: str | None = None,
) -> RaceReport:
    """Classify every shared write in ``udf`` under ``schedule``.

    ``udf`` is an edge UDF with parameters ``(src, dst[, weight])``.  Under
    push-direction traversal the parallel loop runs over sources, so any
    write indexed by ``dst`` is cross-thread; under pull it runs over
    destinations, so ``dst``-indexed writes are thread-owned and
    ``src``-indexed writes are cross-thread.
    """
    from .effects.analysis import summarize_udf

    effect_summary = summarize_udf(
        udf, queue_names, schedule.direction, source_file
    )
    return classify_from_effects(effect_summary, schedule)


def classify_from_effects(
    summary: UDFEffectSummary, schedule: Schedule
) -> RaceReport:
    """Project an effect summary onto the race classification."""
    report = RaceReport(
        udf_name=summary.udf_name,
        direction=schedule.direction,
        parallelization=schedule.parallelization,
    )
    for access in summary.accesses:
        if access.is_local:
            continue  # thread-local: parameters and var declarations
        if access.kind is AccessKind.PRIORITY_UPDATE:
            report.sites.append(_classify_update(access))
        elif access.target_kind is TargetKind.SCALAR:
            report.sites.append(_classify_scalar(access))
        elif access.target_kind is TargetKind.VECTOR:
            report.sites.append(_classify_vector(access))
    return report


def _classify_update(access: Access) -> WriteSite:
    """A priority-update operator: CAS/fetch-add class per target index."""
    update = access.update
    vertex_name = access.index_name
    if access.owned:
        return WriteSite(
            node=access.node,
            target=access.rendered,
            race_class=RaceClass.BENIGN,
            reason=(
                f"update indexed by {vertex_name!r} is thread-owned under "
                f"this traversal direction; plain write suffices"
            ),
            span=access.span,
            update=update,
        )
    if update.op == "sum":
        return WriteSite(
            node=access.node,
            target=access.rendered,
            race_class=RaceClass.NEEDS_DEDUP,
            reason=(
                f"sum update indexed by {vertex_name or 'a non-parameter'}"
                f" crosses threads: clamped fetch_add plus bucket "
                f"deduplication required (Section 5.1)"
            ),
            span=access.span,
            update=update,
        )
    seed = update.old_arg
    return WriteSite(
        node=access.node,
        target=access.rendered,
        race_class=RaceClass.NEEDS_CAS,
        reason=(
            f"{update.op} update indexed by "
            f"{vertex_name or 'a non-parameter'} crosses threads: "
            f"compare_exchange loop required"
            + (
                "; CAS seeded from the UDF's read of the old priority"
                if seed is not None
                else ""
            )
        ),
        span=access.span,
        update=update,
        cas_seed=seed,
    )


def _classify_scalar(access: Access) -> WriteSite:
    if access.constant_store:
        return WriteSite(
            node=access.node,
            target=access.rendered,
            race_class=RaceClass.BENIGN,
            reason=(
                "constant store to shared scalar is idempotent "
                "(every thread writes the same value)"
            ),
            span=access.span,
        )
    return WriteSite(
        node=access.node,
        target=access.rendered,
        race_class=RaceClass.UNORDERED_RACY,
        reason=(
            "non-constant write to shared scalar from a parallel UDF; "
            "the last writer wins nondeterministically"
        ),
        span=access.span,
    )


def _classify_vector(access: Access) -> WriteSite:
    if access.owned:
        return WriteSite(
            node=access.node,
            target=access.rendered,
            race_class=RaceClass.BENIGN,
            reason=(
                f"indexed by the thread-owned parameter {access.index_name!r} "
                f"under this traversal direction"
            ),
            span=access.span,
        )
    # Any other index — the foreign parameter, or a local holding an
    # arbitrary vertex id (which can alias it) — crosses threads.
    if access.guarded_monotonic:
        return WriteSite(
            node=access.node,
            target=access.rendered,
            race_class=RaceClass.BENIGN,
            reason=(
                "benign race: guarded monotonic test-and-set "
                "(a lost update is re-established by the following "
                "priority update / later relaxation)"
            ),
            span=access.span,
        )
    return WriteSite(
        node=access.node,
        target=access.rendered,
        race_class=RaceClass.UNORDERED_RACY,
        reason=(
            f"unguarded write to shared vertex property {access.rendered!r} "
            f"indexed across threads; needs an atomic or a guard"
        ),
        span=access.span,
    )
