"""Race/atomicity analysis for ``applyUpdatePriority`` UDFs.

The paper's compiler silently decides which writes inside an edge UDF need
atomic lowering (the ``atomicWriteMin``/``fetch_add`` of Figure 9) and which
may stay plain.  This module makes that decision explicit and auditable:
every write to shared state — a vertex property vector, a shared scalar
global, or the priority queue itself — is classified under the *active
schedule's* traversal direction and parallelization policy into one of four
:class:`RaceClass`es:

``BENIGN``
    The write cannot race (thread-owned index under the traversal
    direction, or an idempotent constant store), or it races benignly (a
    guarded monotonic test-and-set whose lost updates are re-established
    by a following priority update).
``NEEDS_CAS``
    A min/max priority update on a shared vertex: the backend must lower it
    to a compare-exchange loop (``atomicWriteMin``/``atomicWriteMax``).
``NEEDS_DEDUP``
    A sum priority update: the backend must lower it to a clamped
    ``fetch_add`` *and* deduplicate bucket insertions (processing a vertex
    twice is incorrect for k-core-style UDFs — Section 5.1).
``UNORDERED_RACY``
    A plain, unguarded write to shared state that two threads may perform
    concurrently with differing values: a correctness bug under the chosen
    parallel schedule.  The diagnostics engine reports these as ``R001``
    errors; the Python backend refuses to run them.

The classification is consumed by both backends: the C++ generator emits
``compare_exchange``/``fetch_add`` only for sites classified ``NEEDS_CAS``/
``NEEDS_DEDUP`` (no unconditional atomics), and the Python backend embeds
the classification in the generated module and asserts it at runtime
against the schedule it executes under.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ...lang import ast_nodes as ast
from ...lang.span import Span
from ..schedule import Schedule
from .udf_analysis import PriorityUpdate, find_priority_updates

__all__ = ["RaceClass", "WriteSite", "RaceReport", "analyze_races"]


class RaceClass(enum.Enum):
    """Classification of one shared write under a parallel schedule."""

    BENIGN = "benign"
    NEEDS_CAS = "needs_cas"
    NEEDS_DEDUP = "needs_dedup"
    UNORDERED_RACY = "unordered_racy"

    @property
    def is_atomic(self) -> bool:
        """Whether the C++ backend must emit an atomic for this site."""
        return self in (RaceClass.NEEDS_CAS, RaceClass.NEEDS_DEDUP)


@dataclass
class WriteSite:
    """One classified write to shared state inside a UDF."""

    node: ast.Node  # the Assign or MethodCall performing the write
    target: str  # rendered target, e.g. "dist[dst]" or "priority(pq)"
    race_class: RaceClass
    reason: str
    span: Span
    update: PriorityUpdate | None = None  # set for priority-update sites
    cas_seed: ast.Expr | None = None  # old-value expr seeding the CAS loop

    @property
    def is_priority_update(self) -> bool:
        return self.update is not None


@dataclass
class RaceReport:
    """The full classification of one UDF under one schedule."""

    udf_name: str
    direction: str
    parallelization: str
    sites: list[WriteSite] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates the backends and diagnostics consume
    # ------------------------------------------------------------------
    @property
    def needs_atomics(self) -> bool:
        return any(site.race_class.is_atomic for site in self.sites)

    @property
    def needs_deduplication(self) -> bool:
        return any(
            site.race_class is RaceClass.NEEDS_DEDUP for site in self.sites
        )

    @property
    def racy_sites(self) -> list[WriteSite]:
        return [
            site
            for site in self.sites
            if site.race_class is RaceClass.UNORDERED_RACY
        ]

    def site_for(self, node: ast.Node) -> WriteSite | None:
        """The classified site for an AST node (identity match)."""
        for site in self.sites:
            if site.node is node:
                return site
        return None

    def summary(self) -> list[dict]:
        """JSON-serializable per-site summary (embedded in generated code)."""
        return [
            {
                "target": site.target,
                "class": site.race_class.value,
                "line": site.span.line,
                "reason": site.reason,
            }
            for site in self.sites
        ]


def analyze_races(
    udf: ast.FuncDecl,
    queue_names: set[str],
    schedule: Schedule,
    source_file: str | None = None,
) -> RaceReport:
    """Classify every shared write in ``udf`` under ``schedule``.

    ``udf`` is an edge UDF with parameters ``(src, dst[, weight])``.  Under
    push-direction traversal the parallel loop runs over sources, so any
    write indexed by ``dst`` is cross-thread; under pull it runs over
    destinations, so ``dst``-indexed writes are thread-owned and
    ``src``-indexed writes are cross-thread.
    """
    parameters = [name for name, _ in udf.parameters]
    src_param = parameters[0] if parameters else "src"
    dst_param = parameters[1] if len(parameters) > 1 else "dst"
    if schedule.direction == "DensePull":
        owned_param, foreign_param = dst_param, src_param
    else:
        owned_param, foreign_param = src_param, dst_param

    local_names = set(parameters)
    for node in ast.walk(udf):
        if isinstance(node, ast.VarDecl):
            local_names.add(node.name)

    report = RaceReport(
        udf_name=udf.name,
        direction=schedule.direction,
        parallelization=schedule.parallelization,
    )
    updates = {id(u.call): u for u in find_priority_updates(udf, queue_names)}

    _classify_body(
        udf.body,
        report,
        updates,
        guards=[],
        owned_param=owned_param,
        foreign_param=foreign_param,
        local_names=local_names,
        source_file=source_file,
    )
    return report


# ----------------------------------------------------------------------
# Classification walk
# ----------------------------------------------------------------------
def _classify_body(
    body: list[ast.Stmt],
    report: RaceReport,
    updates: dict[int, PriorityUpdate],
    guards: list[ast.Expr],
    **env,
) -> None:
    for statement in body:
        if isinstance(statement, ast.If):
            inner = guards + [statement.condition]
            _classify_body(statement.then_body, report, updates, inner, **env)
            _classify_body(statement.else_body, report, updates, guards, **env)
        elif isinstance(statement, (ast.While, ast.For)):
            _classify_body(statement.body, report, updates, guards, **env)
        elif isinstance(statement, ast.ExprStmt):
            update = updates.get(id(statement.expression))
            if update is not None:
                report.sites.append(_classify_update(update, **env))
        elif isinstance(statement, ast.Assign):
            site = _classify_assign(statement, guards, **env)
            if site is not None:
                report.sites.append(site)


def _classify_update(
    update: PriorityUpdate,
    *,
    owned_param: str,
    foreign_param: str,
    local_names: set[str],
    source_file: str | None,
) -> WriteSite:
    """A priority-update operator: CAS/fetch-add class per target index."""
    span = Span.from_node(update.call, file=source_file)
    target = f"priority({update.queue_name})"
    vertex = update.vertex_arg
    vertex_name = vertex.identifier if isinstance(vertex, ast.Name) else None

    if vertex_name == owned_param:
        return WriteSite(
            node=update.call,
            target=target,
            race_class=RaceClass.BENIGN,
            reason=(
                f"update indexed by {vertex_name!r} is thread-owned under "
                f"this traversal direction; plain write suffices"
            ),
            span=span,
            update=update,
        )
    if update.op == "sum":
        return WriteSite(
            node=update.call,
            target=target,
            race_class=RaceClass.NEEDS_DEDUP,
            reason=(
                f"sum update indexed by {vertex_name or 'a non-parameter'}"
                f" crosses threads: clamped fetch_add plus bucket "
                f"deduplication required (Section 5.1)"
            ),
            span=span,
            update=update,
        )
    seed = update.old_arg
    return WriteSite(
        node=update.call,
        target=target,
        race_class=RaceClass.NEEDS_CAS,
        reason=(
            f"{update.op} update indexed by "
            f"{vertex_name or 'a non-parameter'} crosses threads: "
            f"compare_exchange loop required"
            + (
                "; CAS seeded from the UDF's read of the old priority"
                if seed is not None
                else ""
            )
        ),
        span=span,
        update=update,
        cas_seed=seed,
    )


def _classify_assign(
    assign: ast.Assign,
    guards: list[ast.Expr],
    *,
    owned_param: str,
    foreign_param: str,
    local_names: set[str],
    source_file: str | None,
) -> WriteSite | None:
    """A plain assignment: shared-state writes get classified, locals skip."""
    target = assign.target
    span = Span.from_node(assign, file=source_file)

    if isinstance(target, ast.Name):
        name = target.identifier
        if name in local_names:
            return None  # thread-local: parameters and var declarations
        rendered = name
        if isinstance(assign.value, (ast.IntLiteral, ast.BoolLiteral)):
            return WriteSite(
                node=assign,
                target=rendered,
                race_class=RaceClass.BENIGN,
                reason=(
                    "constant store to shared scalar is idempotent "
                    "(every thread writes the same value)"
                ),
                span=span,
            )
        return WriteSite(
            node=assign,
            target=rendered,
            race_class=RaceClass.UNORDERED_RACY,
            reason=(
                "non-constant write to shared scalar from a parallel UDF; "
                "the last writer wins nondeterministically"
            ),
            span=span,
        )

    if not isinstance(target, ast.Index):
        return None
    base = target.base
    index = target.index
    base_name = base.identifier if isinstance(base, ast.Name) else "<expr>"
    index_name = index.identifier if isinstance(index, ast.Name) else None
    rendered = f"{base_name}[{index_name or '<expr>'}]"

    if index_name is not None and index_name == owned_param:
        return WriteSite(
            node=assign,
            target=rendered,
            race_class=RaceClass.BENIGN,
            reason=(
                f"indexed by the thread-owned parameter {index_name!r} "
                f"under this traversal direction"
            ),
            span=span,
        )
    # Any other index — the foreign parameter, or a local holding an
    # arbitrary vertex id (which can alias it) — crosses threads.
    if _is_guarded_monotonic(assign, guards, base_name, index):
        return WriteSite(
            node=assign,
            target=rendered,
            race_class=RaceClass.BENIGN,
            reason=(
                "benign race: guarded monotonic test-and-set "
                "(a lost update is re-established by the following "
                "priority update / later relaxation)"
            ),
            span=span,
        )
    return WriteSite(
        node=assign,
        target=rendered,
        race_class=RaceClass.UNORDERED_RACY,
        reason=(
            f"unguarded write to shared vertex property {rendered!r} "
            f"indexed across threads; needs an atomic or a guard"
        ),
        span=span,
    )


def _is_guarded_monotonic(
    assign: ast.Assign,
    guards: list[ast.Expr],
    base_name: str,
    index: ast.Expr,
) -> bool:
    """Whether the write sits under a comparison against its own target.

    This recognizes the A*/Bellman-Ford idiom::

        if new_dist < dist[dst]
            dist[dst] = new_dist;

    The store may lose a concurrent smaller value, but the race is benign:
    monotone relaxation re-delivers it (and in the paper's programs a
    priority update follows that re-enqueues the vertex).
    """
    for guard in guards:
        for node in ast.walk(guard):
            if not isinstance(node, ast.BinaryOp):
                continue
            if node.operator not in ("<", ">", "<=", ">=", "!=", "=="):
                continue
            for side in (node.left, node.right):
                if _same_indexed_read(side, base_name, index):
                    return True
    return False


def _same_indexed_read(expr: ast.Expr, base_name: str, index: ast.Expr) -> bool:
    return (
        isinstance(expr, ast.Index)
        and isinstance(expr.base, ast.Name)
        and expr.base.identifier == base_name
        and _same_simple_expr(expr.index, index)
    )


def _same_simple_expr(left: ast.Expr, right: ast.Expr) -> bool:
    if isinstance(left, ast.Name) and isinstance(right, ast.Name):
        return left.identifier == right.identifier
    if isinstance(left, ast.IntLiteral) and isinstance(right, ast.IntLiteral):
        return left.value == right.value
    return False
