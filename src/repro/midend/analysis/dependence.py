"""Write-write conflict analysis for atomics insertion (Section 5.1).

In push-direction traversal, the parallel loop runs over *source* vertices,
so any write indexed by the destination parameter can race between threads
and must become an atomic (the ``atomicWriteMin`` of Figure 9(a)/(c)).  In
pull-direction traversal the parallel loop runs over destinations, each
owned by one thread, so destination-indexed writes need no atomics
(Figure 9(b)) — but source-indexed writes would (none of the paper's UDFs
have any).

Deduplication flags (the CAS on ``dedup_flags`` in Figure 9(a)) are required
when a vertex may receive several updates in one round *and* processing it
twice is incorrect — i.e. for ``updatePrioritySum`` UDFs such as k-core
(Section 5.1: "Deduplication is required for correctness for applications
such as k-core").  Min/max updates are idempotent, so deduplication there is
an optimization rather than a correctness requirement.

Since the effect-analysis framework landed, this module derives its write
lists from the :class:`~repro.midend.analysis.effects.UDFEffectSummary`
access records rather than walking the IR itself; the projection preserves
the historical order (assignments first, priority updates after) and
duplicate entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...lang import ast_nodes as ast
from .effects.model import AccessKind, TargetKind, UDFEffectSummary

__all__ = ["DependenceInfo", "analyze_dependences"]


@dataclass
class DependenceInfo:
    """Results of the conflict analysis for one UDF under one direction."""

    direction: str
    destination_writes: list[str]  # vector names written at the dst index
    source_writes: list[str]  # vector names written at the src index
    needs_atomics: bool
    needs_deduplication: bool


def _written_vectors(summary: UDFEffectSummary, parameter: str) -> list[str]:
    """Vector names assigned at index ``parameter`` anywhere in the UDF."""
    return [
        access.base
        for access in summary.accesses
        if access.kind is AccessKind.WRITE
        and access.target_kind is TargetKind.VECTOR
        and access.base != "<expr>"
        and access.index_name == parameter
    ]


def analyze_dependences(
    func: ast.FuncDecl,
    queue_names: set[str],
    direction: str = "SparsePush",
) -> DependenceInfo:
    """Decide whether the generated code needs atomics and deduplication.

    ``func`` must be an edge UDF with parameters ``(src, dst[, weight])``.
    Priority updates targeting the destination count as destination writes
    (the update operator writes the priority vector internally).
    """
    from .effects.analysis import summarize_udf

    summary = summarize_udf(func, queue_names, direction)
    return dependences_from_effects(summary, direction)


def dependences_from_effects(
    summary: UDFEffectSummary, direction: str
) -> DependenceInfo:
    """Project an effect summary onto the atomics/deduplication decision."""
    destination_writes = _written_vectors(summary, summary.dst_param)
    source_writes = _written_vectors(summary, summary.src_param)

    updates = [a.update for a in summary.priority_updates if a.update is not None]
    for access in summary.priority_updates:
        if access.index_name == summary.dst_param:
            destination_writes.append(f"priority({access.base})")
        elif access.index_name == summary.src_param:
            source_writes.append(f"priority({access.base})")

    if direction == "DensePull":
        needs_atomics = bool(source_writes)
    else:
        needs_atomics = bool(destination_writes)

    needs_deduplication = any(update.op == "sum" for update in updates)
    return DependenceInfo(
        direction=direction,
        destination_writes=destination_writes,
        source_writes=source_writes,
        needs_atomics=needs_atomics,
        needs_deduplication=needs_deduplication,
    )
