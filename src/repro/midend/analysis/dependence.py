"""Write-write conflict analysis for atomics insertion (Section 5.1).

In push-direction traversal, the parallel loop runs over *source* vertices,
so any write indexed by the destination parameter can race between threads
and must become an atomic (the ``atomicWriteMin`` of Figure 9(a)/(c)).  In
pull-direction traversal the parallel loop runs over destinations, each
owned by one thread, so destination-indexed writes need no atomics
(Figure 9(b)) — but source-indexed writes would (none of the paper's UDFs
have any).

Deduplication flags (the CAS on ``dedup_flags`` in Figure 9(a)) are required
when a vertex may receive several updates in one round *and* processing it
twice is incorrect — i.e. for ``updatePrioritySum`` UDFs such as k-core
(Section 5.1: "Deduplication is required for correctness for applications
such as k-core").  Min/max updates are idempotent, so deduplication there is
an optimization rather than a correctness requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...lang import ast_nodes as ast
from .udf_analysis import PriorityUpdate, find_priority_updates

__all__ = ["DependenceInfo", "analyze_dependences"]


@dataclass
class DependenceInfo:
    """Results of the conflict analysis for one UDF under one direction."""

    direction: str
    destination_writes: list[str]  # vector names written at the dst index
    source_writes: list[str]  # vector names written at the src index
    needs_atomics: bool
    needs_deduplication: bool


def _written_vectors(func: ast.FuncDecl, parameter: str) -> list[str]:
    """Vector names assigned at index ``parameter`` anywhere in the UDF."""
    names: list[str] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        target = node.target
        if (
            isinstance(target, ast.Index)
            and isinstance(target.base, ast.Name)
            and isinstance(target.index, ast.Name)
            and target.index.identifier == parameter
        ):
            names.append(target.base.identifier)
    return names


def analyze_dependences(
    func: ast.FuncDecl,
    queue_names: set[str],
    direction: str = "SparsePush",
) -> DependenceInfo:
    """Decide whether the generated code needs atomics and deduplication.

    ``func`` must be an edge UDF with parameters ``(src, dst[, weight])``.
    Priority updates targeting the destination count as destination writes
    (the update operator writes the priority vector internally).
    """
    parameters = [name for name, _ in func.parameters]
    src_param = parameters[0] if parameters else "src"
    dst_param = parameters[1] if len(parameters) > 1 else "dst"

    destination_writes = _written_vectors(func, dst_param)
    source_writes = _written_vectors(func, src_param)

    updates: list[PriorityUpdate] = find_priority_updates(func, queue_names)
    for update in updates:
        if (
            isinstance(update.vertex_arg, ast.Name)
            and update.vertex_arg.identifier == dst_param
        ):
            destination_writes.append(f"priority({update.queue_name})")
        elif (
            isinstance(update.vertex_arg, ast.Name)
            and update.vertex_arg.identifier == src_param
        ):
            source_writes.append(f"priority({update.queue_name})")

    if direction == "DensePull":
        needs_atomics = bool(source_writes)
    else:
        needs_atomics = bool(destination_writes)

    needs_deduplication = any(update.op == "sum" for update in updates)
    return DependenceInfo(
        direction=direction,
        destination_writes=destination_writes,
        source_writes=source_writes,
        needs_atomics=needs_atomics,
        needs_deduplication=needs_deduplication,
    )
