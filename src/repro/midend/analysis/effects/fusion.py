"""Pairwise fusion-safety over program effect summaries.

The multi-query fusion direction on the ROADMAP (GraFS-style) runs several
ordered queries over the *same* graph in one traversal.  Two queries may
share a traversal only when their effect summaries prove the merged schedule
cannot change either query's result:

1. Both programs must expose a recognized ordered-processing loop driving a
   priority queue (there is no frontier structure to merge otherwise), and
   neither may delegate bucket processing to an extern function the analysis
   cannot see into.
2. **Compatible frontier structure** — the queues must process in the same
   order (``lower_first`` vs ``higher_first``) and follow the same update
   discipline (min/max relaxation vs sum/decrement): a fused bucket walk has
   one processing front and one bucket-update rule.
3. **Disjoint write sets** — per-query property vectors are α-renamed apart
   (each query instance owns fresh vectors), so the shared mutable state is
   the scalar globals and the graph itself.  Any shared-scalar write in a
   loop UDF couples the queries and blocks fusion; vector writes never
   overlap after renaming.
4. Every write in either loop UDF must be race-free under the fused parallel
   traversal (owned, guarded-monotonic, or an update operator), and every
   priority update must be monotone-admissible for its queue — fusing a
   query whose own schedule admissibility is unproven would silently extend
   the unsoundness to its partner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import ProgramEffectSummary, TargetKind

__all__ = ["FusionVerdict", "check_fusion_safety", "fusion_matrix"]


@dataclass
class FusionVerdict:
    """Whether two programs' ordered traversals may be fused."""

    first: str
    second: str
    fusable: bool
    #: human-readable blockers; empty when fusable
    reasons: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "pair": [self.first, self.second],
            "fusable": self.fusable,
            "reasons": list(self.reasons),
        }


def check_fusion_safety(
    first_name: str,
    first: ProgramEffectSummary,
    second_name: str,
    second: ProgramEffectSummary,
) -> FusionVerdict:
    """Decide fusion safety of two programs from their effect summaries."""
    reasons: list[str] = []
    reasons.extend(_structure_blockers(first_name, first))
    reasons.extend(_structure_blockers(second_name, second))

    if not reasons:
        order_a = _loop_order(first)
        order_b = _loop_order(second)
        if order_a != order_b:
            reasons.append(
                f"processing-order mismatch: {first_name} processes "
                f"{order_a!r} but {second_name} processes {order_b!r}; a "
                f"fused traversal has a single processing front"
            )
        discipline_a = _update_discipline(first)
        discipline_b = _update_discipline(second)
        if discipline_a != discipline_b:
            reasons.append(
                f"update-discipline mismatch: {first_name} uses "
                f"{discipline_a} updates but {second_name} uses "
                f"{discipline_b} updates; bucket maintenance differs"
            )

    for name, summary in ((first_name, first), (second_name, second)):
        reasons.extend(_effect_blockers(name, summary))

    return FusionVerdict(
        first=first_name,
        second=second_name,
        fusable=not reasons,
        reasons=reasons,
    )


def _structure_blockers(name: str, summary: ProgramEffectSummary) -> list[str]:
    if not summary.has_ordered_loop:
        return [
            f"{name} has no recognized ordered-processing loop to fuse into"
        ]
    if summary.uses_extern_processing:
        return [
            f"{name} delegates bucket processing to an extern function; "
            f"its effects are not analyzable"
        ]
    return []


def _loop_order(summary: ProgramEffectSummary) -> str | None:
    if summary.loop_queue is None:
        return None
    info = summary.queues.get(summary.loop_queue)
    return info.order if info is not None else None


def _update_discipline(summary: ProgramEffectSummary) -> str:
    """``"relaxation"`` (min/max) or ``"accumulation"`` (sum) of the loop UDF."""
    udf = summary.udfs.get(summary.loop_udf or "")
    if udf is None:
        return "none"
    ops = {
        a.update.op
        for a in udf.priority_updates
        if a.update is not None
    }
    if ops <= {"min", "max"} and ops:
        return "relaxation"
    if ops == {"sum"}:
        return "accumulation"
    return "mixed" if ops else "none"


def _effect_blockers(name: str, summary: ProgramEffectSummary) -> list[str]:
    reasons: list[str] = []
    udf = summary.udfs.get(summary.loop_udf or "")
    if udf is not None:
        for access in udf.write_accesses:
            if access.target_kind is TargetKind.SCALAR:
                reasons.append(
                    f"{name}: UDF {udf.udf_name!r} writes the shared scalar "
                    f"{access.base!r}; scalars are not renamed apart between "
                    f"fused queries"
                )
            elif (
                access.target_kind is TargetKind.VECTOR
                and not access.owned
                and not access.guarded_monotonic
            ):
                reasons.append(
                    f"{name}: UDF {udf.udf_name!r} performs an unordered "
                    f"racy write to {access.rendered}; unsound under any "
                    f"parallel traversal, fused or not"
                )
    for verdict in summary.monotonicity:
        if udf is not None and verdict.udf_name != udf.udf_name:
            continue
        if not verdict.admissible and not verdict.racy_site:
            reasons.append(
                f"{name}: {verdict.site} in UDF {verdict.udf_name!r} is "
                f"{verdict.verdict.value} for its queue's processing order "
                f"({verdict.reason})"
            )
    return reasons


def fusion_matrix(
    summaries: dict[str, ProgramEffectSummary],
) -> list[FusionVerdict]:
    """All unordered pairs of ``summaries``, in sorted name order."""
    names = sorted(summaries)
    verdicts: list[FusionVerdict] = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            verdicts.append(
                check_fusion_safety(a, summaries[a], b, summaries[b])
            )
    return verdicts
