"""Data model of the whole-program effect analysis.

The framework describes what a UDF *does* to shared state — which property
vectors, shared scalars, and priority queues it reads and writes, through
which index expressions, and under which guards — as a flat, ordered list of
:class:`Access` records plus per-variable def-use chains.  Downstream
consumers project the records onto their own questions:

- :mod:`~repro.midend.analysis.races` classifies each write access into a
  :class:`~repro.midend.analysis.races.RaceClass`,
- :mod:`~repro.midend.analysis.dependence` derives the destination/source
  write lists that drive atomics insertion,
- :mod:`~repro.midend.analysis.effects.monotonicity` proves each priority
  update monotone-decreasing / monotone-increasing / non-monotone,
- :mod:`~repro.midend.analysis.effects.fusion` decides pairwise
  fusion-safety from two programs' summaries, and
- the runtime schedule sanitizer replays the summary against the accesses a
  real execution actually performs.

The record order is load-bearing: accesses appear in the exact statement
order the classification walk visits them (pre-order, ``then`` before
``else``), which both the race analysis and the dependence analysis
historically relied on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ....lang import ast_nodes as ast
from ....lang.span import Span
from ..udf_analysis import PriorityUpdate

__all__ = [
    "AccessKind",
    "TargetKind",
    "IndexProvenance",
    "Access",
    "DefUseChains",
    "UDFEffectSummary",
    "QueueInfo",
    "ProgramEffectSummary",
]


class AccessKind(enum.Enum):
    """What an access does to its target."""

    READ = "read"
    WRITE = "write"
    PRIORITY_UPDATE = "priority_update"

    @property
    def writes(self) -> bool:
        return self is not AccessKind.READ


class TargetKind(enum.Enum):
    """What kind of shared state an access touches."""

    VECTOR = "vector"  # a per-vertex property vector
    SCALAR = "scalar"  # a shared scalar global
    QUEUE = "queue"  # the priority queue (via updatePriority*)


class IndexProvenance(enum.Enum):
    """Where a vector access's index expression comes from.

    Direction-awareness lives one level up: under push traversal ``SRC`` is
    the loop-owned index and ``DST`` is foreign; under pull traversal the
    roles swap.  ``LOCAL`` is a UDF-local variable (which may alias any
    vertex id and is therefore conservatively foreign), ``CONSTANT`` a
    literal, ``UNKNOWN`` anything else.
    """

    SRC = "src"
    DST = "dst"
    LOCAL = "local"
    CONSTANT = "constant"
    UNKNOWN = "unknown"


@dataclass
class Access:
    """One access to (potentially) shared state inside a UDF."""

    node: ast.Node
    kind: AccessKind
    target_kind: TargetKind
    base: str  # vector/scalar name, or the queue name for updates
    rendered: str  # e.g. "dist[dst]", "done", "priority(pq)"
    span: Span
    index_name: str | None = None
    provenance: IndexProvenance = IndexProvenance.UNKNOWN
    #: whether the index is the loop-owned parameter under the analysis
    #: direction (thread-owned, hence race-free)
    owned: bool = False
    #: must-write (executes unconditionally) vs may-write (guarded or
    #: inside a loop)
    must: bool = True
    #: guard expressions the access sits under, outermost first
    guards: tuple[ast.Expr, ...] = ()
    #: write guarded by a comparison against its own target (the
    #: A*/Bellman-Ford benign test-and-set idiom)
    guarded_monotonic: bool = False
    #: scalar write of a compile-time literal (idempotent)
    constant_store: bool = False
    #: True for writes to UDF-local variables (never shared)
    is_local: bool = False
    #: the priority-update descriptor, for PRIORITY_UPDATE accesses
    update: PriorityUpdate | None = None

    def to_json(self) -> dict:
        return {
            "kind": self.kind.value,
            "target": self.target_kind.value,
            "base": self.base,
            "rendered": self.rendered,
            "index": self.index_name,
            "provenance": self.provenance.value,
            "owned": self.owned,
            "must": self.must,
            "guarded_monotonic": self.guarded_monotonic,
            "line": self.span.line,
        }


@dataclass
class DefUseChains:
    """Per-variable definition and use sites (by source line) in one UDF."""

    defs: dict[str, list[int]] = field(default_factory=dict)
    uses: dict[str, list[int]] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            name: {"defs": self.defs.get(name, []), "uses": self.uses.get(name, [])}
            for name in sorted(set(self.defs) | set(self.uses))
        }


@dataclass
class UDFEffectSummary:
    """The full effect summary of one UDF under one traversal direction."""

    udf_name: str
    direction: str
    parameters: list[str]
    src_param: str
    dst_param: str
    owned_param: str
    foreign_param: str
    local_names: set[str]
    #: write-side accesses in classification-walk order (statement order)
    accesses: list[Access] = field(default_factory=list)
    #: read-side accesses in pre-order walk order
    reads: list[Access] = field(default_factory=list)
    def_use: DefUseChains = field(default_factory=DefUseChains)

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    @property
    def write_accesses(self) -> list[Access]:
        """Shared-state writes (locals excluded), in walk order."""
        return [
            a for a in self.accesses if a.kind.writes and not a.is_local
        ]

    @property
    def priority_updates(self) -> list[Access]:
        return [
            a for a in self.accesses if a.kind is AccessKind.PRIORITY_UPDATE
        ]

    def vector_writes(self, index_name: str) -> list[str]:
        """Vector names written at exactly ``index_name`` (walk order,
        duplicates preserved) — the dependence analysis's projection."""
        return [
            a.base
            for a in self.accesses
            if a.kind is AccessKind.WRITE
            and a.target_kind is TargetKind.VECTOR
            and a.index_name == index_name
        ]

    def read_set(self) -> set[str]:
        """Vector names read anywhere in the UDF."""
        return {
            a.base
            for a in self.reads
            if a.target_kind is TargetKind.VECTOR
        }

    def write_set(self) -> set[str]:
        """Vector names written anywhere (priority targets excluded)."""
        return {
            a.base
            for a in self.write_accesses
            if a.target_kind is TargetKind.VECTOR
        }

    def scalar_write_set(self) -> set[str]:
        return {
            a.base
            for a in self.write_accesses
            if a.target_kind is TargetKind.SCALAR
        }

    def to_json(self) -> dict:
        return {
            "udf": self.udf_name,
            "direction": self.direction,
            "parameters": list(self.parameters),
            "owned_param": self.owned_param,
            "reads": sorted(self.read_set()),
            "writes": sorted(self.write_set()),
            "scalar_writes": sorted(self.scalar_write_set()),
            "accesses": [a.to_json() for a in self.write_accesses],
            "def_use": self.def_use.to_json(),
        }


@dataclass
class QueueInfo:
    """Construction-time metadata of one priority queue."""

    name: str
    #: "lower_first" or "higher_first" (the processing order)
    order: str | None = None
    #: the property vector the queue tracks priorities in
    priority_vector: str | None = None
    allow_coarsening: bool | None = None
    span: Span = field(default_factory=Span)

    def to_json(self) -> dict:
        return {
            "queue": self.name,
            "order": self.order,
            "priority_vector": self.priority_vector,
            "allow_coarsening": self.allow_coarsening,
        }


@dataclass
class ProgramEffectSummary:
    """Effect summaries for every apply-site UDF of one program, plus the
    program-level structure fusion-safety and the sanitizer need."""

    queues: dict[str, QueueInfo] = field(default_factory=dict)
    udfs: dict[str, UDFEffectSummary] = field(default_factory=dict)
    #: monotonicity verdicts, one per priority update (and per unguarded
    #: direct priority-vector write); see effects.monotonicity
    monotonicity: list = field(default_factory=list)
    #: name of the recognized ordered loop's UDF, if any
    loop_udf: str | None = None
    #: the ordered loop's queue, if recognized
    loop_queue: str | None = None
    has_ordered_loop: bool = False
    uses_extern_processing: bool = False
    direction: str = "SparsePush"

    def queue_vector(self, queue_name: str) -> str | None:
        info = self.queues.get(queue_name)
        return info.priority_vector if info is not None else None

    # ------------------------------------------------------------------
    # Runtime projection (embedded in generated modules for the sanitizer)
    # ------------------------------------------------------------------
    def runtime_summary(self) -> dict:
        """Per-UDF read/write/racy sets with priority-queue effects folded
        onto the queue's concrete priority vector — the contract the
        schedule sanitizer checks dynamic accesses against."""
        out: dict[str, dict] = {}
        for name, udf in self.udfs.items():
            reads = set(udf.read_set())
            writes = set(udf.write_set())
            racy: set[str] = set()
            write_index: dict[str, set[str]] = {}
            for access in udf.write_accesses:
                if access.target_kind is TargetKind.VECTOR:
                    write_index.setdefault(access.base, set()).add(
                        access.provenance.value
                    )
                    if not access.owned and not access.guarded_monotonic:
                        racy.add(access.base)
                elif access.target_kind is TargetKind.QUEUE:
                    vector = self.queue_vector(access.base)
                    folded = (
                        vector
                        if vector is not None
                        else f"priority({access.base})"
                    )
                    # The update both reads the old priority and writes the
                    # new one.
                    reads.add(folded)
                    writes.add(folded)
                    if access.update is not None and isinstance(
                        access.update.vertex_arg, ast.Name
                    ):
                        write_index.setdefault(folded, set()).add(
                            access.provenance.value
                        )
            out[name] = {
                "reads": sorted(reads),
                "writes": sorted(writes),
                "racy": sorted(racy),
                "write_index": {
                    k: sorted(v) for k, v in sorted(write_index.items())
                },
            }
        return out

    def to_json(self) -> dict:
        return {
            "direction": self.direction,
            "queues": {
                name: info.to_json() for name, info in sorted(self.queues.items())
            },
            "ordered_loop": {
                "recognized": self.has_ordered_loop,
                "udf": self.loop_udf,
                "queue": self.loop_queue,
                "extern_processing": self.uses_extern_processing,
            },
            "udfs": {
                name: udf.to_json() for name, udf in sorted(self.udfs.items())
            },
            "monotonicity": [m.to_json() for m in self.monotonicity],
        }
