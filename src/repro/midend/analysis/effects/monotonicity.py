"""Monotonicity proofs for priority updates (relaxed-schedule admissibility).

The paper's ordered runtime may process a bucket *out of order* under
``eager_with_fusion``: when the freshly relaxed vertices land back in the
current bucket, the fused loop drains them locally without re-consulting the
global bucket structure.  That is only sound when every priority update moves
priorities strictly toward the processing front — monotone-decreasing for a
``lower_first`` queue, monotone-increasing for ``higher_first`` — because
then a vertex processed "early" can never have its priority improved past
work that already ran.

This module proves that property per update site:

``updatePriorityMin``
    monotone-decreasing by construction (the min of old and new).
``updatePriorityMax``
    monotone-increasing by construction.
``updatePrioritySum``
    direction of the constant difference: a negative constant decreases,
    a positive constant increases, a non-constant difference is
    **non-monotone** (the sign may flip between invocations).
direct stores to a queue's priority vector
    monotone only when guarded by a comparison against the stored target
    (the test-and-set idiom); the guard's operator gives the direction.
    An unguarded store is non-monotone.

A verdict is *admissible* for its queue when the proven direction matches
the queue's processing order.  Inadmissible verdicts gate the fused
schedules: the midend raises ``M001`` rather than running an unsound
out-of-order drain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ....lang.span import Span
from ..udf_analysis import _constant_value
from .model import AccessKind, QueueInfo, TargetKind, UDFEffectSummary

__all__ = ["Monotonicity", "MonotonicityVerdict", "classify_udf_monotonicity"]


class Monotonicity(enum.Enum):
    DECREASING = "monotone-decreasing"
    INCREASING = "monotone-increasing"
    NON_MONOTONE = "non-monotone"


#: queue processing order -> the update direction it admits
_ADMITS = {"lower_first": Monotonicity.DECREASING,
           "higher_first": Monotonicity.INCREASING}


@dataclass
class MonotonicityVerdict:
    """The proof result for one priority-update (or direct-write) site."""

    udf_name: str
    queue_name: str | None  # None when the owning queue is unknown
    site: str  # rendered site, e.g. "updatePriorityMin(dst, ...)"
    verdict: Monotonicity
    #: whether the proven direction matches the queue's processing order
    admissible: bool
    reason: str
    span: Span = field(default_factory=Span)
    #: True when the same site is already an unordered-racy write: the race
    #: analysis reports it as R001, so M001 does not double-report it
    racy_site: bool = False

    def to_json(self) -> dict:
        return {
            "udf": self.udf_name,
            "queue": self.queue_name,
            "site": self.site,
            "verdict": self.verdict.value,
            "admissible": self.admissible,
            "reason": self.reason,
            "line": self.span.line,
        }


def classify_udf_monotonicity(
    summary: UDFEffectSummary,
    queues: dict[str, QueueInfo],
) -> list[MonotonicityVerdict]:
    """One verdict per priority update and per direct priority-vector store."""
    verdicts: list[MonotonicityVerdict] = []
    vector_owner = {
        info.priority_vector: info
        for info in queues.values()
        if info.priority_vector is not None
    }
    for access in summary.accesses:
        if access.kind is AccessKind.PRIORITY_UPDATE and access.update is not None:
            queue = queues.get(access.base)
            verdicts.append(
                _classify_update(summary.udf_name, access, queue)
            )
        elif (
            access.kind is AccessKind.WRITE
            and access.target_kind is TargetKind.VECTOR
            and access.base in vector_owner
        ):
            verdicts.append(
                _classify_direct_write(
                    summary.udf_name, access, vector_owner[access.base]
                )
            )
    return verdicts


def _admissible(verdict: Monotonicity, queue: QueueInfo | None) -> bool:
    if queue is None or queue.order not in _ADMITS:
        return verdict is not Monotonicity.NON_MONOTONE
    return verdict is _ADMITS[queue.order]


def _classify_update(udf_name, access, queue) -> MonotonicityVerdict:
    update = access.update
    if update.op == "min":
        verdict = Monotonicity.DECREASING
        reason = "updatePriorityMin stores min(old, new): never increases"
    elif update.op == "max":
        verdict = Monotonicity.INCREASING
        reason = "updatePriorityMax stores max(old, new): never decreases"
    else:  # sum
        constant = _constant_value(update.value_arg)
        if constant is None:
            verdict = Monotonicity.NON_MONOTONE
            reason = (
                "updatePrioritySum with a non-constant difference: the "
                "sign may differ between invocations"
            )
        elif constant < 0:
            verdict = Monotonicity.DECREASING
            reason = f"updatePrioritySum adds the constant {constant} (< 0)"
        elif constant > 0:
            verdict = Monotonicity.INCREASING
            reason = f"updatePrioritySum adds the constant {constant} (> 0)"
        else:
            verdict = Monotonicity.NON_MONOTONE
            reason = "updatePrioritySum adds the constant 0: a no-op update"
    return MonotonicityVerdict(
        udf_name=udf_name,
        queue_name=update.queue_name,
        site=access.rendered,
        verdict=verdict,
        admissible=_admissible(verdict, queue),
        reason=reason,
        span=access.span,
    )


def _classify_direct_write(udf_name, access, queue) -> MonotonicityVerdict:
    if not access.guarded_monotonic:
        verdict = Monotonicity.NON_MONOTONE
        reason = (
            f"unguarded store to the priority vector {access.base!r}: the "
            f"stored value is unconstrained relative to the old priority"
        )
    else:
        verdict, reason = _guard_direction(access)
    return MonotonicityVerdict(
        udf_name=udf_name,
        queue_name=queue.name,
        site=access.rendered,
        verdict=verdict,
        admissible=_admissible(verdict, queue),
        reason=reason,
        span=access.span,
        racy_site=not access.owned and not access.guarded_monotonic,
    )


def _guard_direction(access) -> tuple[Monotonicity, str]:
    """Direction of a guarded store from its comparison's operator and the
    side the target read sits on (``new < pv[v]`` stores a smaller value)."""
    from .analysis import _monotonic_guard, _same_indexed_read

    target = access.node.target
    guard = _monotonic_guard(
        list(access.guards), access.base, target.index
    )
    if guard is None:  # pragma: no cover - guarded_monotonic implies a guard
        return Monotonicity.NON_MONOTONE, "guard comparison not recoverable"
    target_on_right = _same_indexed_read(guard.right, access.base, target.index)
    operator = guard.operator
    if operator in ("==", "!="):
        return (
            Monotonicity.NON_MONOTONE,
            f"guard {operator!r} constrains equality, not direction",
        )
    # Normalize so the old-value read is on the right: `new OP pv[v]`.
    if not target_on_right:
        operator = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[operator]
    if operator in ("<", "<="):
        return (
            Monotonicity.DECREASING,
            "store guarded by a comparison proving the new value is below "
            "the old priority",
        )
    return (
        Monotonicity.INCREASING,
        "store guarded by a comparison proving the new value is above "
        "the old priority",
    )
