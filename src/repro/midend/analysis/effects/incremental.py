"""Incremental-recomputation eligibility (the ``I001`` gate).

Resuming a converged run after graph mutations is only sound for programs
whose ordered loop computes an *extremal fixpoint*: every priority update
must be a min (``lower_first``) or max (``higher_first``) combine, so that
the converged vector is the unique fixpoint of the relaxation operator and
a re-seeded queue converges back to it from any sound over-approximation.

Programs that mutate priorities by *differences* — ``updatePrioritySum``,
the k-core peel — are not resumable this way: their converged vector
encodes the *history* of the run (how many decrements fired), not a
fixpoint of a monotone combine, so seeding from it after a mutation is
meaningless.  The same holds for extern bucket processors (the runtime
cannot see what they do) and for non-monotone or inadmissible updates
(PR-5's ``M001`` analysis already proves those unsafe to reorder, and a
resume is nothing but a reordering of the tail of the run).

:func:`classify_incremental_eligibility` projects a
:class:`ProgramEffectSummary` onto an :class:`IncrementalEligibility`
verdict; :func:`detect_relaxation_shape` additionally recognizes the two
canonical relaxation bodies the interpreted incremental engine implements
(``vec[src] + weight`` under min, ``min(vec[src], weight)`` under max),
which the CLI requires before routing a DSL program onto the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ....lang import ast_nodes as ast
from .model import ProgramEffectSummary
from .monotonicity import Monotonicity

__all__ = [
    "IncrementalEligibility",
    "classify_incremental_eligibility",
    "detect_relaxation_shape",
]


@dataclass
class IncrementalEligibility:
    """Whether a program's ordered loop can be resumed after mutations."""

    eligible: bool
    #: "min" or "max" when eligible — the extremal combine direction
    kind: str | None
    loop_udf: str | None
    loop_queue: str | None
    #: every disqualifying fact (empty when eligible)
    reasons: list[str] = field(default_factory=list)
    #: canonical relaxation body, when an AST was available to inspect:
    #: "dist_plus_weight", "min_width_weight", or "unrecognized"
    relaxation_shape: str | None = None

    def to_json(self) -> dict:
        return {
            "eligible": self.eligible,
            "kind": self.kind,
            "udf": self.loop_udf,
            "queue": self.loop_queue,
            "reasons": list(self.reasons),
            "relaxation_shape": self.relaxation_shape,
        }


#: update op -> (kind, the queue order that makes the combine extremal)
_EXTREMAL_OPS = {"min": ("min", "lower_first"), "max": ("max", "higher_first")}


def classify_incremental_eligibility(
    summary: ProgramEffectSummary,
    udf_decl: ast.FuncDecl | None = None,
) -> IncrementalEligibility:
    """One verdict per program: can a converged run be resumed?

    ``udf_decl`` (the ordered loop's UDF, when the caller has the AST)
    additionally enables the relaxation-shape check the CLI path needs.
    """
    reasons: list[str] = []
    kind: str | None = None

    if not summary.has_ordered_loop:
        reasons.append(
            "no recognized ordered loop: there is no converged priority "
            "vector to resume from"
        )
    if summary.uses_extern_processing:
        reasons.append(
            "the ordered loop hands buckets to an extern processor; its "
            "effects are invisible to the resume analysis"
        )

    # Every priority-update site must be an extremal (min/max) combine in
    # the queue's own direction.  Sum updates encode run history, not a
    # fixpoint, and non-monotone/inadmissible sites are unsafe to reorder.
    for verdict in summary.monotonicity:
        if verdict.verdict is Monotonicity.NON_MONOTONE:
            reasons.append(
                f"{verdict.site}: non-monotone priority update "
                f"({verdict.reason})"
            )
        elif not verdict.admissible:
            reasons.append(
                f"{verdict.site}: update direction does not match the "
                f"queue's processing order ({verdict.reason})"
            )

    loop_udf = summary.udfs.get(summary.loop_udf or "")
    if summary.has_ordered_loop and loop_udf is None:
        reasons.append(
            f"ordered loop UDF {summary.loop_udf!r} has no effect summary"
        )
    if loop_udf is not None:
        updates = loop_udf.priority_updates
        if not updates:
            reasons.append(
                f"UDF {summary.loop_udf!r} performs no priority update; "
                f"nothing for a resumed queue to re-drive"
            )
        for access in updates:
            update = access.update
            if update is None:  # pragma: no cover - updates always carry one
                continue
            if update.op not in _EXTREMAL_OPS:
                reasons.append(
                    f"{access.rendered}: updatePrioritySum mutates the "
                    f"priority by a difference; the converged vector "
                    f"records run history, not an extremal fixpoint, so "
                    f"it cannot seed a resume"
                )
                continue
            op_kind, required_order = _EXTREMAL_OPS[update.op]
            queue = summary.queues.get(update.queue_name)
            if queue is not None and queue.order not in (None, required_order):
                reasons.append(
                    f"{access.rendered}: {update.op}-combine on a "
                    f"{queue.order} queue is not an extremal fixpoint"
                )
                continue
            if kind is not None and kind != op_kind:
                reasons.append(
                    f"{access.rendered}: mixes min and max combines in "
                    f"one ordered loop"
                )
            kind = kind or op_kind

    shape: str | None = None
    if udf_decl is not None and kind is not None and not reasons:
        shape = detect_relaxation_shape(udf_decl, summary, kind)

    eligible = not reasons and kind is not None
    return IncrementalEligibility(
        eligible=eligible,
        kind=kind if eligible else None,
        loop_udf=summary.loop_udf,
        loop_queue=summary.loop_queue,
        reasons=reasons,
        relaxation_shape=shape,
    )


def detect_relaxation_shape(
    udf: ast.FuncDecl,
    summary: ProgramEffectSummary,
    kind: str,
) -> str:
    """Match the loop UDF's update value against the canonical bodies.

    ``dist_plus_weight``
        min-combine of ``vec[src] + weight`` — the shortest-path family.
    ``min_width_weight``
        max-combine of ``min(vec[src], weight)`` — widest path.

    Anything else is ``"unrecognized"``: eligible in principle, but the
    interpreted incremental engine has no relaxer for it.
    """
    loop_summary = summary.udfs.get(udf.name)
    if loop_summary is None:
        return "unrecognized"
    src_param = loop_summary.src_param
    vector = summary.queue_vector(summary.loop_queue or "")
    weight_params = {
        name for name, _ in udf.parameters
    } - {src_param, loop_summary.dst_param}

    definitions = _single_assignments(udf)
    for access in loop_summary.priority_updates:
        update = access.update
        if update is None:
            continue
        value = _resolve(update.value_arg, definitions)
        if kind == "min" and _is_dist_plus_weight(
            value, vector, src_param, weight_params
        ):
            return "dist_plus_weight"
        if kind == "max" and _is_min_width_weight(
            value, vector, src_param, weight_params
        ):
            return "min_width_weight"
    return "unrecognized"


def _single_assignments(udf: ast.FuncDecl) -> dict[str, ast.Expr]:
    """Local name -> initializer, for names defined exactly once."""
    counts: dict[str, int] = {}
    init: dict[str, ast.Expr] = {}
    for node in ast.walk(udf):
        if isinstance(node, ast.VarDecl) and node.initializer is not None:
            counts[node.name] = counts.get(node.name, 0) + 1
            init[node.name] = node.initializer
        elif isinstance(node, ast.Assign) and isinstance(node.target, ast.Name):
            counts[node.target.identifier] = (
                counts.get(node.target.identifier, 0) + 1
            )
    return {name: init[name] for name, n in counts.items() if n == 1 and name in init}


def _resolve(expr: ast.Expr, definitions: dict[str, ast.Expr]) -> ast.Expr:
    seen: set[str] = set()
    while isinstance(expr, ast.Name) and expr.identifier in definitions:
        if expr.identifier in seen:  # pragma: no cover - cycle guard
            break
        seen.add(expr.identifier)
        expr = definitions[expr.identifier]
    return expr


def _reads_vector_at(expr: ast.Expr, vector: str | None, index: str) -> bool:
    return (
        isinstance(expr, ast.Index)
        and isinstance(expr.base, ast.Name)
        and expr.base.identifier == vector
        and isinstance(expr.index, ast.Name)
        and expr.index.identifier == index
    )


def _is_weight(expr: ast.Expr, weight_params: set[str]) -> bool:
    return isinstance(expr, ast.Name) and expr.identifier in weight_params


def _is_dist_plus_weight(expr, vector, src, weight_params) -> bool:
    if not (isinstance(expr, ast.BinaryOp) and expr.operator == "+"):
        return False
    left, right = expr.left, expr.right
    return (
        _reads_vector_at(left, vector, src) and _is_weight(right, weight_params)
    ) or (
        _reads_vector_at(right, vector, src) and _is_weight(left, weight_params)
    )


def _is_min_width_weight(expr, vector, src, weight_params) -> bool:
    if not (
        isinstance(expr, ast.Call)
        and expr.function == "min"
        and len(expr.arguments) == 2
    ):
        return False
    first, second = expr.arguments
    return (
        _reads_vector_at(first, vector, src) and _is_weight(second, weight_params)
    ) or (
        _reads_vector_at(second, vector, src) and _is_weight(first, weight_params)
    )
