"""Whole-program effect analysis over the midend IR.

The package computes, per UDF and per apply operator: def-use chains,
direction-aware read/write sets on every property vector, shared scalar and
priority queue (may- vs must-write, index provenance), a monotonicity
verdict per priority update gating relaxed-schedule admissibility (``M001``),
and a pairwise fusion-safety relation between programs.  The race and
dependence analyses are thin consumers of these summaries; the runtime
schedule sanitizer checks real executions against them.
"""

from .analysis import (
    analyze_program_effects,
    extract_queue_info,
    is_guarded_monotonic,
    summarize_udf,
)
from .fusion import FusionVerdict, check_fusion_safety, fusion_matrix
from .incremental import (
    IncrementalEligibility,
    classify_incremental_eligibility,
    detect_relaxation_shape,
)
from .model import (
    Access,
    AccessKind,
    DefUseChains,
    IndexProvenance,
    ProgramEffectSummary,
    QueueInfo,
    TargetKind,
    UDFEffectSummary,
)
from .monotonicity import (
    Monotonicity,
    MonotonicityVerdict,
    classify_udf_monotonicity,
)

__all__ = [
    "Access",
    "AccessKind",
    "DefUseChains",
    "FusionVerdict",
    "IncrementalEligibility",
    "IndexProvenance",
    "Monotonicity",
    "MonotonicityVerdict",
    "ProgramEffectSummary",
    "QueueInfo",
    "TargetKind",
    "UDFEffectSummary",
    "analyze_program_effects",
    "check_fusion_safety",
    "classify_incremental_eligibility",
    "classify_udf_monotonicity",
    "detect_relaxation_shape",
    "extract_queue_info",
    "fusion_matrix",
    "is_guarded_monotonic",
    "summarize_udf",
]
