"""The effect-summary construction walk.

:func:`summarize_udf` turns one edge UDF into a
:class:`~repro.midend.analysis.effects.model.UDFEffectSummary`: a guard-aware
statement-order walk collects every write to potentially-shared state (the
same walk order the race classification historically used), a pre-order
expression walk collects the reads, and a name-resolution pass builds the
def-use chains of the UDF's locals.

:func:`analyze_program_effects` lifts that to the whole program: it extracts
the construction-time metadata of every priority queue (processing order and
the concrete priority vector), summarizes every apply-site UDF under the
active traversal direction, and attaches the monotonicity verdicts.
"""

from __future__ import annotations

from ....lang import ast_nodes as ast
from ....lang.span import Span
from ....lang.types import PriorityQueueType
from ...schedule import Schedule
from ..udf_analysis import PriorityUpdate, find_priority_updates
from .model import (
    Access,
    AccessKind,
    DefUseChains,
    IndexProvenance,
    ProgramEffectSummary,
    QueueInfo,
    TargetKind,
    UDFEffectSummary,
)

__all__ = [
    "summarize_udf",
    "analyze_program_effects",
    "extract_queue_info",
    "is_guarded_monotonic",
]


# ----------------------------------------------------------------------
# Guarded-monotonic recognition (shared with the race analysis)
# ----------------------------------------------------------------------
def is_guarded_monotonic(
    guards: list[ast.Expr],
    base_name: str,
    index: ast.Expr,
) -> bool:
    """Whether a write sits under a comparison against its own target.

    This recognizes the A*/Bellman-Ford idiom::

        if new_dist < dist[dst]
            dist[dst] = new_dist;

    The store may lose a concurrent smaller value, but the race is benign:
    monotone relaxation re-delivers it (and in the paper's programs a
    priority update follows that re-enqueues the vertex).
    """
    return _monotonic_guard(guards, base_name, index) is not None


def _monotonic_guard(
    guards: list[ast.Expr],
    base_name: str,
    index: ast.Expr,
) -> ast.BinaryOp | None:
    """The guard comparison reading the write's own target, if any."""
    for guard in guards:
        for node in ast.walk(guard):
            if not isinstance(node, ast.BinaryOp):
                continue
            if node.operator not in ("<", ">", "<=", ">=", "!=", "=="):
                continue
            for side in (node.left, node.right):
                if _same_indexed_read(side, base_name, index):
                    return node
    return None


def _same_indexed_read(expr: ast.Expr, base_name: str, index: ast.Expr) -> bool:
    return (
        isinstance(expr, ast.Index)
        and isinstance(expr.base, ast.Name)
        and expr.base.identifier == base_name
        and _same_simple_expr(expr.index, index)
    )


def _same_simple_expr(left: ast.Expr, right: ast.Expr) -> bool:
    if isinstance(left, ast.Name) and isinstance(right, ast.Name):
        return left.identifier == right.identifier
    if isinstance(left, ast.IntLiteral) and isinstance(right, ast.IntLiteral):
        return left.value == right.value
    return False


# ----------------------------------------------------------------------
# Per-UDF summary
# ----------------------------------------------------------------------
def summarize_udf(
    udf: ast.FuncDecl,
    queue_names: set[str],
    direction: str = "SparsePush",
    source_file: str | None = None,
) -> UDFEffectSummary:
    """Build the effect summary of one edge UDF under one direction.

    ``udf`` has parameters ``(src, dst[, weight])``.  Under push-direction
    traversal the parallel loop owns sources; under pull it owns
    destinations.
    """
    parameters = [name for name, _ in udf.parameters]
    src_param = parameters[0] if parameters else "src"
    dst_param = parameters[1] if len(parameters) > 1 else "dst"
    if direction == "DensePull":
        owned_param, foreign_param = dst_param, src_param
    else:
        owned_param, foreign_param = src_param, dst_param

    local_names = set(parameters)
    for node in ast.walk(udf):
        if isinstance(node, ast.VarDecl):
            local_names.add(node.name)

    summary = UDFEffectSummary(
        udf_name=udf.name,
        direction=direction,
        parameters=parameters,
        src_param=src_param,
        dst_param=dst_param,
        owned_param=owned_param,
        foreign_param=foreign_param,
        local_names=local_names,
    )
    updates = {id(u.call): u for u in find_priority_updates(udf, queue_names)}

    walker = _EffectWalker(summary, updates, source_file)
    walker.walk_body(udf.body, guards=[], loop_depth=0)
    summary.reads = _collect_reads(udf, summary, walker.write_index_ids, source_file)
    summary.def_use = _collect_def_use(udf, local_names)
    return summary


class _EffectWalker:
    """Statement-order walk collecting the write-side :class:`Access` list.

    Mirrors the historical race-classification walk exactly: ``then`` bodies
    under ``guards + [condition]``, ``else`` bodies under ``guards``, loop
    bodies under the same guards, priority updates at their ``ExprStmt``.
    """

    def __init__(
        self,
        summary: UDFEffectSummary,
        updates: dict[int, PriorityUpdate],
        source_file: str | None,
    ):
        self.summary = summary
        self.updates = updates
        self.source_file = source_file
        #: ids of Index nodes that are write targets (excluded from reads)
        self.write_index_ids: set[int] = set()

    def walk_body(
        self, body: list[ast.Stmt], guards: list[ast.Expr], loop_depth: int
    ) -> None:
        for statement in body:
            if isinstance(statement, ast.If):
                inner = guards + [statement.condition]
                self.walk_body(statement.then_body, inner, loop_depth)
                self.walk_body(statement.else_body, guards, loop_depth)
            elif isinstance(statement, (ast.While, ast.For)):
                self.walk_body(statement.body, guards, loop_depth + 1)
            elif isinstance(statement, ast.ExprStmt):
                update = self.updates.get(id(statement.expression))
                if update is not None:
                    self._record_update(update, guards, loop_depth)
            elif isinstance(statement, ast.Assign):
                self._record_assign(statement, guards, loop_depth)

    # -- update operators ------------------------------------------------
    def _record_update(
        self, update: PriorityUpdate, guards: list[ast.Expr], loop_depth: int
    ) -> None:
        vertex = update.vertex_arg
        vertex_name = vertex.identifier if isinstance(vertex, ast.Name) else None
        provenance = self._provenance(vertex)
        self.summary.accesses.append(
            Access(
                node=update.call,
                kind=AccessKind.PRIORITY_UPDATE,
                target_kind=TargetKind.QUEUE,
                base=update.queue_name,
                rendered=f"priority({update.queue_name})",
                span=Span.from_node(update.call, file=self.source_file),
                index_name=vertex_name,
                provenance=provenance,
                owned=vertex_name == self.summary.owned_param,
                must=not guards and loop_depth == 0,
                guards=tuple(guards),
                update=update,
            )
        )

    # -- plain assignments ------------------------------------------------
    def _record_assign(
        self, assign: ast.Assign, guards: list[ast.Expr], loop_depth: int
    ) -> None:
        target = assign.target
        span = Span.from_node(assign, file=self.source_file)
        must = not guards and loop_depth == 0

        if isinstance(target, ast.Name):
            name = target.identifier
            self.summary.accesses.append(
                Access(
                    node=assign,
                    kind=AccessKind.WRITE,
                    target_kind=TargetKind.SCALAR,
                    base=name,
                    rendered=name,
                    span=span,
                    must=must,
                    guards=tuple(guards),
                    constant_store=isinstance(
                        assign.value, (ast.IntLiteral, ast.BoolLiteral)
                    ),
                    is_local=name in self.summary.local_names,
                )
            )
            return

        if not isinstance(target, ast.Index):
            return  # not a shared-state write the model describes
        self.write_index_ids.add(id(target))
        base = target.base
        index = target.index
        base_name = base.identifier if isinstance(base, ast.Name) else "<expr>"
        index_name = index.identifier if isinstance(index, ast.Name) else None
        self.summary.accesses.append(
            Access(
                node=assign,
                kind=AccessKind.WRITE,
                target_kind=TargetKind.VECTOR,
                base=base_name,
                rendered=f"{base_name}[{index_name or '<expr>'}]",
                span=span,
                index_name=index_name,
                provenance=self._provenance(index),
                owned=index_name is not None
                and index_name == self.summary.owned_param,
                must=must,
                guards=tuple(guards),
                guarded_monotonic=is_guarded_monotonic(
                    list(guards), base_name, index
                ),
            )
        )

    # -- index provenance -------------------------------------------------
    def _provenance(self, index: ast.Expr) -> IndexProvenance:
        if isinstance(index, ast.Name):
            name = index.identifier
            if name == self.summary.src_param:
                return IndexProvenance.SRC
            if name == self.summary.dst_param:
                return IndexProvenance.DST
            if name in self.summary.local_names:
                return IndexProvenance.LOCAL
            return IndexProvenance.UNKNOWN
        if isinstance(index, ast.IntLiteral):
            return IndexProvenance.CONSTANT
        return IndexProvenance.UNKNOWN


def _collect_reads(
    udf: ast.FuncDecl,
    summary: UDFEffectSummary,
    write_index_ids: set[int],
    source_file: str | None,
) -> list[Access]:
    """Every vector read: an ``Index`` node that is not a write target."""
    walker = _EffectWalker(summary, {}, source_file)  # provenance helper only
    reads: list[Access] = []
    for node in ast.walk(udf):
        if not isinstance(node, ast.Index) or id(node) in write_index_ids:
            continue
        base = node.base
        if not isinstance(base, ast.Name):
            continue
        index = node.index
        index_name = index.identifier if isinstance(index, ast.Name) else None
        reads.append(
            Access(
                node=node,
                kind=AccessKind.READ,
                target_kind=TargetKind.VECTOR,
                base=base.identifier,
                rendered=f"{base.identifier}[{index_name or '<expr>'}]",
                span=Span.from_node(node, file=source_file),
                index_name=index_name,
                provenance=walker._provenance(index),
                owned=index_name is not None
                and index_name == summary.owned_param,
            )
        )
    return reads


def _collect_def_use(udf: ast.FuncDecl, local_names: set[str]) -> DefUseChains:
    """Def-use chains of the UDF's locals, keyed by name, as line lists."""
    chains = DefUseChains()
    def_name_ids: set[int] = set()
    for node in ast.walk(udf):
        if isinstance(node, ast.VarDecl) and node.name in local_names:
            chains.defs.setdefault(node.name, []).append(node.line)
        elif (
            isinstance(node, ast.Assign)
            and isinstance(node.target, ast.Name)
            and node.target.identifier in local_names
        ):
            chains.defs.setdefault(node.target.identifier, []).append(node.line)
            def_name_ids.add(id(node.target))
    for name, _ in udf.parameters:
        chains.defs.setdefault(name, []).append(udf.line)
    for node in ast.walk(udf):
        if (
            isinstance(node, ast.Name)
            and node.identifier in local_names
            and id(node) not in def_name_ids
        ):
            chains.uses.setdefault(node.identifier, []).append(node.line)
    return chains


# ----------------------------------------------------------------------
# Program-level summary
# ----------------------------------------------------------------------
def extract_queue_info(
    program: ast.Program,
    queue_names: set[str],
    source_file: str | None = None,
) -> dict[str, QueueInfo]:
    """Construction-time queue metadata from ``new priority_queue`` sites.

    The constructor signature is ``(allow_coarsening, order, priority_vector,
    start_vertex)``; the order string and the vector name are what the
    monotonicity and fusion analyses key on.
    """
    info = {name: QueueInfo(name=name) for name in queue_names}
    for func in program.functions:
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.target, ast.Name)
                and node.target.identifier in queue_names
                and isinstance(node.value, ast.New)
                and isinstance(node.value.type, PriorityQueueType)
            ):
                continue
            entry = info[node.target.identifier]
            arguments = node.value.arguments
            if arguments and isinstance(arguments[0], ast.BoolLiteral):
                entry.allow_coarsening = arguments[0].value
            if len(arguments) > 1 and isinstance(arguments[1], ast.StringLiteral):
                entry.order = arguments[1].value
            if len(arguments) > 2 and isinstance(arguments[2], ast.Name):
                entry.priority_vector = arguments[2].identifier
            entry.span = Span.from_node(node, file=source_file)
    return info


def _apply_site_udfs(program: ast.Program) -> list[str]:
    """UDF names referenced by apply-style call sites, in program order."""
    names: list[str] = []
    for func in program.functions:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.MethodCall)
                and node.method in ("applyUpdatePriority", "apply")
                and node.arguments
                and isinstance(node.arguments[0], ast.Name)
                and node.arguments[0].identifier not in names
            ):
                names.append(node.arguments[0].identifier)
    return names


def analyze_program_effects(
    program: ast.Program,
    schedule: Schedule,
    *,
    queue_names: set[str] | None = None,
    loop=None,
    source_file: str | None = None,
) -> ProgramEffectSummary:
    """Summarize every apply-site UDF and attach monotonicity verdicts.

    ``loop`` is the :class:`~repro.midend.analysis.loop_patterns
    .OrderedLoopInfo` when the caller already recognized it (the lowering
    pipeline); when omitted the loop is recognized here.
    """
    from .monotonicity import classify_udf_monotonicity

    if queue_names is None:
        queue_names = {
            const.name
            for const in program.constants
            if isinstance(const.declared_type, PriorityQueueType)
        }
    if source_file is None:
        source_file = program.source_file
    if loop is None:
        from ..loop_patterns import recognize_ordered_loop

        main = program.function("main")
        if main is not None:
            loop = recognize_ordered_loop(main, queue_names)

    summary = ProgramEffectSummary(
        queues=extract_queue_info(program, queue_names, source_file),
        direction=schedule.direction,
    )
    if loop is not None:
        summary.has_ordered_loop = True
        summary.loop_udf = loop.udf_name
        summary.loop_queue = loop.queue_name
        summary.uses_extern_processing = loop.extern_processor is not None

    for name in _apply_site_udfs(program):
        udf = program.function(name)
        if udf is None:
            continue  # unresolved symbol; the IR validator reports V001
        udf_summary = summarize_udf(
            udf, queue_names, schedule.direction, source_file
        )
        summary.udfs[name] = udf_summary
        summary.monotonicity.extend(
            classify_udf_monotonicity(udf_summary, summary.queues)
        )
    return summary
