"""Recognition of the ordered-processing while loop (Section 5.2).

The compiler looks for the pattern

    while (pq.finished() == false) [and (done == false)]
        var bucket : vertexset{V} = pq.dequeueReadySet();
        [ if <stop-condition>  done = true;  else ]
        #label# edges.from(bucket).applyUpdatePriority(udf);
        [ end ]
        delete bucket;
    end

and verifies the dequeued bucket is used *only* by the apply statement
("the analysis checks that there is no other use of the generated vertexset
(bucket) except for the applyUpdatePriority operator, ensuring correctness").
When the pattern matches, the eager schedules may replace the whole loop
with the ordered processing operator; the optional early-exit form carries
its stop condition along (PPSP / A*).

A variant with an extern bucket processor (``processBucket(bucket)``) is
recognized for bookkeeping but marked ineligible for the eager transform.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...lang import ast_nodes as ast

__all__ = ["OrderedLoopInfo", "recognize_ordered_loop"]


@dataclass
class OrderedLoopInfo:
    """Description of one recognized ordered-processing loop."""

    while_stmt: ast.While
    bucket_name: str
    queue_name: str
    label: str | None
    udf_name: str | None  # None for the extern-processor variant
    edgeset_name: str | None
    stop_condition: ast.Expr | None
    done_variable: str | None
    extern_processor: str | None

    @property
    def eager_eligible(self) -> bool:
        """Whether the eager transform may replace this loop."""
        return self.udf_name is not None


def recognize_ordered_loop(
    main: ast.FuncDecl, queue_names: set[str]
) -> OrderedLoopInfo | None:
    """Find the first ordered-processing loop in ``main`` (or ``None``)."""
    for statement in _all_statements(main.body):
        if isinstance(statement, ast.While):
            info = _match_loop(statement, main, queue_names)
            if info is not None:
                return info
    return None


def _all_statements(body: list[ast.Stmt]):
    for statement in body:
        yield statement
        if isinstance(statement, ast.While):
            yield from _all_statements(statement.body)
        elif isinstance(statement, ast.If):
            yield from _all_statements(statement.then_body)
            yield from _all_statements(statement.else_body)
        elif isinstance(statement, ast.For):
            yield from _all_statements(statement.body)


def _match_loop(
    loop: ast.While, main: ast.FuncDecl, queue_names: set[str]
) -> OrderedLoopInfo | None:
    condition = _match_condition(loop.condition, queue_names)
    if condition is None:
        return None
    queue_name, done_variable = condition

    body = list(loop.body)
    if not body or not isinstance(body[0], ast.VarDecl):
        return None
    bucket_decl = body[0]
    if not _is_dequeue_call(bucket_decl.initializer, queue_name):
        return None
    bucket_name = bucket_decl.name

    # Optional trailing `delete bucket;`
    if body and isinstance(body[-1], ast.Delete) and body[-1].name == bucket_name:
        middle = body[1:-1]
    else:
        middle = body[1:]
    if len(middle) != 1:
        return None
    core = middle[0]

    stop_condition: ast.Expr | None = None
    apply_stmt: ast.Stmt | None = None
    if isinstance(core, ast.If) and done_variable is not None:
        # Early-exit form: then-branch sets the done flag, else-branch applies.
        if not _sets_done_flag(core.then_body, done_variable):
            return None
        if len(core.else_body) != 1:
            return None
        stop_condition = core.condition
        apply_stmt = core.else_body[0]
    else:
        apply_stmt = core

    if not isinstance(apply_stmt, ast.ExprStmt):
        return None
    label = apply_stmt.label
    expression = apply_stmt.expression

    udf_name = None
    edgeset_name = None
    extern_processor = None
    if isinstance(expression, ast.MethodCall) and expression.method in (
        "applyUpdatePriority",
        "apply",
    ):
        chain = _match_apply_chain(expression, bucket_name)
        if chain is None:
            return None
        edgeset_name, udf_name = chain
    elif isinstance(expression, ast.Call) and len(expression.arguments) == 1:
        argument = expression.arguments[0]
        if not (isinstance(argument, ast.Name) and argument.identifier == bucket_name):
            return None
        extern_processor = expression.function
    else:
        return None

    if _bucket_used_elsewhere(main, loop, apply_stmt, bucket_name):
        return None

    return OrderedLoopInfo(
        while_stmt=loop,
        bucket_name=bucket_name,
        queue_name=queue_name,
        label=label,
        udf_name=udf_name,
        edgeset_name=edgeset_name,
        stop_condition=stop_condition,
        done_variable=done_variable,
        extern_processor=extern_processor,
    )


def _match_condition(
    condition: ast.Expr, queue_names: set[str]
) -> tuple[str, str | None] | None:
    """Match ``pq.finished() == false`` optionally and-ed with
    ``done == false``; returns (queue name, done variable or None)."""
    if isinstance(condition, ast.BinaryOp) and condition.operator == "and":
        left = _match_finished_check(condition.left, queue_names)
        if left is not None:
            done = _match_done_check(condition.right)
            if done is not None:
                return left, done
        right = _match_finished_check(condition.right, queue_names)
        if right is not None:
            done = _match_done_check(condition.left)
            if done is not None:
                return right, done
        return None
    queue = _match_finished_check(condition, queue_names)
    if queue is not None:
        return queue, None
    return None


def _match_finished_check(expression: ast.Expr, queue_names: set[str]) -> str | None:
    # `pq.finished() == false` or `not pq.finished()`
    if (
        isinstance(expression, ast.BinaryOp)
        and expression.operator == "=="
        and isinstance(expression.right, ast.BoolLiteral)
        and expression.right.value is False
    ):
        expression = expression.left
    elif isinstance(expression, ast.UnaryOp) and expression.operator == "not":
        expression = expression.operand
    else:
        return None
    if (
        isinstance(expression, ast.MethodCall)
        and expression.method == "finished"
        and isinstance(expression.receiver, ast.Name)
        and expression.receiver.identifier in queue_names
    ):
        return expression.receiver.identifier
    return None


def _match_done_check(expression: ast.Expr) -> str | None:
    # `done == false` or `not done`
    if (
        isinstance(expression, ast.BinaryOp)
        and expression.operator == "=="
        and isinstance(expression.left, ast.Name)
        and isinstance(expression.right, ast.BoolLiteral)
        and expression.right.value is False
    ):
        return expression.left.identifier
    if (
        isinstance(expression, ast.UnaryOp)
        and expression.operator == "not"
        and isinstance(expression.operand, ast.Name)
    ):
        return expression.operand.identifier
    return None


def _is_dequeue_call(expression: ast.Expr | None, queue_name: str) -> bool:
    return (
        isinstance(expression, ast.MethodCall)
        and expression.method == "dequeueReadySet"
        and isinstance(expression.receiver, ast.Name)
        and expression.receiver.identifier == queue_name
    )


def _sets_done_flag(body: list[ast.Stmt], done_variable: str) -> bool:
    return (
        len(body) == 1
        and isinstance(body[0], ast.Assign)
        and isinstance(body[0].target, ast.Name)
        and body[0].target.identifier == done_variable
        and isinstance(body[0].value, ast.BoolLiteral)
        and body[0].value.value is True
    )


def _match_apply_chain(
    expression: ast.MethodCall, bucket_name: str
) -> tuple[str, str] | None:
    """Match ``edges.from(bucket).applyUpdatePriority(udf)``."""
    if len(expression.arguments) != 1 or not isinstance(
        expression.arguments[0], ast.Name
    ):
        return None
    udf_name = expression.arguments[0].identifier
    receiver = expression.receiver
    if not (
        isinstance(receiver, ast.MethodCall)
        and receiver.method == "from"
        and len(receiver.arguments) == 1
        and isinstance(receiver.arguments[0], ast.Name)
        and receiver.arguments[0].identifier == bucket_name
        and isinstance(receiver.receiver, ast.Name)
    ):
        return None
    return receiver.receiver.identifier, udf_name


def _bucket_used_elsewhere(
    main: ast.FuncDecl,
    loop: ast.While,
    apply_stmt: ast.Stmt,
    bucket_name: str,
) -> bool:
    """Check the correctness condition: the bucket may appear only in its
    declaration, the apply statement, and the delete."""
    allowed_statements: set[int] = {id(apply_stmt)}
    for statement in loop.body:
        if isinstance(statement, (ast.VarDecl, ast.Delete)):
            allowed_statements.add(id(statement))
        if isinstance(statement, ast.If):
            # The early-exit If owns the apply statement; its condition must
            # not reference the bucket (checked below via walk).
            allowed_statements.add(id(statement))

    for statement in _all_statements(main.body):
        if id(statement) in allowed_statements:
            continue
        if isinstance(statement, (ast.While, ast.If, ast.For)):
            # Container statements: only their own condition expressions are
            # inspected here (children are visited separately).
            expressions = _statement_expressions(statement, shallow=True)
        else:
            expressions = _statement_expressions(statement, shallow=False)
        for expression in expressions:
            for node in ast.walk(expression):
                if isinstance(node, ast.Name) and node.identifier == bucket_name:
                    return True
    return False


def _statement_expressions(statement: ast.Stmt, shallow: bool):
    if isinstance(statement, ast.While):
        return [statement.condition]
    if isinstance(statement, ast.If):
        return [statement.condition]
    if isinstance(statement, ast.For):
        return [statement.start, statement.stop]
    if isinstance(statement, ast.VarDecl):
        return [statement.initializer] if statement.initializer else []
    if isinstance(statement, ast.Assign):
        return [statement.target, statement.value]
    if isinstance(statement, ast.ExprStmt):
        return [statement.expression]
    if isinstance(statement, ast.Print):
        return [statement.expression]
    if isinstance(statement, ast.Return):
        return [statement.value] if statement.value else []
    return []
