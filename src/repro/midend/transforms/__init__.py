"""Program transformations: histogram UDF transform, plan construction."""

from .histogram_transform import TRANSFORMED_SUFFIX, build_transformed_udf
from .lowering import CompilationPlan, plan_program, schedule_from_block

__all__ = [
    "build_transformed_udf",
    "TRANSFORMED_SUFFIX",
    "CompilationPlan",
    "plan_program",
    "schedule_from_block",
]
