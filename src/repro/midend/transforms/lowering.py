"""The midend driver: analyses + schedule validation → a compilation plan.

``plan_program`` is what both backends consume.  It

1. type-checks the program and finds its priority queue(s),
2. recognizes the ordered-processing loop in ``main`` (Section 5.2),
3. resolves the schedule for the loop's label — from an explicit
   :class:`Schedule`/:class:`SchedulingProgram` argument or from the
   program's inline ``schedule:`` block,
4. runs the dependence analysis for atomics/deduplication insertion
   (Section 5.1),
5. runs the constant-sum analysis and builds the Figure 10 transformed UDF
   when the ``lazy_constant_sum`` strategy is scheduled, and
6. rejects infeasible combinations (eager without a recognizable loop,
   histogram without a constant-sum UDF, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import (
    CompileError,
    IncrementalityError,
    MonotonicityError,
    SchedulingError,
)
from ...lang import ast_nodes as ast
from ...obs import span as trace_span
from ...lang.symbols import SymbolTable
from ...lang.typecheck import typecheck
from ...lang.types import PriorityQueueType
from ..analysis.dependence import DependenceInfo, analyze_dependences
from ..analysis.diagnostics import validate_ir_or_raise
from ..analysis.effects import (
    IncrementalEligibility,
    ProgramEffectSummary,
    analyze_program_effects,
    classify_incremental_eligibility,
)
from ..analysis.loop_patterns import OrderedLoopInfo, recognize_ordered_loop
from ..analysis.races import RaceReport, analyze_races
from ..analysis.udf_analysis import (
    ConstantSumInfo,
    analyze_constant_sum,
    find_priority_updates,
)
from ..analysis.vectorize import VectorizeReport, analyze_vectorization
from ..schedule import Schedule, SchedulingProgram
from .histogram_transform import build_transformed_udf

__all__ = ["CompilationPlan", "plan_program", "schedule_from_block"]

# Maps inline schedule-block commands to SchedulingProgram methods.
_SCHEDULE_COMMANDS = {
    "configApplyPriorityUpdate": "config_apply_priority_update",
    "configApplyPriorityUpdateDelta": "config_apply_priority_update_delta",
    "configApplyUpdateDelta": "config_apply_priority_update_delta",
    "configBucketFusionThreshold": "config_bucket_fusion_threshold",
    "configNumBuckets": "config_num_buckets",
    "configApplyDirection": "config_apply_direction",
    "configApplyParallelization": "config_apply_parallelization",
    "configNumThreads": "config_num_threads",
    "configChunkSize": "config_chunk_size",
    "configExecution": "config_execution",
    "configIncremental": "config_incremental",
}


@dataclass
class CompilationPlan:
    """Everything a backend needs to generate code for one program."""

    program: ast.Program
    table: SymbolTable
    queue_names: set[str]
    loop: OrderedLoopInfo | None
    schedule: Schedule
    udf: ast.FuncDecl | None
    dependence: DependenceInfo | None
    constant_sum: ConstantSumInfo | None
    transformed_udf: ast.FuncDecl | None
    races: RaceReport | None = None
    # Per-UDF batch-kernel classification (UDF vectorization pass).  Maps
    # apply-UDF names to their :class:`VectorizeReport`; non-vectorizable
    # UDFs carry a located fallback reason surfaced as diagnostic ``V101``.
    vectorize: dict[str, VectorizeReport] = field(default_factory=dict)
    # Whole-program effect summary: per-UDF read/write/index sets, queue
    # metadata, and monotonicity verdicts.  The Python backend embeds its
    # runtime projection for the schedule sanitizer.
    effects: ProgramEffectSummary | None = None
    # Incremental-resume eligibility (the I001 analysis): computed for
    # every ordered program so `repro analyze` can report it, enforced as
    # a plan-time error only when the schedule requests incremental.
    incremental_eligibility: "IncrementalEligibility | None" = None

    @property
    def label(self) -> str | None:
        return self.loop.label if self.loop is not None else None

    @property
    def needs_atomics(self) -> bool:
        """Whether any classified site requires atomic lowering."""
        return self.races is not None and self.races.needs_atomics


def schedule_from_block(program: ast.Program) -> SchedulingProgram:
    """Build a :class:`SchedulingProgram` from the inline schedule block."""
    scheduling = SchedulingProgram()
    for statement in program.schedule:
        method_name = _SCHEDULE_COMMANDS.get(statement.command)
        if method_name is None:
            raise SchedulingError(
                f"line {statement.line}: unknown scheduling command "
                f"{statement.command!r}"
            )
        if len(statement.arguments) != 2:
            raise SchedulingError(
                f"line {statement.line}: {statement.command} takes a label "
                f"and one configuration value"
            )
        label, value = statement.arguments
        getattr(scheduling, method_name)(label, value)
    return scheduling


def plan_program(
    program: ast.Program,
    schedule: Schedule | SchedulingProgram | None = None,
) -> CompilationPlan:
    """Run the midend (see module docstring) and return the plan."""
    with trace_span("typecheck", "compiler"):
        table = typecheck(program)
    # The IR validator runs between every midend stage: catch a frontend
    # that handed over broken IR before any pass consumes it.
    with trace_span("midend.validate_ir", "compiler", stage="typed"):
        validate_ir_or_raise(program, "typed")

    queue_names = {
        const.name
        for const in program.constants
        if isinstance(const.declared_type, PriorityQueueType)
    }
    # Programs without a priority queue are plain (unordered) GraphIt
    # programs — e.g. the Bellman-Ford baseline; they compile with no
    # ordered-processing plan.

    main = program.function("main")
    if main is None:
        raise CompileError("program has no main function")

    with trace_span("midend.recognize_loop", "compiler"):
        loop = recognize_ordered_loop(main, queue_names)

    with trace_span("midend.resolve_schedule", "compiler") as sp:
        resolved = _resolve_schedule(program, schedule, loop)
        if sp is not None:
            sp["priority_update"] = resolved.priority_update
            sp["delta"] = resolved.delta
            sp["execution"] = resolved.execution

    udf: ast.FuncDecl | None = None
    dependence: DependenceInfo | None = None
    constant_sum: ConstantSumInfo | None = None
    transformed: ast.FuncDecl | None = None
    races: RaceReport | None = None

    # The whole-program effect summary is computed for every program (also
    # loop-free ones such as Bellman-Ford: plain apply UDFs are summarized
    # too, so the schedule sanitizer covers them).
    with trace_span("midend.effects", "compiler"):
        effects = analyze_program_effects(
            program,
            resolved,
            queue_names=queue_names,
            loop=loop,
            source_file=program.source_file,
        )

    if loop is not None and loop.udf_name is not None:
        udf = program.function(loop.udf_name)
        if udf is None:
            raise CompileError(
                f"applyUpdatePriority references unknown function "
                f"{loop.udf_name!r}"
            )
        if not find_priority_updates(udf, queue_names):
            raise CompileError(
                f"the UDF {udf.name!r} contains no priority update operator"
            )
        with trace_span("midend.dependence", "compiler", udf=udf.name):
            dependence = analyze_dependences(udf, queue_names, resolved.direction)
        # The race/atomicity analysis (per-site classification) drives the
        # backends: the C++ generator emits atomics only for sites that
        # need them, the Python backend asserts the classification at run
        # time.  Racy classifications do NOT abort the plan — `repro lint`
        # reports them and the interpreter refuses to execute them.
        with trace_span("midend.races", "compiler", udf=udf.name):
            races = analyze_races(
                udf, queue_names, resolved, source_file=program.source_file
            )
        with trace_span("midend.constant_sum", "compiler", udf=udf.name):
            constant_sum = analyze_constant_sum(udf, queue_names)
        # Relaxed-schedule admissibility (M001): bucket fusion drains
        # same-bucket insertions out of the global order, which is only
        # sound for monotone priority updates.  Unordered-racy sites are
        # excluded — those are already fatal as R001.
        if resolved.uses_fusion and effects is not None:
            for verdict in effects.monotonicity:
                if (
                    verdict.udf_name == udf.name
                    and not verdict.admissible
                    and not verdict.racy_site
                ):
                    raise MonotonicityError(
                        f"schedule requests eager_with_fusion but "
                        f"{verdict.site} in UDF {udf.name!r} is "
                        f"{verdict.verdict.value} for its queue's "
                        f"processing order ({verdict.reason}); "
                        f"out-of-order bucket fusion would be unsound",
                        span=verdict.span,
                    )
        if resolved.uses_histogram:
            if constant_sum is None:
                raise CompileError(
                    "schedule requests lazy_constant_sum but the UDF is not "
                    "a single constant-difference updatePrioritySum "
                    "(Section 5.1's analysis rejected it)"
                )
            with trace_span("midend.histogram_transform", "compiler", udf=udf.name):
                transformed = build_transformed_udf(udf, constant_sum)

    # Incremental-resume eligibility (I001): computed for every program so
    # `repro analyze` reports the verdict; a schedule that *requests*
    # incremental on an ineligible program is a plan-time error (mirroring
    # M001 — a resume is a reordering of the tail of the run, so the same
    # extremal-fixpoint reasoning gates it).
    incremental_eligibility: IncrementalEligibility | None = None
    if effects is not None:
        with trace_span("midend.incremental_eligibility", "compiler"):
            incremental_eligibility = classify_incremental_eligibility(
                effects, udf
            )
    if resolved.incremental:
        if incremental_eligibility is None or not incremental_eligibility.eligible:
            reasons = (
                "; ".join(incremental_eligibility.reasons)
                if incremental_eligibility is not None
                and incremental_eligibility.reasons
                else "no effect summary available"
            )
            raise IncrementalityError(
                f"schedule requests incremental resume but the program is "
                f"not eligible: {reasons}"
            )

    # The bucketing strategy only constrains *ordered* programs; a program
    # without a priority queue ignores it.
    if resolved.is_eager and queue_names:
        if loop is None:
            raise CompileError(
                "eager bucket update requires the ordered-processing while "
                "loop pattern, which was not found in main"
            )
        if not loop.eager_eligible:
            raise CompileError(
                "eager bucket update cannot be applied: the loop processes "
                "buckets through an extern function, so the compiler cannot "
                "replace it with the ordered processing operator"
            )

    # Post-lowering validation: the transforms must have left the IR in a
    # backend-consumable state (histogram UDF present iff scheduled, no
    # unresolved symbols introduced by the transform).
    with trace_span("midend.validate_ir", "compiler", stage="lowered"):
        validate_ir_or_raise(
            program, "lowered", schedule=resolved, transformed_udf=transformed
        )

    # UDF vectorization: classify every apply UDF as batch-kernel eligible
    # or scalar fallback.  The Python backend consumes the kernels; the
    # fallback reasons feed `repro lint` (V101).
    with trace_span("midend.vectorize", "compiler") as sp:
        vectorize = analyze_vectorization(
            program, queue_names, resolved, source_file=program.source_file
        )
        if sp is not None:
            sp["udfs"] = sorted(vectorize)

    return CompilationPlan(
        program=program,
        table=table,
        queue_names=queue_names,
        loop=loop,
        schedule=resolved,
        udf=udf,
        dependence=dependence,
        constant_sum=constant_sum,
        transformed_udf=transformed,
        races=races,
        vectorize=vectorize,
        effects=effects,
        incremental_eligibility=incremental_eligibility,
    )


def _resolve_schedule(
    program: ast.Program,
    schedule: Schedule | SchedulingProgram | None,
    loop: OrderedLoopInfo | None,
) -> Schedule:
    label = loop.label if loop is not None else None
    if isinstance(schedule, Schedule):
        return schedule
    if isinstance(schedule, SchedulingProgram):
        return schedule.schedule_for(label if label is not None else "")
    if program.schedule:
        return schedule_from_block(program).schedule_for(
            label if label is not None else ""
        )
    return Schedule()
