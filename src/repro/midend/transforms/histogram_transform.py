"""The constant-sum (histogram) UDF transformation — Figure 10.

Given a UDF that qualifies per
:func:`~repro.midend.analysis.udf_analysis.analyze_constant_sum`, build the
transformed function the compiler substitutes: a function of
``(vertex, count)`` that applies all of a round's updates to one vertex at
once,

    def apply_f_transformed(vertex, count):
        k = pq.getCurrentPriority()
        priority = pq.priority_vector[vertex]
        if priority > k:
            new_pri = max(priority + constant * count, k)
            pq.priority_vector[vertex] = new_pri
            <rebucket vertex at new_pri>

The transform is expressed as AST construction so both backends render it in
their own syntax and tests can inspect the structure directly.
"""

from __future__ import annotations

from ...lang import ast_nodes as ast
from ...lang.types import INT, ElementType
from ..analysis.udf_analysis import ConstantSumInfo

__all__ = ["build_transformed_udf", "TRANSFORMED_SUFFIX"]

TRANSFORMED_SUFFIX = "_transformed"


def build_transformed_udf(
    func: ast.FuncDecl, info: ConstantSumInfo
) -> ast.FuncDecl:
    """Build the Figure 10 transformed function as an AST.

    The result takes ``(vertex, count)`` and contains, in order: the current
    priority read, the priority load, the guard, the clamped update, and the
    write-back.  The re-bucketing side effect is implicit in the priority
    write (both backends route it through the queue's bucket-update call).
    """
    queue = info.update.queue_name
    vertex = ast.Name("vertex")
    count = ast.Name("count")

    current_priority = ast.MethodCall(ast.Name(queue), "getCurrentPriority", [])
    read_k = ast.VarDecl("k", INT, current_priority)

    priority_load = ast.Index(
        ast.MethodCall(ast.Name(queue), "priorityVector", []), vertex
    )
    read_priority = ast.VarDecl("priority", INT, priority_load)

    guard = ast.BinaryOp(">", ast.Name("priority"), ast.Name("k"))
    # max(priority + constant * count, k) — "max" because the paper's k-core
    # constant is negative; for a positive constant the clamp is a min.
    combined = ast.BinaryOp(
        "+",
        ast.Name("priority"),
        ast.BinaryOp("*", ast.IntLiteral(info.constant), count),
    )
    clamp_function = "max" if info.constant < 0 else "min"
    clamped = ast.Call(clamp_function, [combined, ast.Name("k")])
    new_priority = ast.VarDecl("new_pri", INT, clamped)
    write_back = ast.Assign(
        ast.Index(ast.MethodCall(ast.Name(queue), "priorityVector", []), vertex),
        ast.Name("new_pri"),
    )
    # Figure 10 returns wrap(vertex, get_bucket(new_pri)) — the changed
    # vertex and its destination bucket.  Returning the new priority plays
    # that role here: the caller re-buckets every vertex with a non-null
    # return.
    report_change = ast.Return(ast.Name("new_pri"))
    guarded = ast.If(guard, [new_priority, write_back, report_change], [])

    return ast.FuncDecl(
        name=func.name + TRANSFORMED_SUFFIX,
        parameters=[("vertex", ElementType("Vertex")), ("count", INT)],
        result=None,
        body=[read_k, read_priority, guarded],
        line=func.line,
    )
