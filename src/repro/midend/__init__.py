"""Midend: scheduling language, program analyses, and transformations."""

from .schedule import (
    EXECUTION_MODES,
    PRIORITY_UPDATE_STRATEGIES,
    TRAVERSAL_DIRECTIONS,
    Schedule,
    SchedulingProgram,
)

__all__ = [
    "Schedule",
    "SchedulingProgram",
    "PRIORITY_UPDATE_STRATEGIES",
    "TRAVERSAL_DIRECTIONS",
    "EXECUTION_MODES",
]
