"""The scheduling language (Table 2 of the paper).

A :class:`Schedule` captures every optimization knob for one labelled
``applyUpdatePriority`` statement; :class:`SchedulingProgram` is the fluent
builder the paper's schedules are written in::

    program = (SchedulingProgram()
        .config_apply_priority_update("s1", "lazy")
        .config_apply_priority_update_delta("s1", 4)
        .config_apply_direction("s1", "SparsePush")
        .config_apply_parallelization("s1", "dynamic-vertex-parallel"))

CamelCase aliases (``configApplyPriorityUpdate`` …) are provided so the
schedules in the paper can be transcribed verbatim.

Illegal combinations are rejected eagerly, mirroring the compiler's
feasibility analysis: the eager strategies require push-direction traversal
(the paper combines direction optimization only with lazy schedules), and
lazy-with-constant-sum additionally requires the midend to prove the UDF
performs a single constant-difference ``updatePrioritySum``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SchedulingError
from ..runtime.parallel import EXECUTION_MODES
from ..runtime.threads import PARALLELIZATION_POLICIES

__all__ = [
    "PRIORITY_UPDATE_STRATEGIES",
    "TRAVERSAL_DIRECTIONS",
    "EXECUTION_MODES",
    "Schedule",
    "SchedulingProgram",
]

PRIORITY_UPDATE_STRATEGIES = (
    "eager_with_fusion",
    "eager_no_fusion",
    "lazy",
    "lazy_constant_sum",
)

TRAVERSAL_DIRECTIONS = ("SparsePush", "DensePull")


@dataclass(frozen=True)
class Schedule:
    """All optimization settings for one ``applyUpdatePriority`` statement.

    Attributes
    ----------
    priority_update:
        Bucket update strategy (``configApplyPriorityUpdate``).
    delta:
        Priority-coarsening factor Δ (``configApplyPriorityUpdateDelta``).
    bucket_fusion_threshold:
        Local-bucket size threshold for bucket fusion
        (``configBucketFusionThreshold``); only meaningful with
        ``eager_with_fusion``.
    num_buckets:
        Number of materialized buckets for the lazy strategies
        (``configNumBuckets``).
    direction:
        Edge traversal direction (``configApplyDirection`` from the original
        GraphIt scheduling language).
    parallelization:
        Load-balancing policy (``configApplyParallelization``).
    num_threads:
        Virtual-thread count (an execution parameter in this reproduction;
        on the paper's testbed this was the machine's core count).
    chunk_size:
        Work-chunk granularity for dynamic policies (OpenMP's
        ``schedule(dynamic, 64)``).
    execution:
        ``serial`` runs the virtual-thread partitions inline (the bit-exact
        historical behaviour and the differential-test oracle); ``parallel``
        runs them on real worker threads via the
        :class:`~repro.runtime.parallel.ParallelExecutionEngine`; ``native``
        compiles the C++ backend into a cached shared library and runs it
        in-process, falling back to serial vectorized execution (with an
        ``N101`` diagnostic) when no C++ toolchain is available
        (``configExecution``).
    sanitize:
        Enable the schedule sanitizer: the runtime records every property
        vector actually read/written during each apply dispatch and fails
        loudly on any access outside the static effect summary embedded in
        the generated program (``repro run --sanitize``).  Off by default —
        instrumented vectors cost a bounds check per element access.
    incremental:
        Resume the converged run after graph mutations instead of
        recomputing from scratch (``repro run --incremental``).  Only
        programs whose ordered loop is an extremal min/max fixpoint are
        eligible (the ``I001`` analysis); requires the interpreted
        runtime — the native path owns its queues in C++ and cannot be
        re-seeded from Python (``configIncremental``).
    """

    priority_update: str = "eager_no_fusion"
    delta: int = 1
    bucket_fusion_threshold: int = 1000
    num_buckets: int = 128
    direction: str = "SparsePush"
    parallelization: str = "dynamic-vertex-parallel"
    num_threads: int = 8
    chunk_size: int = 64
    execution: str = "serial"
    sanitize: bool = False
    incremental: bool = False

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation (the compiler's schedule feasibility checks)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.priority_update not in PRIORITY_UPDATE_STRATEGIES:
            raise SchedulingError(
                f"unknown priority update strategy {self.priority_update!r}; "
                f"expected one of {PRIORITY_UPDATE_STRATEGIES}"
            )
        if self.direction not in TRAVERSAL_DIRECTIONS:
            raise SchedulingError(
                f"unknown traversal direction {self.direction!r}; "
                f"expected one of {TRAVERSAL_DIRECTIONS}"
            )
        if self.parallelization not in PARALLELIZATION_POLICIES:
            raise SchedulingError(
                f"unknown parallelization {self.parallelization!r}; "
                f"expected one of {PARALLELIZATION_POLICIES}"
            )
        if self.delta < 1:
            raise SchedulingError("delta must be >= 1")
        if self.num_buckets < 1:
            raise SchedulingError("num_buckets must be >= 1")
        if self.bucket_fusion_threshold < 1:
            raise SchedulingError("bucket fusion threshold must be >= 1")
        if self.num_threads < 1:
            raise SchedulingError("num_threads must be >= 1")
        if self.chunk_size < 1:
            raise SchedulingError("chunk_size must be >= 1")
        if self.execution not in EXECUTION_MODES:
            raise SchedulingError(
                f"unknown execution mode {self.execution!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        if self.execution == "native" and self.sanitize:
            raise SchedulingError(
                "the schedule sanitizer instruments the Python runtime; "
                "native execution cannot be sanitized (drop --sanitize or "
                "use execution='serial')"
            )
        if self.execution == "native" and self.incremental:
            raise SchedulingError(
                "incremental resume seeds the interpreted engine's queues "
                "from Python; native kernels own their buckets in C++ and "
                "cannot be re-seeded (drop --incremental or use "
                "execution='serial'/'parallel')"
            )
        if self.is_eager and self.direction != "SparsePush":
            # Section 4.2: direction optimization combines with the *lazy*
            # priority update schedules; the eager runtime is push-only.
            raise SchedulingError(
                "eager bucket update requires SparsePush traversal; "
                "direction optimization is only available with lazy schedules"
            )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def is_eager(self) -> bool:
        return self.priority_update in ("eager_with_fusion", "eager_no_fusion")

    @property
    def is_lazy(self) -> bool:
        return not self.is_eager

    @property
    def uses_fusion(self) -> bool:
        return self.priority_update == "eager_with_fusion"

    @property
    def uses_histogram(self) -> bool:
        return self.priority_update == "lazy_constant_sum"

    def with_(self, **changes) -> "Schedule":
        """A modified copy (``dataclasses.replace`` with validation)."""
        return replace(self, **changes)


class SchedulingProgram:
    """Fluent builder over per-label schedules (the ``program->...`` chain).

    Beyond the merged per-label :class:`Schedule`, the builder records every
    individual command issued (``commands_for``) and every label a backend
    actually looked up (``consulted_labels``), so the diagnostics engine can
    flag configs for labels that never appear in any program — the silent
    misspelled-label footgun — and knobs that are dead under the chosen
    strategy.
    """

    def __init__(self, default: Schedule | None = None):
        self._default = default if default is not None else Schedule()
        self._schedules: dict[str, Schedule] = {}
        # Every (knob, value) command, in issue order, keyed by label.
        self._commands: dict[str, list[tuple[str, object]]] = {}
        # Labels schedule_for() was asked about (the footgun audit trail).
        self._consulted: set[str] = set()

    # ------------------------------------------------------------------
    # Table 2 commands
    # ------------------------------------------------------------------
    def config_apply_priority_update(self, label: str, config: str) -> "SchedulingProgram":
        return self._update(label, priority_update=config)

    def config_apply_priority_update_delta(
        self, label: str, config: int | str
    ) -> "SchedulingProgram":
        return self._update(label, delta=self._parse_int(config, "delta"))

    def config_bucket_fusion_threshold(
        self, label: str, config: int | str
    ) -> "SchedulingProgram":
        return self._update(
            label, bucket_fusion_threshold=self._parse_int(config, "threshold")
        )

    def config_num_buckets(self, label: str, config: int | str) -> "SchedulingProgram":
        return self._update(label, num_buckets=self._parse_int(config, "num_buckets"))

    # ------------------------------------------------------------------
    # Original GraphIt scheduling commands used in the paper
    # ------------------------------------------------------------------
    def config_apply_direction(self, label: str, config: str) -> "SchedulingProgram":
        return self._update(label, direction=config)

    def config_apply_parallelization(self, label: str, config: str) -> "SchedulingProgram":
        return self._update(label, parallelization=config)

    def config_num_threads(self, label: str, config: int | str) -> "SchedulingProgram":
        return self._update(label, num_threads=self._parse_int(config, "num_threads"))

    def config_chunk_size(self, label: str, config: int | str) -> "SchedulingProgram":
        return self._update(label, chunk_size=self._parse_int(config, "chunk_size"))

    def config_execution(self, label: str, config: str) -> "SchedulingProgram":
        return self._update(label, execution=config)

    def config_incremental(self, label: str, config: bool | str) -> "SchedulingProgram":
        return self._update(label, incremental=self._parse_bool(config, "incremental"))

    # CamelCase aliases so paper schedules paste directly.
    configApplyPriorityUpdate = config_apply_priority_update
    configApplyPriorityUpdateDelta = config_apply_priority_update_delta
    configBucketFusionThreshold = config_bucket_fusion_threshold
    configNumBuckets = config_num_buckets
    configApplyDirection = config_apply_direction
    configApplyParallelization = config_apply_parallelization
    configNumThreads = config_num_threads
    configChunkSize = config_chunk_size
    configExecution = config_execution
    configIncremental = config_incremental

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def schedule_for(self, label: str) -> Schedule:
        """The schedule for a label (the default when never configured).

        Every lookup is recorded; :attr:`consulted_labels` exposes which
        labels the compiler actually used, so callers can detect configured
        labels that were never consulted (usually a typo).
        """
        self._consulted.add(label)
        return self._schedules.get(label, self._default)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self._schedules)

    @property
    def consulted_labels(self) -> frozenset[str]:
        """Labels :meth:`schedule_for` has been asked about so far."""
        return frozenset(self._consulted)

    def unconsulted_labels(self) -> tuple[str, ...]:
        """Configured labels no compilation ever looked up (typo suspects)."""
        return tuple(
            label for label in self._schedules if label not in self._consulted
        )

    def commands_for(self, label: str) -> tuple[tuple[str, object], ...]:
        """The individual (knob, value) commands issued for ``label``."""
        return tuple(self._commands.get(label, ()))

    def _update(self, label: str, **changes) -> "SchedulingProgram":
        if not label:
            raise SchedulingError("schedule label must be non-empty")
        current = self._schedules.get(label, self._default)
        self._schedules[label] = current.with_(**changes)
        self._commands.setdefault(label, []).extend(changes.items())
        return self

    @staticmethod
    def _parse_int(value: int | str, name: str) -> int:
        try:
            return int(value)
        except (TypeError, ValueError) as exc:
            raise SchedulingError(f"{name} must be an integer, got {value!r}") from exc

    @staticmethod
    def _parse_bool(value: bool | str, name: str) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise SchedulingError(f"{name} must be a boolean, got {value!r}")
