"""Emulated atomic operations.

The Python interpreter runs our virtual threads sequentially, so no physical
atomicity is needed — but the *count* of atomic operations matters: the
paper's generated code inserts ``atomicWriteMin`` / CAS instructions only when
the dependence analysis finds write-write conflicts, and the cost model
charges for them.  This module provides the same operation vocabulary as the
generated C++ (Figure 9) with counting hooks, in both scalar and vectorized
(batch) forms.
"""

from __future__ import annotations

import numpy as np

from .stats import RuntimeStats

__all__ = ["AtomicOps"]


class AtomicOps:
    """Atomic-operation vocabulary over numpy arrays, with counting.

    Parameters
    ----------
    stats:
        Statistics sink; every operation bumps ``stats.atomic_ops``.  Pass
        ``None`` to skip counting (used by non-conflicting pull traversals,
        where the compiler emits plain writes).
    """

    def __init__(self, stats: RuntimeStats | None = None):
        self._stats = stats

    def _charge(self, amount: int = 1) -> None:
        if self._stats is not None:
            self._stats.atomic_ops += amount

    # ------------------------------------------------------------------
    # Scalar operations (mirror the generated C++ vocabulary)
    # ------------------------------------------------------------------
    def write_min(self, array: np.ndarray, index: int, value: int) -> bool:
        """``atomicWriteMin``: store ``min(array[index], value)``; True if changed."""
        self._charge()
        if value < array[index]:
            array[index] = value
            return True
        return False

    def write_max(self, array: np.ndarray, index: int, value: int) -> bool:
        """``atomicWriteMax``: store ``max(array[index], value)``; True if changed."""
        self._charge()
        if value > array[index]:
            array[index] = value
            return True
        return False

    def cas(self, array: np.ndarray, index: int, expected: int, new: int) -> bool:
        """Compare-and-swap; True when the swap happened."""
        self._charge()
        if array[index] == expected:
            array[index] = new
            return True
        return False

    def fetch_add(self, array: np.ndarray, index: int, delta: int) -> int:
        """Atomic fetch-and-add; returns the previous value."""
        self._charge()
        old = int(array[index])
        array[index] = old + delta
        return old

    # ------------------------------------------------------------------
    # Batch operations (used by the vectorized executors; each element
    # counts as one atomic, matching what the scalar loop would do)
    # ------------------------------------------------------------------
    def write_min_batch(
        self, array: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``atomicWriteMin``.

        Applies ``array[i] = min(array[i], v)`` for every (i, v) pair
        (duplicate indices combine correctly, as a serialization of CAS
        retries would) and returns a boolean mask marking the pairs whose
        value equals the post-update minimum — i.e. the writes that "won",
        matching the return convention of the scalar form.
        """
        self._charge(int(indices.size))
        if indices.size == 0:
            return np.zeros(0, dtype=bool)
        old = array[indices].copy()
        np.minimum.at(array, indices, values)
        # A pair wins when it strictly improved the previous value and is
        # at least as good as the final value (ties: all minimal writers win,
        # as any CAS serialization would admit exactly one of them; callers
        # use the mask for frontier membership where duplicates are benign).
        final = array[indices]
        return (values < old) & (values <= final)

    def fetch_add_batch(
        self, array: np.ndarray, indices: np.ndarray, deltas: np.ndarray
    ) -> None:
        """Vectorized fetch-and-add (results discarded)."""
        self._charge(int(indices.size))
        np.add.at(array, indices, deltas)
