"""Frontier construction helpers.

These correspond to the runtime-library entry points the compiler emits calls
to in the lazy code path (Figure 9(a)): ``setupOutputBufferOffsets`` (prefix
sums over out-degrees), ``setupFrontier`` (compacting a sparse output buffer
with tombstones), and edge gathering for vectorized traversal.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "TOMBSTONE",
    "output_buffer_offsets",
    "compact_frontier",
    "gather_segments",
    "gather_out_edges",
    "gather_in_edges",
    "segmented_running_extrema",
]

# Sentinel marking an unused slot in a sparse output buffer, playing the role
# of UINT_MAX in the generated C++.
TOMBSTONE = np.int64(-1)


def output_buffer_offsets(graph: CSRGraph, frontier: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of the frontier's out-degrees.

    Gives each frontier vertex a private slice of the output buffer, which is
    how the generated lazy code writes destinations without contention.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    degrees = graph.out_degrees()[frontier]
    offsets = np.zeros(frontier.size + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    return offsets


def compact_frontier(out_edges: np.ndarray) -> np.ndarray:
    """Drop tombstones from a sparse output buffer (``setupFrontier``)."""
    return out_edges[out_edges != TOMBSTONE]


def gather_segments(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Flattened index array covering ``[starts[i], ends[i])`` for every i.

    The standard vectorized segment-gather: positions within the output are
    offset by each segment's start minus the running output offset.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_offsets = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=out_offsets[1:])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_offsets, lengths)
        + np.repeat(starts, lengths)
    )


def segmented_running_extrema(
    values: np.ndarray, boundary: np.ndarray, maximum: bool = False
) -> np.ndarray:
    """Inclusive running min (or max) of ``values`` within each segment.

    Segments are contiguous runs; ``boundary[i]`` is True at the first
    position of each segment (``boundary[0]`` must be True).  This is the
    scan primitive behind the sequential-exact vectorized apply operators:
    feeding it the *previous* value of each position (seeded with the
    destination's current priority at segment starts) yields, for every
    position, exactly the value the scalar interpreter would observe just
    before processing that position.

    Implemented with the rank-bias trick: values are replaced by their ranks
    (order-isomorphic, so min/max commute with the mapping), each segment's
    ranks are offset so no segment can leak into the next under a global
    ``np.minimum.accumulate``/``np.maximum.accumulate``, and the result is
    mapped back.  Ranks keep the bias products small; an overflow guard
    falls back to a per-segment Python loop for pathological inputs.
    """
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    boundary = np.asarray(boundary, dtype=bool)
    segment = np.cumsum(boundary, dtype=np.int64) - 1
    num_segments = int(segment[-1]) + 1
    # Fast path: bias the raw values directly when the value span is small
    # enough that per-segment offsets cannot overflow (the common case —
    # priorities are bounded by the graph's weighted diameter).  Falls back
    # to rank compression, and from there to a per-segment loop.
    vmin = int(values.min())
    vmax = int(values.max())
    span = vmax - vmin + 1
    if (num_segments + 1) * span < 2**62:
        shifted = values.astype(np.int64) - vmin
        if maximum:
            biased = shifted + segment * span
            running = np.maximum.accumulate(biased) - segment * span
        else:
            biased = shifted - segment * span
            running = np.minimum.accumulate(biased) + segment * span
        return (running + vmin).astype(values.dtype, copy=False)
    unique, ranks = np.unique(values, return_inverse=True)
    ranks = ranks.astype(np.int64)
    stride = int(unique.size) + 1
    if (num_segments + 1) * stride >= 2**62:  # pragma: no cover - guard
        out = np.empty_like(values)
        starts = np.flatnonzero(boundary)
        ends = np.append(starts[1:], values.size)
        op = np.maximum if maximum else np.minimum
        for start, end in zip(starts.tolist(), ends.tolist()):
            out[start:end] = op.accumulate(values[start:end])
        return out
    if maximum:
        biased = ranks + segment * stride
        running = np.maximum.accumulate(biased) - segment * stride
    else:
        biased = ranks - segment * stride
        running = np.minimum.accumulate(biased) + segment * stride
    return unique[running]


def gather_out_edges(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All out-edges of ``vertices`` as ``(sources, destinations, weights)``.

    Sources are repeated per edge so the three arrays align; this is the
    vectorized equivalent of the nested source/edge loop in the generated
    push-direction code.

    Overlay-aware without compaction: on a graph with pending mutations
    the base segments are gathered, removed slots filtered, and pending
    inserts appended — O(frontier edges + overlay), so a resume over a
    freshly-mutated graph never pays an O(E) rebuild.  Filtering the
    stream by a source subset yields exactly the subset's own gather
    (pending edges keep overlay order, not frontier order), which is the
    property the parallel prefetch filter relies on.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if not graph.has_pending_mutations:
        starts = graph.indptr[vertices]
        ends = graph.indptr[vertices + 1]
        edge_index = gather_segments(starts, ends)
        sources = np.repeat(vertices, ends - starts)
        return sources, graph.indices[edge_index], graph.weights[edge_index]
    indptr, indices, weights = graph.base_csr()
    starts = indptr[vertices]
    ends = indptr[vertices + 1]
    edge_index = gather_segments(starts, ends)
    sources = np.repeat(vertices, ends - starts)
    removed = graph.removed_mask()
    if removed is not None:
        keep = ~removed[edge_index]
        edge_index = edge_index[keep]
        sources = sources[keep]
    dests = indices[edge_index]
    edge_weights = weights[edge_index]
    extra_src, extra_dst, extra_w = graph.pending_out_edges(vertices)
    if extra_src.size:
        sources = np.concatenate([sources, extra_src])
        dests = np.concatenate([dests, extra_dst])
        edge_weights = np.concatenate([edge_weights, extra_w])
    return sources, dests, edge_weights


def gather_in_edges(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All in-edges of ``vertices`` as ``(sources, destinations, weights)``.

    Destinations are the given vertices (repeated per edge); used by the
    pull-direction traversal.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    indptr, indices, weights = graph.in_csr()
    if vertices.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    starts = indptr[vertices]
    ends = indptr[vertices + 1]
    edge_index = gather_segments(starts, ends)
    dests = np.repeat(vertices, ends - starts)
    return indices[edge_index], dests, weights[edge_index]
