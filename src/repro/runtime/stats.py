"""Execution statistics and the simulated-parallel-time cost model.

The paper's comparisons between bucketing strategies reduce to a small set of
measurable quantities: number of processing rounds (each costing a global
synchronization), number of fused rounds (which cost no synchronization),
per-round work and its distribution across threads, bucket insertions, buffer
traffic for the lazy approach, and atomic operations.  :class:`RuntimeStats`
counts all of them, and :class:`CostModel` converts them to a simulated
parallel running time:

    time = sum over rounds of (max work of any thread in that round) * work_unit
         + (number of global synchronizations) * sync
         + serial per-operation charges (bucket inserts, buffer ops, atomics)

Because the Python interpreter executes everything sequentially, wall-clock
time alone cannot reflect barrier costs on a 24-core machine; the simulated
time restores exactly the component the paper's optimizations target (fewer
rounds, fewer synchronizations, balanced thread work).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = [
    "RuntimeStats",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "PARALLEL_ONLY_FIELDS",
    "WALL_CLOCK_FIELDS",
]

# Fields only the real-parallel engine populates.  Excluded (together with
# the wall-clock fields) from oracle comparisons: a parallel run is compared
# to the sequential oracle on every *deterministic* counter.
PARALLEL_ONLY_FIELDS = (
    "execution",
    "parallel_rounds",
    "barrier_waits",
    "barrier_wait_time",
    "worker_wall_time",
)

# Fields derived from wall-clock measurements — inherently nondeterministic,
# never part of any bit-identical comparison.
WALL_CLOCK_FIELDS = ("barrier_wait_time", "worker_wall_time", "phase_timings")


@dataclass(frozen=True)
class CostModel:
    """Per-operation charges (arbitrary units; defaults loosely model cycles).

    Attributes
    ----------
    work_unit:
        Cost of one unit of thread work (one edge relaxation or one local
        bucket operation) on the critical path.
    sync:
        Cost of one global synchronization (barrier / round handoff).
    bucket_insert:
        Extra charge per bucket insertion beyond the generic work unit
        (amortized allocation + indexing).
    buffer_op:
        Charge per lazy-buffer append or reduction entry.
    atomic:
        Extra charge per atomic operation over a plain write.
    """

    work_unit: float = 1.0
    sync: float = 600.0
    bucket_insert: float = 2.0
    buffer_op: float = 2.0
    atomic: float = 4.0


DEFAULT_COST_MODEL = CostModel()


@dataclass
class RuntimeStats:
    """Counters collected during one algorithm execution."""

    num_threads: int = 1
    rounds: int = 0
    fused_rounds: int = 0
    global_syncs: int = 0
    relaxations: int = 0
    priority_updates: int = 0
    bucket_inserts: int = 0
    buffer_appends: int = 0
    buffer_reductions: int = 0
    histogram_updates: int = 0
    dedup_hits: int = 0
    atomic_ops: int = 0
    vertices_processed: int = 0
    # --- incremental recomputation (mutation resume) ------------------
    # All stay 0 for from-scratch runs, keeping historical stat dumps
    # byte-identical.  Populated by the incremental engine; deterministic,
    # so they participate in oracle comparisons.
    incremental_runs: int = 0
    incremental_mutations: int = 0
    incremental_seeds: int = 0
    incremental_invalidated: int = 0
    incremental_vertices_touched: int = 0
    max_work_per_round: list[int] = field(default_factory=list)
    total_work_per_round: list[int] = field(default_factory=list)
    # --- workload telemetry (crossover axes) --------------------------
    # Frontier size and open-bucket occupancy recorded at each lazy/eager
    # ``dequeue_ready_set`` — the per-round shape of the traversal, the
    # axes the paper says drive the lazy/eager/fusion crossover.  Both are
    # appended only at coordinator-driven dequeues (deterministic under
    # the parallel engine, like ``vertices_processed``); the relaxed queue
    # skips them (its chunk order is scheduling-dependent by design).
    frontier_per_round: list[int] = field(default_factory=list)
    bucket_occupancy_per_round: list[int] = field(default_factory=list)
    # --- real-parallel observables (PR 3) -----------------------------
    # All of these stay at their defaults under ``execution=serial`` so
    # serial stat dumps remain byte-identical across releases (the
    # differential tests compare ``dataclasses.asdict`` dumps).
    execution: str = "serial"
    parallel_rounds: int = 0
    barrier_waits: int = 0
    barrier_wait_time: float = 0.0
    worker_wall_time: dict[int, float] = field(default_factory=dict)
    # Timestamped phase timings (tracing subsystem).  Each entry is
    # {"phase": str, "start_us": float, "dur_us": float}, appended only
    # while a tracer is active (obs.stat_span), so untraced runs — the
    # differential oracle included — keep this empty and their stat dumps
    # bit-identical across releases.
    phase_timings: list[dict] = field(default_factory=list)
    _current_work: list[int] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Open a new global round; per-thread work accumulators reset."""
        if self._current_work is not None:
            raise RuntimeError("begin_round called with a round already open")
        self._current_work = [0] * self.num_threads

    def add_thread_work(self, thread_id: int, units: int) -> None:
        """Charge ``units`` of work to ``thread_id`` in the open round."""
        if self._current_work is None:
            raise RuntimeError("add_thread_work called outside a round")
        self._current_work[thread_id] += int(units)

    def end_round(self, syncs: int = 1, fused: int = 0) -> None:
        """Close the open round.

        Parameters
        ----------
        syncs:
            Number of global synchronizations this round performed (the lazy
            approach performs two: one to reduce the update buffer and one at
            the round boundary; the eager approach performs one).
        fused:
            Number of extra bucket-processing passes that were folded into
            this round by bucket fusion (they cost work but no sync).
        """
        if self._current_work is None:
            raise RuntimeError("end_round called without begin_round")
        self.rounds += 1
        self.fused_rounds += int(fused)
        self.global_syncs += int(syncs)
        self.max_work_per_round.append(max(self._current_work, default=0))
        self.total_work_per_round.append(sum(self._current_work))
        self._current_work = None

    def record_parallel_round(
        self, worker_times: dict[int, float], barrier_wait: float
    ) -> None:
        """Record one real-parallel round's wall-time observables.

        ``worker_times`` maps virtual-thread id to the wall-clock seconds its
        produce phase spent on a real worker thread; ``barrier_wait`` is how
        long the coordinator blocked at the round barrier.  Only the parallel
        engine calls this, so serial runs never populate these fields.
        """
        self.parallel_rounds += 1
        self.barrier_waits += 1
        self.barrier_wait_time += float(barrier_wait)
        for thread_id, seconds in worker_times.items():
            self.worker_wall_time[thread_id] = (
                self.worker_wall_time.get(thread_id, 0.0) + float(seconds)
            )

    def record_phase(self, phase: str, start_us: float, dur_us: float) -> None:
        """Append one timestamped phase timing (tracing-on runs only).

        Called by :func:`repro.obs.stat_span`; the timestamps are
        microseconds on the active tracer's clock, so phase timings line up
        with the Chrome-trace spans of the same run.
        """
        self.phase_timings.append(
            {"phase": phase, "start_us": float(start_us), "dur_us": float(dur_us)}
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Full JSON-safe serialization with deterministic key order.

        Keys follow field declaration order (stable across calls and
        processes); ``worker_wall_time`` serializes with *string* keys in
        ascending numeric order, because JSON objects cannot carry int keys
        and a round-trip through ``json.dumps``/``loads`` must be lossless.
        The private ``_current_work`` accumulator is never serialized.
        """
        out: dict = {}
        for spec in fields(self):
            if spec.name.startswith("_"):
                continue
            value = getattr(self, spec.name)
            if spec.name == "worker_wall_time":
                value = {
                    str(tid): float(value[tid]) for tid in sorted(value)
                }
            elif isinstance(value, list):
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "RuntimeStats":
        """Inverse of :meth:`to_dict` (tolerates missing newer fields)."""
        known = {spec.name for spec in fields(cls) if not spec.name.startswith("_")}
        kwargs = {key: value for key, value in payload.items() if key in known}
        if "worker_wall_time" in kwargs:
            kwargs["worker_wall_time"] = {
                int(tid): float(seconds)
                for tid, seconds in kwargs["worker_wall_time"].items()
            }
        return cls(**kwargs)

    def deterministic_dict(self) -> dict:
        """The oracle-comparison dump: every deterministic counter, no
        wall-clock-dependent and no parallel-only fields.

        A parallel run and the sequential oracle must agree on this dict
        bit for bit (the contract the differential test layer enforces);
        the excluded fields are exactly :data:`PARALLEL_ONLY_FIELDS` and
        :data:`WALL_CLOCK_FIELDS`.
        """
        excluded = set(PARALLEL_ONLY_FIELDS) | set(WALL_CLOCK_FIELDS)
        return {
            key: value
            for key, value in self.to_dict().items()
            if key not in excluded
        }

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_work(self) -> int:
        """Total work units across all threads and rounds."""
        return sum(self.total_work_per_round)

    @property
    def critical_path_work(self) -> int:
        """Work units on the simulated critical path (max thread per round)."""
        return sum(self.max_work_per_round)

    def simulated_time(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Simulated parallel running time under ``cost_model`` (see module doc)."""
        parallel_ops = (
            self.bucket_inserts * cost_model.bucket_insert
            + (self.buffer_appends + self.buffer_reductions) * cost_model.buffer_op
            + self.atomic_ops * cost_model.atomic
        ) / max(1, self.num_threads)
        return (
            self.critical_path_work * cost_model.work_unit
            + self.global_syncs * cost_model.sync
            + parallel_ops
        )

    def merge(self, other: "RuntimeStats") -> None:
        """Accumulate another run's counters into this one (for averaging)."""
        self.rounds += other.rounds
        self.fused_rounds += other.fused_rounds
        self.global_syncs += other.global_syncs
        self.relaxations += other.relaxations
        self.priority_updates += other.priority_updates
        self.bucket_inserts += other.bucket_inserts
        self.buffer_appends += other.buffer_appends
        self.buffer_reductions += other.buffer_reductions
        self.histogram_updates += other.histogram_updates
        self.dedup_hits += other.dedup_hits
        self.atomic_ops += other.atomic_ops
        self.vertices_processed += other.vertices_processed
        self.incremental_runs += other.incremental_runs
        self.incremental_mutations += other.incremental_mutations
        self.incremental_seeds += other.incremental_seeds
        self.incremental_invalidated += other.incremental_invalidated
        self.incremental_vertices_touched += other.incremental_vertices_touched
        self.max_work_per_round.extend(other.max_work_per_round)
        self.total_work_per_round.extend(other.total_work_per_round)
        self.frontier_per_round.extend(other.frontier_per_round)
        self.bucket_occupancy_per_round.extend(other.bucket_occupancy_per_round)
        self.parallel_rounds += other.parallel_rounds
        self.barrier_waits += other.barrier_waits
        self.barrier_wait_time += other.barrier_wait_time
        for thread_id, seconds in other.worker_wall_time.items():
            self.worker_wall_time[thread_id] = (
                self.worker_wall_time.get(thread_id, 0.0) + seconds
            )
        self.phase_timings.extend(other.phase_timings)

    def parallel_summary(self) -> dict[str, float]:
        """Headline numbers for the real-parallel engine (zeros when serial)."""
        worker_busy = sum(self.worker_wall_time.values())
        return {
            "execution_workers": self.num_threads,
            "parallel_rounds": self.parallel_rounds,
            "barrier_waits": self.barrier_waits,
            "barrier_wait_time": self.barrier_wait_time,
            "worker_busy_time": worker_busy,
            "max_worker_busy_time": max(self.worker_wall_time.values(), default=0.0),
        }

    def summary(self) -> dict[str, float]:
        """A flat dictionary of the headline numbers, for reports."""
        return {
            "threads": self.num_threads,
            "rounds": self.rounds,
            "fused_rounds": self.fused_rounds,
            "global_syncs": self.global_syncs,
            "relaxations": self.relaxations,
            "bucket_inserts": self.bucket_inserts,
            "buffer_appends": self.buffer_appends,
            "total_work": self.total_work,
            "critical_path_work": self.critical_path_work,
            "simulated_time": self.simulated_time(),
        }
