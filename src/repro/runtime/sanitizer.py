"""The schedule sanitizer: dynamic validation of static effect summaries.

The midend's whole-program effect analysis
(:mod:`repro.midend.analysis.effects`) claims, for every apply-site UDF,
which property vectors it reads and writes and through which index
expressions.  Every downstream soundness argument — race classification,
atomics insertion, monotonicity-gated bucket fusion — leans on those
summaries being *complete*.  The sanitizer closes the loop at run time:

- property vectors allocated under ``Schedule(sanitize=True)`` are
  :class:`SanitizedVector` instances that report every element read and
  write to the active :class:`Sanitizer`,
- the runtime operators bracket each apply dispatch in a sanitizer *scope*
  naming the UDF being applied (and, for push traversal, the frontier the
  dispatch is allowed to touch), and
- at scope exit the recorded accesses are checked against the static
  summary the generated module embedded via
  ``ctx.declare_effect_summary(...)``.

Violations raise :class:`SanitizerError` immediately — the sanitizer's
whole point is to fail loudly the moment an execution escapes its static
contract, rather than to produce a wrong answer quietly.

Four rules are enforced per scope:

1. every vector read belongs to the summary's read-or-write set,
2. every vector written belongs to the summary's write set,
3. under push traversal, written indices stay within the frontier and its
   out-neighborhood when the summary proves all write indices are
   src/dst-derived (the containment argument behind per-round ordering),
4. a write to a vector the summary classified *unordered racy* raises at
   the write itself — mirroring the interpreter's refusal to run ``R001``
   programs, but catching the case where the static report was bypassed.

Recording costs a Python-level check per element access, so the
instrumentation is opt-in (``repro run --sanitize``) and entirely absent
from uninstrumented runs: without the flag the runtime allocates plain
``np.ndarray`` vectors and the operators' scopes are no-ops.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphItError

__all__ = ["SanitizerError", "SanitizedVector", "Sanitizer"]


class SanitizerError(GraphItError):
    """A dynamic access escaped the static effect summary."""


class SanitizedVector(np.ndarray):
    """An ``np.ndarray`` that reports element accesses to a sanitizer.

    Instances start *inert* (``_sanitizer is None``); the context activates
    them when the generated module declares its effect summary, binding each
    vector to its program-level name.  Derived arrays (fancy-indexing
    copies, ufunc results) drop the instrumentation — only true views of
    the original buffer keep reporting, so writes through a slice are still
    seen while scratch copies cost nothing.
    """

    def __array_finalize__(self, obj):
        sanitizer = getattr(obj, "_sanitizer", None)
        if sanitizer is not None and self.base is obj:
            self._sanitizer = sanitizer
            self._effect_name = obj._effect_name
        else:
            self._sanitizer = None
            self._effect_name = None

    def __getitem__(self, key):
        sanitizer = self._sanitizer
        if sanitizer is not None and sanitizer.active is not None:
            sanitizer.record_read(self._effect_name, key)
        return super().__getitem__(key)

    def __setitem__(self, key, value):
        sanitizer = self._sanitizer
        if sanitizer is not None and sanitizer.active is not None:
            sanitizer.record_write(self._effect_name, key)
        super().__setitem__(key, value)


def _key_indices(key) -> np.ndarray | None:
    """Normalize an indexing key to a flat int64 index array.

    Returns ``None`` for keys whose touched positions cannot be enumerated
    cheaply (slices, ellipsis, tuples) — the name-level rules still apply,
    only the index-containment rule is skipped for that access.
    """
    if isinstance(key, (int, np.integer)):
        return np.array([int(key)], dtype=np.int64)
    if isinstance(key, np.ndarray):
        if key.dtype == bool:
            return np.flatnonzero(key).astype(np.int64, copy=False)
        if np.issubdtype(key.dtype, np.integer):
            return key.ravel().astype(np.int64, copy=False)
        return None
    if isinstance(key, (list, tuple)) and all(
        isinstance(k, (int, np.integer)) for k in key
    ):
        return np.asarray(key, dtype=np.int64).ravel()
    return None


class _Scope:
    """The accesses recorded during one apply dispatch."""

    __slots__ = (
        "udf_name",
        "contract",
        "frontier",
        "edges",
        "read_names",
        "writes",
        "unbounded_writes",
    )

    def __init__(self, udf_name, contract, frontier, edges):
        self.udf_name = udf_name
        self.contract = contract
        self.frontier = frontier
        self.edges = edges
        self.read_names: set[str] = set()
        # vector name -> list of written index arrays, in write order
        self.writes: dict[str, list[np.ndarray]] = {}
        # vectors written through a non-enumerable key (slice etc.)
        self.unbounded_writes: set[str] = set()


class Sanitizer:
    """Checks recorded dynamic accesses against static effect summaries.

    ``summary`` is the generated module's runtime projection
    (:meth:`~repro.midend.analysis.effects.ProgramEffectSummary.runtime_summary`):
    per-UDF ``reads`` / ``writes`` / ``racy`` name lists plus the
    ``write_index`` provenance map driving the containment rule.
    """

    def __init__(self, summary: dict):
        self.summary = {name: dict(contract) for name, contract in summary.items()}
        self.active: _Scope | None = None
        #: completed scopes, newest last: (udf, reads, writes) name tuples —
        #: the audit trail tests and ``repro run --sanitize`` report from.
        self.log: list[dict] = []

    # ------------------------------------------------------------------
    # Scope protocol (driven by the Context's apply operators)
    # ------------------------------------------------------------------
    def begin_apply(self, udf_name: str, frontier=None, edges=None) -> None:
        if self.active is not None:  # pragma: no cover - operator bug guard
            raise SanitizerError(
                f"sanitizer scope for UDF {self.active.udf_name!r} is still "
                f"open while entering {udf_name!r}"
            )
        contract = self.summary.get(udf_name)
        if contract is None:
            raise SanitizerError(
                f"no static effect summary for UDF {udf_name!r}; the "
                f"generated module and its compilation plan disagree"
            )
        self.active = _Scope(udf_name, contract, frontier, edges)

    def abort(self) -> None:
        """Drop the active scope without validating (the dispatch raised)."""
        self.active = None

    def end_apply(self) -> None:
        scope = self.active
        self.active = None
        if scope is None:  # pragma: no cover - operator bug guard
            raise SanitizerError("end_apply without an active sanitizer scope")
        contract = scope.contract
        readable = set(contract["reads"]) | set(contract["writes"])
        for name in sorted(scope.read_names):
            if name not in readable:
                raise SanitizerError(
                    f"UDF {scope.udf_name!r} read vector {name!r} at run "
                    f"time, which its static effect summary does not "
                    f"mention (reads={sorted(readable)})"
                )
        writable = set(contract["writes"])
        for name in sorted(scope.writes):
            if name not in writable:
                raise SanitizerError(
                    f"UDF {scope.udf_name!r} wrote vector {name!r} at run "
                    f"time, outside its static write set "
                    f"({sorted(writable)})"
                )
        self._check_containment(scope)
        self.log.append(
            {
                "udf": scope.udf_name,
                "reads": sorted(scope.read_names),
                "writes": sorted(scope.writes),
            }
        )

    # ------------------------------------------------------------------
    # Recording (driven by SanitizedVector element accesses)
    # ------------------------------------------------------------------
    def record_read(self, name: str, key) -> None:
        self.active.read_names.add(name)

    def record_write(self, name: str, key) -> None:
        scope = self.active
        if name in scope.contract.get("racy", ()):
            # Rule 4: the static pass classified this site unordered racy
            # (R001); executing the write anyway means the compile-time
            # refusal was bypassed.  Raise at the write, before the wrong
            # value lands.
            self.active = None
            raise SanitizerError(
                f"UDF {scope.udf_name!r} is writing vector {name!r}, which "
                f"the static race analysis classified unordered racy "
                f"(R001); refusing to let the write commit"
            )
        indices = _key_indices(key)
        if indices is None:
            scope.unbounded_writes.add(name)
            scope.writes.setdefault(name, [])
        else:
            scope.writes.setdefault(name, []).append(indices)

    # ------------------------------------------------------------------
    # Rule 3: frontier containment of written indices
    # ------------------------------------------------------------------
    def _check_containment(self, scope: _Scope) -> None:
        if scope.frontier is None or scope.edges is None:
            return
        from .frontier import gather_out_edges

        frontier = np.asarray(scope.frontier, dtype=np.int64)
        mask: np.ndarray | None = None
        for name, chunks in scope.writes.items():
            provenances = set(
                scope.contract.get("write_index", {}).get(name, ())
            )
            if not provenances or not provenances <= {"src", "dst"}:
                # The static summary admits local/unknown indices for this
                # vector — any vertex id is in-contract, nothing to check.
                continue
            if name in scope.unbounded_writes or not chunks:
                continue
            if mask is None:
                mask = np.zeros(scope.edges.num_vertices, dtype=bool)
                mask[frontier] = True
                _, destinations, _ = gather_out_edges(scope.edges, frontier)
                mask[destinations] = True
            written = np.concatenate(chunks)
            escaped = written[~mask[written]]
            if escaped.size:
                raise SanitizerError(
                    f"UDF {scope.udf_name!r} wrote vector {name!r} at "
                    f"vertex {int(escaped[0])}, outside the frontier and "
                    f"its out-neighborhood; the static summary claims all "
                    f"writes are {sorted(provenances)}-indexed"
                )
