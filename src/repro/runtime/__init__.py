"""Parallel-runtime substrate: stats, atomics, virtual threads, frontiers,
and the schedule sanitizer."""

from .atomics import AtomicOps
from .frontier import (
    TOMBSTONE,
    compact_frontier,
    gather_in_edges,
    gather_out_edges,
    gather_segments,
    output_buffer_offsets,
)
from .histogram import apply_constant_sum, histogram_counts
from .parallel import EXECUTION_MODES, ParallelExecutionEngine, shutdown_executors
from .sanitizer import SanitizedVector, Sanitizer, SanitizerError
from .stats import DEFAULT_COST_MODEL, CostModel, RuntimeStats
from .threads import PARALLELIZATION_POLICIES, VirtualThreadPool

__all__ = [
    "AtomicOps",
    "RuntimeStats",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "VirtualThreadPool",
    "PARALLELIZATION_POLICIES",
    "ParallelExecutionEngine",
    "EXECUTION_MODES",
    "shutdown_executors",
    "TOMBSTONE",
    "output_buffer_offsets",
    "compact_frontier",
    "gather_segments",
    "gather_out_edges",
    "gather_in_edges",
    "histogram_counts",
    "apply_constant_sum",
    "Sanitizer",
    "SanitizedVector",
    "SanitizerError",
]
