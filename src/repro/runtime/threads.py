"""Deterministic virtual-thread work partitioning.

The eager bucketing runtime is defined in terms of thread-local state (each
thread owns its local buckets — Figures 6 and 7 of the paper), so the notion
of "which thread processes which vertex" must exist even though Python
executes sequentially.  :class:`VirtualThreadPool` deterministically assigns
frontier vertices to virtual threads using the same policies GraphIt's
scheduling language exposes through ``configApplyParallelization``:

- ``static-vertex-parallel``: contiguous block partitioning (OpenMP static).
- ``dynamic-vertex-parallel``: chunks of ``chunk_size`` vertices dealt
  round-robin (OpenMP ``schedule(dynamic, 64)`` under a deterministic
  serialization).
- ``edge-aware-dynamic-vertex-parallel``: chunks balanced by out-degree sum,
  emulating GraphIt's edge-aware load balancing.

Since PR 3 the pool is no longer purely virtual: constructed with
``execution="parallel"`` it owns a :class:`ParallelExecutionEngine` that runs
the per-thread partitions on *real* worker threads (``run_round``), while
``execution="serial"`` (the default) preserves the historical inline loop
bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..errors import SchedulingError
from .parallel import EXECUTION_MODES, ParallelExecutionEngine

__all__ = ["VirtualThreadPool", "PARALLELIZATION_POLICIES", "EXECUTION_MODES"]

PARALLELIZATION_POLICIES = (
    "static-vertex-parallel",
    "dynamic-vertex-parallel",
    "edge-aware-dynamic-vertex-parallel",
)


class VirtualThreadPool:
    """Partitions work items across a fixed number of virtual threads."""

    def __init__(
        self,
        num_threads: int = 8,
        policy: str = "dynamic-vertex-parallel",
        chunk_size: int = 64,
        execution: str = "serial",
    ):
        if num_threads < 1:
            raise SchedulingError("num_threads must be positive")
        if policy not in PARALLELIZATION_POLICIES:
            raise SchedulingError(
                f"unknown parallelization policy {policy!r}; "
                f"expected one of {PARALLELIZATION_POLICIES}"
            )
        if chunk_size < 1:
            raise SchedulingError("chunk_size must be positive")
        if execution not in EXECUTION_MODES:
            raise SchedulingError(
                f"unknown execution mode {execution!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        self.num_threads = int(num_threads)
        self.policy = policy
        self.chunk_size = int(chunk_size)
        self.execution = execution
        self.engine = ParallelExecutionEngine(self.num_threads, execution)

    @property
    def is_parallel(self) -> bool:
        """True when rounds run on real worker threads."""
        return self.engine.is_parallel

    def bind_stats(self, stats) -> None:
        """Attach a RuntimeStats sink for barrier/wall-time observables."""
        self.engine.stats = stats

    def run_round(
        self,
        chunks: Sequence[np.ndarray],
        produce: Callable[[np.ndarray, int], Any],
        commit: Callable[[np.ndarray, int, Any], None],
        ordered: bool = True,
    ) -> None:
        """Execute one round's chunks via the execution engine.

        See :meth:`ParallelExecutionEngine.run_round` for the produce/commit
        contract.  In serial mode this is exactly the historical inline loop.
        """
        self.engine.run_round(chunks, produce, commit, ordered=ordered)

    def partition(
        self, items: np.ndarray, degrees: np.ndarray | None = None
    ) -> list[np.ndarray]:
        """Split ``items`` into one array per thread.

        Parameters
        ----------
        items:
            The work items (vertex ids) of the current round.
        degrees:
            Out-degrees aligned with ``items``; required by (and only used
            for) the edge-aware policy.
        """
        items = np.asarray(items, dtype=np.int64)
        if items.size == 0:
            # Uniform empty split for every policy (previously the static and
            # edge-aware paths could return differently-shaped empties).
            return [np.empty(0, dtype=np.int64) for _ in range(self.num_threads)]
        if self.policy == "static-vertex-parallel":
            return self._partition_static(items)
        if self.policy == "dynamic-vertex-parallel":
            return self._partition_chunked(items)
        if degrees is None:
            raise SchedulingError(
                "edge-aware partitioning requires per-item degrees"
            )
        return self._partition_edge_aware(items, np.asarray(degrees, dtype=np.int64))

    def _partition_static(self, items: np.ndarray) -> list[np.ndarray]:
        # np.array_split gives contiguous, nearly equal blocks.
        return [np.ascontiguousarray(part) for part in np.array_split(items, self.num_threads)]

    def _partition_chunked(self, items: np.ndarray) -> list[np.ndarray]:
        # Edge case: a chunk_size larger than the frontier used to funnel the
        # whole round onto thread 0 as one oversized chunk.  Cap the chunk so
        # such a frontier still spreads across the pool.  Frontiers bigger
        # than chunk_size keep the historical dealing bit-for-bit.
        effective_chunk = self.chunk_size
        if items.size <= self.chunk_size:
            effective_chunk = max(1, -(-items.size // self.num_threads))
        parts: list[list[np.ndarray]] = [[] for _ in range(self.num_threads)]
        for chunk_index, start in enumerate(range(0, items.size, effective_chunk)):
            thread = chunk_index % self.num_threads
            parts[thread].append(items[start : start + effective_chunk])
        return [
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            for chunks in parts
        ]

    def _partition_edge_aware(
        self, items: np.ndarray, degrees: np.ndarray
    ) -> list[np.ndarray]:
        """Contiguous partition with (approximately) equal degree sums.

        The boundaries are placed where the running degree sum crosses each
        thread's fair share — GraphIt's edge-aware split.  A single
        high-degree vertex still binds to one thread (vertices are the unit
        of work distribution), but the remaining vertices spread so no
        thread carries a hub *plus* a full share of light vertices.
        """
        if degrees.shape != items.shape:
            raise SchedulingError("degrees must align with items")
        if items.size == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(self.num_threads)]
        # Each vertex costs its degree plus one unit of frontier overhead.
        costs = degrees + 1
        cumulative = np.cumsum(costs)
        total = int(cumulative[-1])
        # Greedy fair-share boundaries: each thread takes vertices until its
        # cost reaches (remaining cost) / (remaining threads).  Unlike the
        # old one-shot searchsorted against the *global* fair share, this
        # re-balances after a hub vertex blows one thread's budget, so a
        # degree distribution like [100, 0, 0, 0] across 4 threads yields
        # [hub], [v1], [v2], [v3] rather than [hub], [], [], [v1 v2 v3] —
        # and an all-zero-degree frontier (costs all 1) degenerates to an
        # even contiguous split instead of a skewed one.
        bounds: list[int] = []
        start = 0
        for parts_left in range(self.num_threads, 1, -1):
            if start >= items.size:
                bounds.append(start)
                continue
            consumed = int(cumulative[start - 1]) if start > 0 else 0
            fair = (total - consumed) / parts_left
            end = int(np.searchsorted(cumulative, consumed + fair, side="left")) + 1
            end = min(max(end, start + 1), items.size)
            # Never strand remaining threads with nothing while items remain.
            max_end = items.size - (parts_left - 1)
            if max_end > start:
                end = min(end, max_end)
            bounds.append(end)
            start = end
        pieces = np.split(items, bounds)
        return [np.ascontiguousarray(piece) for piece in pieces]
