"""Deterministic virtual-thread work partitioning.

The eager bucketing runtime is defined in terms of thread-local state (each
thread owns its local buckets — Figures 6 and 7 of the paper), so the notion
of "which thread processes which vertex" must exist even though Python
executes sequentially.  :class:`VirtualThreadPool` deterministically assigns
frontier vertices to virtual threads using the same policies GraphIt's
scheduling language exposes through ``configApplyParallelization``:

- ``static-vertex-parallel``: contiguous block partitioning (OpenMP static).
- ``dynamic-vertex-parallel``: chunks of ``chunk_size`` vertices dealt
  round-robin (OpenMP ``schedule(dynamic, 64)`` under a deterministic
  serialization).
- ``edge-aware-dynamic-vertex-parallel``: chunks balanced by out-degree sum,
  emulating GraphIt's edge-aware load balancing.
"""

from __future__ import annotations

import numpy as np

from ..errors import SchedulingError

__all__ = ["VirtualThreadPool", "PARALLELIZATION_POLICIES"]

PARALLELIZATION_POLICIES = (
    "static-vertex-parallel",
    "dynamic-vertex-parallel",
    "edge-aware-dynamic-vertex-parallel",
)


class VirtualThreadPool:
    """Partitions work items across a fixed number of virtual threads."""

    def __init__(
        self,
        num_threads: int = 8,
        policy: str = "dynamic-vertex-parallel",
        chunk_size: int = 64,
    ):
        if num_threads < 1:
            raise SchedulingError("num_threads must be positive")
        if policy not in PARALLELIZATION_POLICIES:
            raise SchedulingError(
                f"unknown parallelization policy {policy!r}; "
                f"expected one of {PARALLELIZATION_POLICIES}"
            )
        if chunk_size < 1:
            raise SchedulingError("chunk_size must be positive")
        self.num_threads = int(num_threads)
        self.policy = policy
        self.chunk_size = int(chunk_size)

    def partition(
        self, items: np.ndarray, degrees: np.ndarray | None = None
    ) -> list[np.ndarray]:
        """Split ``items`` into one array per thread.

        Parameters
        ----------
        items:
            The work items (vertex ids) of the current round.
        degrees:
            Out-degrees aligned with ``items``; required by (and only used
            for) the edge-aware policy.
        """
        items = np.asarray(items, dtype=np.int64)
        if self.policy == "static-vertex-parallel":
            return self._partition_static(items)
        if self.policy == "dynamic-vertex-parallel":
            return self._partition_chunked(items)
        if degrees is None:
            raise SchedulingError(
                "edge-aware partitioning requires per-item degrees"
            )
        return self._partition_edge_aware(items, np.asarray(degrees, dtype=np.int64))

    def _partition_static(self, items: np.ndarray) -> list[np.ndarray]:
        # np.array_split gives contiguous, nearly equal blocks.
        return [np.ascontiguousarray(part) for part in np.array_split(items, self.num_threads)]

    def _partition_chunked(self, items: np.ndarray) -> list[np.ndarray]:
        parts: list[list[np.ndarray]] = [[] for _ in range(self.num_threads)]
        for chunk_index, start in enumerate(range(0, items.size, self.chunk_size)):
            thread = chunk_index % self.num_threads
            parts[thread].append(items[start : start + self.chunk_size])
        return [
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            for chunks in parts
        ]

    def _partition_edge_aware(
        self, items: np.ndarray, degrees: np.ndarray
    ) -> list[np.ndarray]:
        """Contiguous partition with (approximately) equal degree sums.

        The boundaries are placed where the running degree sum crosses each
        thread's fair share — GraphIt's edge-aware split.  A single
        high-degree vertex still binds to one thread (vertices are the unit
        of work distribution), but the remaining vertices spread so no
        thread carries a hub *plus* a full share of light vertices.
        """
        if degrees.shape != items.shape:
            raise SchedulingError("degrees must align with items")
        if items.size == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(self.num_threads)]
        # Each vertex costs its degree plus one unit of frontier overhead.
        costs = degrees + 1
        cumulative = np.cumsum(costs)
        total = int(cumulative[-1])
        targets = np.arange(1, self.num_threads, dtype=np.int64) * total
        boundaries = np.searchsorted(
            cumulative * self.num_threads, targets, side="left"
        ) + 1
        boundaries = np.clip(boundaries, 0, items.size)
        pieces = np.split(items, boundaries)
        return [np.ascontiguousarray(piece) for piece in pieces]
