"""Histogram-based reduction of constant-sum priority updates.

Julienne (and Section 5.1 of the paper) observe that when a user-defined
function always changes a priority by the same constant (k-core decrements
each neighbour's degree by exactly 1), the per-edge updates can be replaced
by counting: build a histogram of how many updates target each vertex, then
apply the transformed user function once per vertex with its count
(Figure 10).  This avoids atomic contention on high-degree vertices.
"""

from __future__ import annotations

import numpy as np

from .stats import RuntimeStats

__all__ = ["histogram_counts", "apply_constant_sum"]


def histogram_counts(
    targets: np.ndarray, stats: RuntimeStats | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Count occurrences of each target vertex.

    Returns ``(vertices, counts)`` with ``vertices`` sorted and unique.  The
    histogram build itself is charged as one ``histogram_update`` per input
    element (each element is binned once).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if stats is not None:
        stats.histogram_updates += int(targets.size)
    if targets.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    vertices, counts = np.unique(targets, return_counts=True)
    return vertices, counts.astype(np.int64)


def apply_constant_sum(
    priorities: np.ndarray,
    vertices: np.ndarray,
    counts: np.ndarray,
    constant: int,
    floor_value: int | None = None,
) -> np.ndarray:
    """Apply ``priority[v] += constant * count`` with an optional floor/ceiling.

    This is the vectorized body of the transformed user-defined function in
    Figure 10: for k-core, ``constant = -1`` and ``floor_value = k`` (the
    current bucket's priority), producing
    ``new = max(priority + (-1) * count, k)``.

    Returns the new priority values aligned with ``vertices``; the caller is
    responsible for routing changed vertices to their new buckets.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    new_values = priorities[vertices] + constant * counts
    if floor_value is not None:
        if constant < 0:
            new_values = np.maximum(new_values, floor_value)
        else:
            new_values = np.minimum(new_values, floor_value)
    priorities[vertices] = new_values
    return new_values
