"""Real shared-memory parallel execution of ordered-processing rounds.

Until PR 3 the runtime was *simulated*-parallel only: :class:`VirtualThreadPool`
partitioned every frontier into per-thread chunks, but the chunks were executed
one after another on the calling thread.  PR 2 changed the economics — the
batch numpy kernels that now implement every vectorizable ``apply`` release the
GIL while they gather edges and scan segments, so running the per-thread
partitions on *real* threads buys genuine overlap on multicore hardware.

:class:`ParallelExecutionEngine` is the piece that makes that safe.  It builds
on one structural observation about the PR 2 kernels: every round splits into

``produce``
    a pure, read-only phase (CSR edge gathers, per-chunk running-extrema
    scans, histogram counting) that only *reads* shared state, and

``commit``
    a mutating phase (priority-vector writes, bucket/buffer inserts,
    statistics) that is cheap relative to ``produce``.

The engine therefore runs all ``produce`` calls concurrently on a worker pool
and then applies the ``commit`` calls on the coordinating thread:

- **ordered commits** (lazy, lazy-constant-sum, eager): commits run in chunk
  order after a round barrier.  Because the commit sequence is then *exactly*
  the sequence the serial engine executes, outputs and every
  :class:`~repro.runtime.stats.RuntimeStats` counter are bit-identical to the
  sequential oracle by construction — this is the determinism contract the
  differential test layer enforces.  The barrier is the paper's Fig. 5
  synchronization point; the engine records how long the coordinator waited
  on it (``barrier_wait_time``) and how often (``barrier_waits``).
- **unordered commits** (relaxed ordering): commits run in completion order
  under a lock, modelling Galois-style relaxed priority scheduling where
  priority inversions are allowed and only a fixpoint is guaranteed.

In ``serial`` mode the engine degenerates to the inline loop the runtime has
always executed — same object code path, zero threads, zero new stats — so
``execution=serial`` remains the bit-exact baseline and the default.

Worker threads are drawn from process-wide :class:`ThreadPoolExecutor`
instances cached per worker count, so repeated rounds (thousands for
delta-stepping on large graphs) never pay thread start-up, and the process
never leaks an unbounded number of threads.
"""

from __future__ import annotations

import atexit
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import SchedulingError
from ..obs import metrics
from ..obs import span as trace_span

__all__ = ["ParallelExecutionEngine", "EXECUTION_MODES", "shutdown_executors"]

_ROUNDS = metrics.counter("parallel.rounds")
_CHUNK_SIZE = metrics.histogram("parallel.chunk_size")
_WORKERS = metrics.gauge("parallel.workers")
_SHARD_MERGES = metrics.counter("parallel.shard_merges")
_BARRIER_WAIT_US = metrics.histogram("parallel.barrier_wait_us")

# "native" dispatches to a compiled shared-library kernel before the Python
# runtime is entered; if that falls through (no toolchain — N101) the Python
# engine treats the mode exactly like "serial" (nothing below branches on
# it), which *is* the documented fallback behaviour.
EXECUTION_MODES = ("serial", "parallel", "native")

# ---------------------------------------------------------------------------
# Shared worker pools
# ---------------------------------------------------------------------------

_EXECUTORS: dict[int, ThreadPoolExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def _shared_executor(num_workers: int) -> ThreadPoolExecutor:
    """Return the process-wide executor with ``num_workers`` threads."""
    with _EXECUTORS_LOCK:
        pool = _EXECUTORS.get(num_workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=num_workers,
                thread_name_prefix=f"repro-worker-{num_workers}",
            )
            _EXECUTORS[num_workers] = pool
        return pool


def shutdown_executors() -> None:
    """Shut down every cached worker pool (idempotent; used by tests/atexit)."""
    with _EXECUTORS_LOCK:
        pools = list(_EXECUTORS.values())
        _EXECUTORS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_executors)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

Produce = Callable[[np.ndarray, int], Any]
Commit = Callable[[np.ndarray, int, Any], None]


class ParallelExecutionEngine:
    """Executes one round's per-thread chunks serially or on real threads.

    Parameters
    ----------
    num_workers:
        Number of OS worker threads used in ``parallel`` mode (also the
        number of virtual threads the chunks were partitioned for).
    mode:
        ``"serial"`` (inline loop, the bit-exact baseline) or ``"parallel"``
        (real :class:`ThreadPoolExecutor` workers).
    stats:
        Optional :class:`~repro.runtime.stats.RuntimeStats` receiving
        per-worker wall time and barrier-wait counters.  Serial mode never
        touches it, so serial stat dumps stay byte-identical to earlier
        releases.
    """

    def __init__(self, num_workers: int = 1, mode: str = "serial", stats=None):
        if mode not in EXECUTION_MODES:
            raise SchedulingError(
                f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
            )
        if num_workers < 1:
            raise SchedulingError("num_workers must be positive")
        self.num_workers = int(num_workers)
        self.mode = mode
        self.stats = stats
        self._commit_lock = threading.Lock()

    # -- helpers ---------------------------------------------------------

    @property
    def is_parallel(self) -> bool:
        return self.mode == "parallel" and self.num_workers > 1

    def _record(
        self,
        worker_times: dict[int, float],
        barrier_wait: float,
        chunks: Sequence[np.ndarray],
    ) -> None:
        if self.stats is not None:
            self.stats.record_parallel_round(worker_times, barrier_wait)
        _ROUNDS.inc()
        _WORKERS.set(self.num_workers)
        _BARRIER_WAIT_US.observe(int(barrier_wait * 1e6))
        for chunk in chunks:
            if len(chunk):
                _CHUNK_SIZE.observe(len(chunk))
        # The round barrier is the natural merge point for the per-worker
        # metric shards: every worker is quiescent here, and the merges are
        # commutative sums, so the merged registry state is deterministic.
        _SHARD_MERGES.inc()
        metrics.merge_shards()

    # -- round execution -------------------------------------------------

    def run_round(
        self,
        chunks: Sequence[np.ndarray],
        produce: Produce,
        commit: Commit,
        ordered: bool = True,
    ) -> None:
        """Run one round: ``produce`` every chunk, then ``commit`` each result.

        ``produce(chunk, thread_id)`` must be read-only with respect to
        shared algorithm state; ``commit(chunk, thread_id, payload)`` owns all
        mutation.  With ``ordered=True`` commits happen in chunk order after a
        barrier (deterministic; equals the serial schedule).  With
        ``ordered=False`` commits happen in completion order under a lock
        (relaxed strategies only).
        """
        if not self.is_parallel:
            for thread_id, chunk in enumerate(chunks):
                if len(chunk) == 0:
                    continue
                commit(chunk, thread_id, produce(chunk, thread_id))
            return
        if ordered:
            self._run_round_ordered(chunks, produce, commit)
        else:
            self._run_round_unordered(chunks, produce, commit)

    def _run_round_ordered(
        self, chunks: Sequence[np.ndarray], produce: Produce, commit: Commit
    ) -> None:
        work = [(tid, chunk) for tid, chunk in enumerate(chunks) if len(chunk)]
        if not work:
            return
        if len(work) == 1:
            # One populated chunk: threading buys nothing, skip the hop.
            tid, chunk = work[0]
            commit(chunk, tid, produce(chunk, tid))
            return
        pool = _shared_executor(self.num_workers)

        def timed_produce(chunk: np.ndarray, tid: int) -> tuple[Any, float]:
            # The span lands on the *worker's* trace track (per-worker chunk
            # spans); ``worker`` carries the logical virtual-thread id.
            with trace_span(
                "worker.produce", "parallel", worker=tid, chunk=int(len(chunk))
            ):
                start = time.perf_counter()
                payload = produce(chunk, tid)
                return payload, time.perf_counter() - start

        futures: list[tuple[int, np.ndarray, Future]] = [
            (tid, chunk, pool.submit(timed_produce, chunk, tid))
            for tid, chunk in work
        ]
        # Round barrier (Fig. 5): the coordinator blocks until every private
        # produce is done, then replays commits in chunk order.
        with trace_span("barrier.wait", "parallel", chunks=len(futures)):
            barrier_start = time.perf_counter()
            wait([fut for _, _, fut in futures])
            barrier_wait = time.perf_counter() - barrier_start
        worker_times: dict[int, float] = {}
        with trace_span("commit.replay", "parallel", ordered=True):
            for tid, chunk, fut in futures:
                payload, elapsed = fut.result()
                worker_times[tid] = worker_times.get(tid, 0.0) + elapsed
                commit(chunk, tid, payload)
        self._record(worker_times, barrier_wait, chunks)

    def _run_round_unordered(
        self, chunks: Sequence[np.ndarray], produce: Produce, commit: Commit
    ) -> None:
        work = [(tid, chunk) for tid, chunk in enumerate(chunks) if len(chunk)]
        if not work:
            return
        if len(work) == 1:
            tid, chunk = work[0]
            commit(chunk, tid, produce(chunk, tid))
            return
        pool = _shared_executor(self.num_workers)
        worker_times: dict[int, float] = {}
        times_lock = threading.Lock()

        def produce_and_commit(chunk: np.ndarray, tid: int) -> None:
            with trace_span(
                "worker.produce", "parallel", worker=tid, chunk=int(len(chunk))
            ):
                start = time.perf_counter()
                payload = produce(chunk, tid)
                elapsed = time.perf_counter() - start
            # Relaxed ordering: commits interleave in completion order; the
            # lock guards the shared commit path, not a global round order.
            with trace_span("commit", "parallel", worker=tid, ordered=False):
                with self._commit_lock:
                    commit(chunk, tid, payload)
            with times_lock:
                worker_times[tid] = worker_times.get(tid, 0.0) + elapsed

        futures = [pool.submit(produce_and_commit, chunk, tid) for tid, chunk in work]
        barrier_start = time.perf_counter()
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                fut.result()  # propagate worker exceptions
        barrier_wait = time.perf_counter() - barrier_start
        self._record(worker_times, barrier_wait, chunks)
