"""``repro analyze`` — the whole-program effect analysis, as a document.

Builds a JSON-serializable report from one or more DSL programs:

- the per-UDF effect summaries (read/write/index sets, def-use chains),
- queue metadata and monotonicity verdicts with schedule admissibility,
- the runtime projection the schedule sanitizer checks against, and
- the pairwise fusion-safety matrix across every analyzed program (the
  single-program case reports the program's self-pair, i.e. whether it is
  structurally eligible to fuse with a compatible partner at all).

The same builder backs the CLI (``repro analyze --format json|text``) and
the golden effect-summary snapshot tests, so the checked-in goldens are
exactly what the tool prints.
"""

from __future__ import annotations

from .errors import CompileError, SchedulingError
from .lang.parser import parse
from .midend.analysis.effects import (
    ProgramEffectSummary,
    check_fusion_safety,
    fusion_matrix,
)
from .midend.schedule import Schedule
from .midend.transforms.lowering import plan_program

__all__ = [
    "analyze_source",
    "build_analysis_document",
    "render_analysis_text",
]


def _plan_source(source: str, schedule: Schedule | None, filename: str | None):
    """Compile ``source`` through the midend and return the full plan.

    Schedule resolution mirrors ``repro lint``: with no explicit schedule
    the program's own inline ``schedule:`` block applies, and programs
    whose default plan is infeasible (e.g. an extern bucket processor
    rejecting the eager default) are retried under the lazy strategy they
    require.
    """
    program = parse(source, filename)
    try:
        plan = plan_program(program, schedule)
    except (SchedulingError, CompileError):
        if schedule is not None:
            raise
        plan = plan_program(program, Schedule(priority_update="lazy"))
    if plan.effects is None:  # pragma: no cover - plan_program always fills it
        raise CompileError("midend produced no effect summary")
    return plan


def analyze_source(
    source: str,
    schedule: Schedule | None = None,
    filename: str | None = None,
) -> tuple[ProgramEffectSummary, Schedule]:
    """Compile ``source`` through the midend and return its effect summary."""
    plan = _plan_source(source, schedule, filename)
    return plan.effects, plan.schedule


def build_analysis_document(
    sources: dict[str, str],
    schedule: Schedule | None = None,
) -> dict:
    """The full ``repro analyze`` report over named ``sources``.

    ``sources`` maps a display name (file path or built-in name) to DSL
    text.  Programs are analyzed independently; the fusion matrix covers
    every unordered pair, plus each program's self-pair when only one
    program is given.
    """
    programs: dict[str, dict] = {}
    summaries: dict[str, ProgramEffectSummary] = {}
    for name, source in sources.items():
        plan = _plan_source(source, schedule, filename=name)
        effects, resolved = plan.effects, plan.schedule
        summaries[name] = effects
        programs[name] = {
            "schedule": {
                "priority_update": resolved.priority_update,
                "direction": resolved.direction,
                "delta": resolved.delta,
            },
            "effects": effects.to_json(),
            "runtime_summary": effects.runtime_summary(),
            "incremental": (
                plan.incremental_eligibility.to_json()
                if plan.incremental_eligibility is not None
                else None
            ),
        }
    if len(summaries) == 1:
        ((name, effects),) = summaries.items()
        fusion = [check_fusion_safety(name, effects, name, effects).to_json()]
    else:
        fusion = [v.to_json() for v in fusion_matrix(summaries)]
    return {"programs": programs, "fusion": fusion}


def render_analysis_text(document: dict) -> str:
    """Human-readable rendering of :func:`build_analysis_document`."""
    lines: list[str] = []
    for name, report in document["programs"].items():
        schedule = report["schedule"]
        effects = report["effects"]
        lines.append(
            f"{name} [{schedule['priority_update']}, "
            f"{schedule['direction']}, delta={schedule['delta']}]"
        )
        loop = effects["ordered_loop"]
        if loop["recognized"]:
            lines.append(
                f"  ordered loop: udf={loop['udf']} queue={loop['queue']}"
                + (" (extern processing)" if loop["extern_processing"] else "")
            )
        else:
            lines.append("  ordered loop: none recognized")
        for queue_name, queue in effects["queues"].items():
            lines.append(
                f"  queue {queue_name}: order={queue['order']} "
                f"priority_vector={queue['priority_vector']}"
            )
        for udf_name, udf in effects["udfs"].items():
            lines.append(
                f"  udf {udf_name}: reads={udf['reads']} "
                f"writes={udf['writes']} scalar_writes={udf['scalar_writes']}"
            )
            for access in udf["accesses"]:
                lines.append(
                    f"    {access['kind']} {access['rendered']} "
                    f"[{access['provenance']}"
                    f"{', owned' if access['owned'] else ''}"
                    f"{', guarded' if access['guarded_monotonic'] else ''}] "
                    f"line {access['line']}"
                )
        for verdict in effects["monotonicity"]:
            status = "admissible" if verdict["admissible"] else "INADMISSIBLE"
            lines.append(
                f"  monotonicity {verdict['site']}: {verdict['verdict']} "
                f"({status}) — {verdict['reason']}"
            )
        incremental = report.get("incremental")
        if incremental is not None:
            if incremental["eligible"]:
                lines.append(
                    f"  incremental: ELIGIBLE ({incremental['kind']}-combine"
                    + (
                        f", shape={incremental['relaxation_shape']}"
                        if incremental["relaxation_shape"]
                        else ""
                    )
                    + ")"
                )
            else:
                lines.append("  incremental: ineligible")
                for reason in incremental["reasons"]:
                    lines.append(f"    - {reason}")
        lines.append("")
    for verdict in document["fusion"]:
        first, second = verdict["pair"]
        if verdict["fusable"]:
            lines.append(f"fusion {first} x {second}: FUSABLE")
        else:
            lines.append(f"fusion {first} x {second}: blocked")
            for reason in verdict["reasons"]:
                lines.append(f"  - {reason}")
    return "\n".join(lines).rstrip() + "\n"
