"""Ensemble stochastic search (OpenTuner-inspired, Section 5.3).

The autotuner in the paper is built on OpenTuner and uses "an ensemble of
search methods, such as the area under curve bandit meta technique".  This
module implements a compact version of that architecture:

- three *techniques* generate candidate schedules: uniform random sampling,
  greedy mutation of the incumbent, and Δ bisection (binary-style probing of
  the coarsening factor, the most sensitive integer parameter), and
- a multi-armed bandit (UCB1 over per-technique reward = fraction of recent
  proposals that improved the incumbent) selects which technique proposes
  the next candidate.

The objective is an arbitrary ``schedule -> cost`` callable; failed or
invalid configurations score infinity.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import GraphItError
from ..midend.schedule import Schedule
from .space import ScheduleSpace

__all__ = ["Trial", "EnsembleSearch"]


@dataclass
class Trial:
    """One evaluated schedule."""

    schedule: Schedule
    cost: float
    technique: str
    index: int


@dataclass
class _Technique:
    name: str
    propose: Callable[[Schedule | None], Schedule]
    uses: int = 0
    improvements: int = 0

    def reward(self) -> float:
        if self.uses == 0:
            return 1.0
        return self.improvements / self.uses


class EnsembleSearch:
    """Bandit-scheduled ensemble of schedule-proposal techniques."""

    def __init__(
        self,
        space: ScheduleSpace,
        objective: Callable[[Schedule], float],
        seed: int = 0,
        seed_schedules: list[Schedule] | None = None,
    ):
        self.space = space
        self.objective = objective
        self.rng = np.random.default_rng(seed)
        # Canonical starting points evaluated before the stochastic loop
        # (OpenTuner seeds its search the same way); they anchor the greedy
        # mutation so a 30-40 trial budget cannot miss the right regime.
        if seed_schedules is None:
            seed_schedules = self._default_seed_schedules()
        self.seed_schedules = seed_schedules
        self.trials: list[Trial] = []
        self.best: Trial | None = None
        self._seen: set[tuple] = set()
        self._techniques = [
            _Technique("random", self._propose_random),
            _Technique("greedy-mutation", self._propose_mutation),
            _Technique("delta-bisection", self._propose_delta_bisection),
        ]

    # ------------------------------------------------------------------
    # Techniques
    # ------------------------------------------------------------------
    def _propose_random(self, incumbent: Schedule | None) -> Schedule:
        return self.space.random_schedule(self.rng)

    def _propose_mutation(self, incumbent: Schedule | None) -> Schedule:
        if incumbent is None:
            return self.space.random_schedule(self.rng)
        return self.space.mutate(incumbent, self.rng)

    def _propose_delta_bisection(self, incumbent: Schedule | None) -> Schedule:
        """Probe Δ geometrically around the incumbent's value."""
        if incumbent is None or len(self.space.deltas) == 1:
            return self.space.random_schedule(self.rng)
        deltas = self.space.deltas
        index = deltas.index(incumbent.delta) if incumbent.delta in deltas else 0
        lo, hi = 0, len(deltas) - 1
        midpoints = sorted({(lo + index) // 2, (index + hi + 1) // 2})
        choice = int(self.rng.choice(midpoints))
        return incumbent.with_(delta=deltas[choice])

    # ------------------------------------------------------------------
    # Bandit selection (UCB1 over improvement rate)
    # ------------------------------------------------------------------
    def _select_technique(self) -> _Technique:
        total = sum(t.uses for t in self._techniques) + 1
        best_score = -1.0
        best = self._techniques[0]
        for technique in self._techniques:
            exploration = math.sqrt(2.0 * math.log(total) / (technique.uses + 1))
            score = technique.reward() + exploration
            if score > best_score:
                best_score = score
                best = technique
        return best

    def _default_seed_schedules(self) -> list[Schedule]:
        deltas = self.space.deltas
        probe_deltas = sorted(
            {deltas[0], deltas[len(deltas) // 2], deltas[-1]}
        )
        seeds = []
        for strategy in self.space.strategies:
            for delta in probe_deltas:
                schedule = Schedule(
                    priority_update=strategy,
                    delta=delta,
                    num_threads=self.space.num_threads,
                )
                seeds.append(schedule)
        return seeds

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self, max_trials: int = 40, time_limit: float | None = None
    ) -> Trial:
        """Search up to ``max_trials`` evaluations (or until the time limit);
        returns the best trial."""
        start = time.perf_counter()
        for candidate in self.seed_schedules:
            if len(self.trials) >= max_trials:
                break
            key = self._key(candidate)
            if key in self._seen:
                continue
            self._seen.add(key)
            try:
                cost = float(self.objective(candidate))
            except GraphItError:
                cost = float("inf")
            trial = Trial(
                schedule=candidate,
                cost=cost,
                technique="seed",
                index=len(self.trials),
            )
            self.trials.append(trial)
            if self.best is None or cost < self.best.cost:
                self.best = trial
        attempts = 0
        while len(self.trials) < max_trials and attempts < max_trials * 10:
            if time_limit is not None and time.perf_counter() - start > time_limit:
                break
            attempts += 1
            technique = self._select_technique()
            incumbent = self.best.schedule if self.best is not None else None
            candidate = technique.propose(incumbent)
            key = self._key(candidate)
            if key in self._seen:
                # Do not waste the trial budget on repeats: fall back to
                # fresh random samples until an unseen point turns up.
                for _ in range(25):
                    candidate = self.space.random_schedule(self.rng)
                    key = self._key(candidate)
                    if key not in self._seen:
                        break
                else:
                    continue
            self._seen.add(key)
            technique.uses += 1
            try:
                cost = float(self.objective(candidate))
            except GraphItError:
                cost = float("inf")
            trial = Trial(
                schedule=candidate,
                cost=cost,
                technique=technique.name,
                index=len(self.trials),
            )
            self.trials.append(trial)
            if self.best is None or cost < self.best.cost:
                self.best = trial
                technique.improvements += 1
        if self.best is None:
            raise GraphItError("autotuning evaluated no schedule")
        return self.best

    @staticmethod
    def _key(schedule: Schedule) -> tuple:
        return (
            schedule.priority_update,
            schedule.delta,
            schedule.bucket_fusion_threshold,
            schedule.num_buckets,
            schedule.direction,
            schedule.parallelization,
            schedule.chunk_size,
        )
