"""The autotuner front door: find a high-performance schedule for
(algorithm, graph) pairs — Section 5.3.

    result = autotune("sssp", graph, source=0, max_trials=40)
    result.best_schedule    # a Schedule usable with repro.algorithms.sssp

The objective can be wall-clock time or the simulated parallel time (which
is deterministic, so tests use it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..algorithms.astar import astar
from ..algorithms.kcore import kcore
from ..algorithms.ppsp import ppsp
from ..algorithms.setcover import setcover
from ..algorithms.sssp import sssp
from ..algorithms.wbfs import wbfs
from ..errors import AutotuneError
from ..graph.csr import CSRGraph
from ..midend.schedule import Schedule
from .search import EnsembleSearch, Trial
from .space import ScheduleSpace, default_space

__all__ = ["TuningResult", "autotune", "make_objective"]


@dataclass
class TuningResult:
    """Outcome of an autotuning session."""

    best_schedule: Schedule
    best_cost: float
    trials: list[Trial]
    elapsed_seconds: float
    space_size: int

    @property
    def num_trials(self) -> int:
        return len(self.trials)


def make_objective(
    algorithm: str,
    graph: CSRGraph,
    source: int = 0,
    target: int | None = None,
    metric: str = "simulated",
) -> Callable[[Schedule], float]:
    """Build the schedule -> cost function for one workload.

    ``metric`` is ``"simulated"`` (deterministic simulated parallel time) or
    ``"wall"`` (measured wall-clock seconds).
    """
    if metric not in ("simulated", "wall"):
        raise AutotuneError(f"unknown metric {metric!r}")
    if algorithm in ("ppsp", "astar") and target is None:
        raise AutotuneError(f"{algorithm} needs a target vertex")

    def run(schedule: Schedule):
        if algorithm == "sssp":
            return sssp(graph, source, schedule)
        if algorithm == "wbfs":
            return wbfs(graph, source, schedule)
        if algorithm == "ppsp":
            if target is None:
                raise AutotuneError("ppsp needs a target")
            return ppsp(graph, source, target, schedule)
        if algorithm == "astar":
            if target is None:
                raise AutotuneError("astar needs a target")
            return astar(graph, source, target, schedule)
        if algorithm == "kcore":
            return kcore(graph, schedule)
        if algorithm == "setcover":
            return setcover(graph, schedule)
        raise AutotuneError(f"unknown algorithm {algorithm!r}")

    def objective(schedule: Schedule) -> float:
        started = time.perf_counter()
        result = run(schedule)
        wall = time.perf_counter() - started
        if metric == "wall":
            return wall
        return result.stats.simulated_time()

    return objective


def autotune(
    algorithm: str,
    graph: CSRGraph,
    source: int = 0,
    target: int | None = None,
    max_trials: int = 40,
    time_limit: float | None = None,
    metric: str = "simulated",
    space: ScheduleSpace | None = None,
    num_threads: int = 8,
    seed: int = 0,
) -> TuningResult:
    """Stochastically search the schedule space for ``algorithm`` on
    ``graph`` (the paper reports 30-40 trials typically suffice)."""
    if space is None:
        space = default_space(algorithm, num_threads=num_threads)
    objective = make_objective(algorithm, graph, source, target, metric)
    search = EnsembleSearch(space, objective, seed=seed)
    started = time.perf_counter()
    best = search.run(max_trials=max_trials, time_limit=time_limit)
    elapsed = time.perf_counter() - started
    return TuningResult(
        best_schedule=best.schedule,
        best_cost=best.cost,
        trials=search.trials,
        elapsed_seconds=elapsed,
        space_size=space.size(),
    )
