"""The schedule search space for autotuning (Section 5.3).

The space spans the scheduling commands of Table 2 — update strategy, Δ
(powers of two, up to the paper's 2^17 for road networks), bucket-fusion
threshold, number of materialized buckets — plus the original GraphIt
direction and parallelization knobs.  Invalid combinations (eager with
DensePull, coarsening for strict-priority algorithms) are never generated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AutotuneError
from ..midend.schedule import Schedule

__all__ = ["ScheduleSpace", "default_space"]


@dataclass(frozen=True)
class ScheduleSpace:
    """Enumerable options per schedule dimension."""

    strategies: tuple[str, ...] = (
        "eager_with_fusion",
        "eager_no_fusion",
        "lazy",
    )
    deltas: tuple[int, ...] = tuple(2**k for k in range(0, 18))
    fusion_thresholds: tuple[int, ...] = (128, 512, 1000, 4096)
    num_buckets: tuple[int, ...] = (32, 128, 512)
    directions: tuple[str, ...] = ("SparsePush", "DensePull")
    parallelizations: tuple[str, ...] = (
        "dynamic-vertex-parallel",
        "static-vertex-parallel",
        "edge-aware-dynamic-vertex-parallel",
    )
    num_threads: int = 8
    chunk_sizes: tuple[int, ...] = (64,)

    def size(self) -> int:
        """Number of raw combinations (before validity filtering)."""
        return (
            len(self.strategies)
            * len(self.deltas)
            * len(self.fusion_thresholds)
            * len(self.num_buckets)
            * len(self.directions)
            * len(self.parallelizations)
            * len(self.chunk_sizes)
        )

    def random_schedule(self, rng: np.random.Generator) -> Schedule:
        """Sample a uniformly random *valid* schedule."""
        strategy = str(rng.choice(self.strategies))
        direction = str(rng.choice(self.directions))
        if strategy.startswith("eager"):
            direction = "SparsePush"
        return Schedule(
            priority_update=strategy,
            delta=int(rng.choice(self.deltas)),
            bucket_fusion_threshold=int(rng.choice(self.fusion_thresholds)),
            num_buckets=int(rng.choice(self.num_buckets)),
            direction=direction,
            parallelization=str(rng.choice(self.parallelizations)),
            num_threads=self.num_threads,
            chunk_size=int(rng.choice(self.chunk_sizes)),
        )

    def mutate(self, schedule: Schedule, rng: np.random.Generator) -> Schedule:
        """Change one dimension of ``schedule`` (greedy-mutation move)."""
        dimensions = [
            "strategy",
            "delta",
            "fusion_threshold",
            "num_buckets",
            "direction",
            "parallelization",
        ]
        for _ in range(8):  # retry until the mutation produces a change
            dimension = str(rng.choice(dimensions))
            if dimension == "strategy":
                strategy = str(rng.choice(self.strategies))
                if strategy == schedule.priority_update:
                    continue
                direction = schedule.direction
                if strategy.startswith("eager"):
                    direction = "SparsePush"
                return schedule.with_(
                    priority_update=strategy, direction=direction
                )
            if dimension == "delta":
                index = self.deltas.index(schedule.delta) if schedule.delta in self.deltas else 0
                step = int(rng.choice([-2, -1, 1, 2]))
                new_index = min(max(index + step, 0), len(self.deltas) - 1)
                if self.deltas[new_index] == schedule.delta:
                    continue
                return schedule.with_(delta=self.deltas[new_index])
            if dimension == "fusion_threshold":
                value = int(rng.choice(self.fusion_thresholds))
                if value == schedule.bucket_fusion_threshold:
                    continue
                return schedule.with_(bucket_fusion_threshold=value)
            if dimension == "num_buckets":
                value = int(rng.choice(self.num_buckets))
                if value == schedule.num_buckets:
                    continue
                return schedule.with_(num_buckets=value)
            if dimension == "direction":
                if schedule.is_eager:
                    continue
                value = str(rng.choice(self.directions))
                if value == schedule.direction:
                    continue
                return schedule.with_(direction=value)
            if dimension == "parallelization":
                value = str(rng.choice(self.parallelizations))
                if value == schedule.parallelization:
                    continue
                return schedule.with_(parallelization=value)
        return self.random_schedule(rng)


def default_space(algorithm: str, num_threads: int = 8) -> ScheduleSpace:
    """The search space for one of the six algorithms.

    Strict-priority algorithms (k-core, SetCover, wBFS) pin Δ to 1; k-core
    adds the ``lazy_constant_sum`` strategy; SetCover restricts to the lazy
    strategies (as in Julienne).
    """
    if algorithm in ("sssp", "ppsp", "astar"):
        return ScheduleSpace(num_threads=num_threads)
    if algorithm == "wbfs":
        return ScheduleSpace(deltas=(1,), num_threads=num_threads)
    if algorithm == "kcore":
        return ScheduleSpace(
            strategies=("lazy_constant_sum", "lazy", "eager_no_fusion"),
            deltas=(1,),
            num_threads=num_threads,
        )
    if algorithm == "setcover":
        return ScheduleSpace(
            strategies=("lazy",),
            deltas=(1,),
            directions=("SparsePush",),
            num_threads=num_threads,
        )
    raise AutotuneError(f"unknown algorithm {algorithm!r}")
