"""Autotuner: ensemble stochastic search over the schedule space."""

from .search import EnsembleSearch, Trial
from .space import ScheduleSpace, default_space
from .tuner import TuningResult, autotune, make_objective

__all__ = [
    "autotune",
    "make_objective",
    "TuningResult",
    "ScheduleSpace",
    "default_space",
    "EnsembleSearch",
    "Trial",
]
