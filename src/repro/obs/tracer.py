"""The tracer: structured spans with a zero-overhead-when-off fast path.

Design constraints (in priority order):

1. **Off is free.**  Tracing is off by default and the repository's
   correctness story — the differential oracle tests — must hold
   bit-identically whether or not the ``obs`` package is imported.  Every
   hook site calls the module-level :func:`span` / :func:`instant`
   functions, which read one module global and return a shared no-op
   context manager when no tracer is active: no allocation, no clock
   read, no branch inside the traced code.
2. **Deterministic state stays untouched.**  The tracer only ever appends
   to its own event list (and, for :func:`stat_span`, to
   ``RuntimeStats.phase_timings``, a field that is empty whenever tracing
   is off).  It never reads or writes algorithm state, so a traced run
   computes exactly what an untraced run computes.
3. **Thread safe.**  The parallel engine's workers emit produce spans
   concurrently with the coordinator's barrier/commit spans.  Event
   appends take a lock; span stacks are per-OS-thread, so strict nesting
   is enforced per thread with no cross-thread coordination.

Usage::

    from repro import obs

    with obs.tracing() as tracer:
        program = compile_program(source, schedule)   # compiler spans
        result = program.run(argv, graph=g)           # runtime spans
    obs.write_chrome_trace("trace.json", tracer)

Hook sites look like::

    with obs.span("bucket.advance", "bucket", strategy="lazy") as sp:
        ...
        if sp is not None:
            sp["order"] = order        # late args, recorded at span end
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from . import flight

__all__ = [
    "Tracer",
    "span",
    "stat_span",
    "instant",
    "counter",
    "get_tracer",
    "activate",
    "deactivate",
    "tracing",
]


class _NullSpan:
    """Shared no-op context manager returned by :func:`span` when tracing
    is off.  Stateless, hence safely reentrant and thread-safe."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects trace events for one tracing session.

    Timestamps are microseconds relative to the tracer's construction
    (``time.perf_counter`` based by default; inject ``clock`` for
    deterministic tests).  OS threads are mapped to small stable ``tid``
    integers in first-seen order — 0 is the constructing thread — and a
    ``thread_name`` metadata event is emitted per thread so Perfetto shows
    readable track names.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or time.perf_counter
        self._origin = self._clock()
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._tids: dict[int, int] = {}
        self._stacks: dict[int, list[tuple[str, float, dict]]] = {}
        self.pid = os.getpid()

    # -- time & identity -------------------------------------------------

    def _now_us(self) -> float:
        return (self._clock() - self._origin) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.get(ident)
                if tid is None:
                    tid = len(self._tids)
                    self._tids[ident] = tid
                    name = threading.current_thread().name
                    self._events.append(
                        {
                            "name": "thread_name",
                            "cat": "meta",
                            "ph": "M",
                            "ts": 0,
                            "pid": self.pid,
                            "tid": tid,
                            "args": {"name": name},
                        }
                    )
        return tid

    def _append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    # -- emission --------------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str, **args: Any) -> Iterator[dict]:
        """A complete (ph=X) span around the ``with`` body.

        Yields the args dictionary; entries added inside the body are
        recorded at span end (late args such as frontier sizes).
        Strict per-thread nesting is enforced: the span closes in LIFO
        order by construction of ``with``, and each thread keeps its own
        stack so ``depth`` is recorded per event.
        """
        tid = self._tid()
        payload = dict(args)
        stack = self._stacks.setdefault(threading.get_ident(), [])
        start = self._now_us()
        stack.append((name, start, payload))
        try:
            yield payload
        finally:
            stack.pop()
            end = self._now_us()
            self._append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "ts": start,
                    "dur": end - start,
                    "pid": self.pid,
                    "tid": tid,
                    "args": payload,
                }
            )

    @contextmanager
    def stat_span(self, name: str, cat: str, stats: Any, **args: Any) -> Iterator[dict]:
        """A span that additionally records a timestamped phase timing into
        ``stats.phase_timings`` (see :class:`~repro.runtime.stats.RuntimeStats`).

        Only ever runs when tracing is on — the module-level
        :func:`stat_span` short-circuits otherwise — so ``phase_timings``
        stays empty (and stat dumps stay bit-identical) for untraced runs.
        """
        start_us = self._now_us()
        with self.span(name, cat, **args) as payload:
            yield payload
        stats.record_phase(name, start_us, self._now_us() - start_us)

    def instant(self, name: str, cat: str, **args: Any) -> None:
        """A point-in-time (ph=i) event."""
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": self._tid(),
                "args": dict(args),
            }
        )

    def counter(self, name: str, cat: str, **values: float) -> None:
        """A counter (ph=C) sample; Perfetto renders these as tracks."""
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": self._now_us(),
                "pid": self.pid,
                "tid": self._tid(),
                "args": dict(values),
            }
        )

    # -- inspection ------------------------------------------------------

    @property
    def events(self) -> list[dict]:
        """Snapshot of the events recorded so far."""
        with self._lock:
            return list(self._events)

    def open_spans(self) -> int:
        """Number of spans currently open across all threads."""
        return sum(len(stack) for stack in self._stacks.values())


# ---------------------------------------------------------------------------
# Module-level current tracer (the hook sites' fast path)
# ---------------------------------------------------------------------------

_ACTIVE: Tracer | None = None
_ACTIVATION_LOCK = threading.Lock()


def get_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is off."""
    return _ACTIVE


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    with _ACTIVATION_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a tracer is already active; deactivate it first")
        _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    """Remove the active tracer (idempotent)."""
    global _ACTIVE
    with _ACTIVATION_LOCK:
        _ACTIVE = None


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Activate a tracer for the duration of the ``with`` body."""
    tracer = activate(tracer or Tracer())
    try:
        yield tracer
    finally:
        deactivate()


def span(name: str, cat: str, **args: Any):
    """Module-level span hook.

    Routes to the active tracer when tracing is on; otherwise to the crash
    flight recorder's bounded ring (so the last N spans survive for the
    post-mortem even on untraced runs); otherwise (``REPRO_FLIGHT=0``) to
    the shared no-op span — the strict zero-overhead-when-off path.
    """
    tracer = _ACTIVE
    if tracer is not None:
        return tracer.span(name, cat, **args)
    recorder = flight.get_recorder()
    if recorder is not None:
        return recorder.span(name, cat, **args)
    return _NULL_SPAN


def stat_span(name: str, cat: str, stats: Any, **args: Any):
    """Like :func:`span`, additionally logging into ``stats.phase_timings``
    when tracing is on.  With only the flight recorder active the span lands
    in the ring but ``stats`` is untouched, so ``phase_timings`` stays empty
    and untraced stat dumps remain bit-identical."""
    tracer = _ACTIVE
    if tracer is not None:
        return tracer.stat_span(name, cat, stats, **args)
    recorder = flight.get_recorder()
    if recorder is not None:
        return recorder.span(name, cat, **args)
    return _NULL_SPAN


def instant(name: str, cat: str, **args: Any) -> None:
    """Module-level instant-event hook (rings the flight recorder when
    tracing is off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, cat, **args)
        return
    recorder = flight.get_recorder()
    if recorder is not None:
        recorder.instant(name, cat, **args)


def counter(name: str, cat: str, **values: float) -> None:
    """Module-level counter hook (no-op when tracing is off)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.counter(name, cat, **values)
