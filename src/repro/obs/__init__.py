"""Observability: end-to-end tracing and profiling for the whole stack.

The subsystem threads **zero-overhead-when-off** trace hooks through every
layer — compiler phases (lex/parse/typecheck/midend passes/codegen), the
bucket runtimes (advance, rebucket, window moves), the apply operators, and
the parallel engine (per-worker produce spans, barrier waits, commit
replay) — and exports Chrome-trace JSON plus a self-profile table.

The paper's evaluation attributes cost to schedule decisions (rounds,
synchronizations, bucket traffic); this package makes that attribution
observable on a timeline instead of only in aggregate counters.

Entry points:

- ``repro trace <prog> --out trace.json`` — run under the tracer, write a
  Perfetto-loadable trace;
- ``repro profile <prog>`` — same run, print the hot-phase table;
- ``repro metrics <prog>`` — run once and print the always-on metrics
  registry (JSON or Prometheus text exposition);
- ``repro last-run`` — inspect the crash flight recorder's forensics dump;
- ``repro trace-diff A B`` — attribute a wall-time delta between two runs
  to compiler/runtime phases;
- :func:`tracing` / :func:`span` — the library API the hook sites use;
- :mod:`repro.obs.metrics` — always-on counters/gauges/histograms with
  per-worker shards merged deterministically at round barriers;
- :mod:`repro.obs.flight` — the bounded flight recorder behind the
  forensics dump;
- :mod:`repro.obs.events` — the event schema, the span/metric name
  registry, and their validators.

Tracing never mutates algorithm state: a traced run computes bit-identical
results and deterministic statistics to an untraced run (asserted by
``tests/test_tracing.py``).
"""

from . import metrics
from .diff import (
    format_trace_diff,
    load_profile_document,
    phase_profile,
    trace_diff,
)
from .events import (
    CATEGORIES,
    METRICS,
    PHASES,
    SPAN_NAMES,
    assert_valid_chrome_trace,
    validate_chrome_trace,
    validate_event,
)
from .exporters import (
    ProfileRow,
    chrome_trace,
    format_profile,
    load_chrome_trace,
    self_profile,
    write_chrome_trace,
)
from .flight import (
    FlightRecorder,
    dump_forensics,
    flight_enabled,
    get_recorder,
    last_run_path,
    note_run,
    set_recorder,
)
from .metrics import (
    MetricsRegistry,
    deterministic_snapshot,
    escape_label_value,
    merge_shards,
    metrics_enabled,
    prometheus_text,
    reset_metrics,
    snapshot,
)
from .workload import workload_profile, write_workload_profile
from .tracer import (
    Tracer,
    activate,
    counter,
    deactivate,
    get_tracer,
    instant,
    span,
    stat_span,
    tracing,
)

__all__ = [
    "Tracer",
    "tracing",
    "activate",
    "deactivate",
    "get_tracer",
    "span",
    "stat_span",
    "instant",
    "counter",
    "CATEGORIES",
    "PHASES",
    "SPAN_NAMES",
    "METRICS",
    "validate_event",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "ProfileRow",
    "self_profile",
    "format_profile",
    "metrics",
    "MetricsRegistry",
    "metrics_enabled",
    "merge_shards",
    "reset_metrics",
    "snapshot",
    "deterministic_snapshot",
    "prometheus_text",
    "escape_label_value",
    "FlightRecorder",
    "get_recorder",
    "set_recorder",
    "flight_enabled",
    "note_run",
    "dump_forensics",
    "last_run_path",
    "workload_profile",
    "write_workload_profile",
    "phase_profile",
    "load_profile_document",
    "trace_diff",
    "format_trace_diff",
]
