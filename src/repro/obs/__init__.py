"""Observability: end-to-end tracing and profiling for the whole stack.

The subsystem threads **zero-overhead-when-off** trace hooks through every
layer — compiler phases (lex/parse/typecheck/midend passes/codegen), the
bucket runtimes (advance, rebucket, window moves), the apply operators, and
the parallel engine (per-worker produce spans, barrier waits, commit
replay) — and exports Chrome-trace JSON plus a self-profile table.

The paper's evaluation attributes cost to schedule decisions (rounds,
synchronizations, bucket traffic); this package makes that attribution
observable on a timeline instead of only in aggregate counters.

Entry points:

- ``repro trace <prog> --out trace.json`` — run under the tracer, write a
  Perfetto-loadable trace;
- ``repro profile <prog>`` — same run, print the hot-phase table;
- :func:`tracing` / :func:`span` — the library API the hook sites use;
- :mod:`repro.obs.events` — the event schema and its validator.

Tracing never mutates algorithm state: a traced run computes bit-identical
results and deterministic statistics to an untraced run (asserted by
``tests/test_tracing.py``).
"""

from .events import (
    CATEGORIES,
    PHASES,
    assert_valid_chrome_trace,
    validate_chrome_trace,
    validate_event,
)
from .exporters import (
    ProfileRow,
    chrome_trace,
    format_profile,
    load_chrome_trace,
    self_profile,
    write_chrome_trace,
)
from .tracer import (
    Tracer,
    activate,
    counter,
    deactivate,
    get_tracer,
    instant,
    span,
    stat_span,
    tracing,
)

__all__ = [
    "Tracer",
    "tracing",
    "activate",
    "deactivate",
    "get_tracer",
    "span",
    "stat_span",
    "instant",
    "counter",
    "CATEGORIES",
    "PHASES",
    "validate_event",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "ProfileRow",
    "self_profile",
    "format_profile",
]
