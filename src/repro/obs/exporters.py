"""Exporters: Chrome-trace JSON files and the self-profile table.

``chrome_trace`` assembles the document ``repro trace`` writes (loadable in
Perfetto / ``chrome://tracing``); ``self_profile`` aggregates the same
events into the per-phase table ``repro profile`` prints — total time,
self time (total minus nested child spans on the same thread), and call
counts per (category, name).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .events import assert_valid_chrome_trace
from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "ProfileRow",
    "self_profile",
    "format_profile",
]


def chrome_trace(
    tracer_or_events: Tracer | list[dict], metadata: dict | None = None
) -> dict:
    """Assemble a Chrome Trace Event Format document (and validate it)."""
    if isinstance(tracer_or_events, Tracer):
        events = tracer_or_events.events
    else:
        events = list(tracer_or_events)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": dict(metadata or {}),
    }
    assert_valid_chrome_trace(payload)
    return payload


def write_chrome_trace(
    path: str, tracer_or_events: Tracer | list[dict], metadata: dict | None = None
) -> dict:
    """Write the trace as JSON to ``path``; returns the document."""
    payload = chrome_trace(tracer_or_events, metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def load_chrome_trace(path: str) -> dict:
    """Load and schema-validate a Chrome-trace JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert_valid_chrome_trace(payload)
    return payload


@dataclass
class ProfileRow:
    """One line of the self-profile: aggregated over (category, name)."""

    cat: str
    name: str
    count: int
    total_us: float
    self_us: float

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


def self_profile(tracer_or_events: Tracer | list[dict]) -> list[ProfileRow]:
    """Aggregate complete spans into per-(cat, name) totals with self time.

    Self time is a span's duration minus the durations of spans strictly
    nested inside it on the same thread — the quantity that answers "which
    phase is hot" without double-charging parents for their children.
    Sorted by self time, descending.
    """
    if isinstance(tracer_or_events, Tracer):
        events = tracer_or_events.events
    else:
        events = list(tracer_or_events)
    spans = [e for e in events if e.get("ph") == "X"]
    # Self-time via a per-thread interval sweep: process spans in start
    # order; an enclosing span is on the stack while its children run.
    by_tid: dict[int, list[dict]] = {}
    for event in spans:
        by_tid.setdefault(event["tid"], []).append(event)

    totals: dict[tuple[str, str], ProfileRow] = {}

    def row(event: dict) -> ProfileRow:
        key = (event["cat"], event["name"])
        entry = totals.get(key)
        if entry is None:
            entry = totals[key] = ProfileRow(
                cat=key[0], name=key[1], count=0, total_us=0.0, self_us=0.0
            )
        return entry

    for events_of_tid in by_tid.values():
        # Sort by start; ties break longest-first so parents precede their
        # zero-offset children.
        events_of_tid.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[dict] = []  # open spans, innermost last
        for event in events_of_tid:
            start, end = event["ts"], event["ts"] + event["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"] - 1e-9:
                stack.pop()
            if stack:
                row(stack[-1]).self_us -= event["dur"]
            entry = row(event)
            entry.count += 1
            entry.total_us += event["dur"]
            entry.self_us += event["dur"]
            stack.append(event)
    return sorted(totals.values(), key=lambda r: r.self_us, reverse=True)


def format_profile(rows: list[ProfileRow], top: int | None = None) -> str:
    """Render the profile as the aligned text table the CLI prints."""
    if top is not None:
        rows = rows[:top]
    headers = ["category", "name", "calls", "total ms", "self ms", "mean us"]
    body = [
        [
            r.cat,
            r.name,
            str(r.count),
            f"{r.total_us / 1000:.3f}",
            f"{r.self_us / 1000:.3f}",
            f"{r.mean_us:.1f}",
        ]
        for r in rows
    ]
    widths = [len(h) for h in headers]
    for line in body:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for line in body:
        out.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(out)
