"""Workload profiles: the paper's crossover axes as one JSON document.

The paper's central empirical claim is that no single bucket strategy wins
everywhere — lazy buffering pays off when frontiers are large and updates
redundant, eager bins when frontiers are small, bucket fusion when many
tiny buckets follow each other.  Choosing a schedule therefore needs the
*workload shape*, not just a wall-clock number.  :func:`workload_profile`
distills one run into exactly those axes:

- frontier size per round and its distribution (large-frontier rounds are
  where DensePull and lazy buffering win);
- open-bucket occupancy per round (many simultaneously-open buckets favor
  a larger Δ; an occupancy that stays at 1 means Δ already covers the
  priority range);
- redundant-update ratio — the fraction of buffered priority updates that
  deduplication discarded (the quantity lazy buffering exists to absorb);
- update efficiency — relaxations per priority update actually applied;
- Δ-bucket statistics (configured Δ, bucket inserts, buffer traffic);
- work imbalance — critical-path work over ideal per-thread work (the
  barrier cost the paper's load-balancing flags target).

The document is schema-versioned and fully deterministic for serial runs
(every input comes from ``RuntimeStats`` deterministic counters or the
schedule), so it can be stored next to benchmark baselines and diffed.
``repro metrics --workload`` writes it; autotuner v2 is the intended
consumer.
"""

from __future__ import annotations

import json

__all__ = [
    "WORKLOAD_SCHEMA",
    "workload_profile",
    "write_workload_profile",
]

WORKLOAD_SCHEMA = 1


def _series_summary(values: list[int]) -> dict:
    """Order statistics for a per-round series (empty-safe)."""
    if not values:
        return {"count": 0, "min": 0, "max": 0, "mean": 0.0, "median": 0}
    ordered = sorted(values)
    return {
        "count": len(values),
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(values) / len(values),
        "median": ordered[len(ordered) // 2],
    }


def _ratio(numerator: float, denominator: float) -> float:
    return float(numerator) / float(denominator) if denominator else 0.0


def workload_profile(
    stats,
    schedule=None,
    graph=None,
    metrics_snapshot: dict | None = None,
) -> dict:
    """The crossover-axis profile of one run as a JSON-safe dict.

    ``stats`` is the run's :class:`~repro.runtime.stats.RuntimeStats`;
    ``schedule`` and ``graph`` add the configuration and graph-shape
    context when available; ``metrics_snapshot`` (from
    :func:`repro.obs.metrics.snapshot`) is embedded verbatim so one file
    carries both the per-run counters and the process-wide registry.
    """
    frontier = list(stats.frontier_per_round)
    occupancy = list(stats.bucket_occupancy_per_round)

    profile: dict = {
        "schema": WORKLOAD_SCHEMA,
        "schedule": None,
        "graph": None,
        "rounds": {
            "rounds": stats.rounds,
            "fused_rounds": stats.fused_rounds,
            "global_syncs": stats.global_syncs,
            "fused_fraction": _ratio(stats.fused_rounds, stats.rounds),
        },
        "frontier": {
            "per_round": frontier,
            "summary": _series_summary(frontier),
        },
        "bucket_occupancy": {
            "per_round": occupancy,
            "summary": _series_summary(occupancy),
        },
        "updates": {
            "relaxations": stats.relaxations,
            "priority_updates": stats.priority_updates,
            "buffer_appends": stats.buffer_appends,
            "buffer_reductions": stats.buffer_reductions,
            "dedup_hits": stats.dedup_hits,
            # The lazy-vs-eager axis: how much buffered traffic was
            # redundant.  0 for eager runs (nothing buffered).
            "redundant_update_ratio": _ratio(
                stats.dedup_hits, stats.buffer_appends
            ),
            # How many edge relaxations each applied priority update cost.
            "update_efficiency": _ratio(
                stats.priority_updates, stats.relaxations
            ),
        },
        "delta_buckets": {
            "delta": schedule.delta if schedule is not None else None,
            "bucket_inserts": stats.bucket_inserts,
            "histogram_updates": stats.histogram_updates,
            "inserts_per_round": _ratio(stats.bucket_inserts, stats.rounds),
        },
        "work": {
            "total_work": stats.total_work,
            "critical_path_work": stats.critical_path_work,
            "vertices_processed": stats.vertices_processed,
            # critical-path work over perfectly-balanced work: 1.0 is
            # ideal, num_threads is fully serial.
            "imbalance": _ratio(
                stats.critical_path_work * stats.num_threads,
                stats.total_work,
            ),
            "atomic_ops": stats.atomic_ops,
        },
        "metrics": metrics_snapshot,
    }

    if schedule is not None:
        profile["schedule"] = {
            "priority_update": schedule.priority_update,
            "delta": schedule.delta,
            "bucket_fusion_threshold": schedule.bucket_fusion_threshold,
            "num_buckets": schedule.num_buckets,
            "direction": schedule.direction,
            "parallelization": schedule.parallelization,
            "num_threads": schedule.num_threads,
            "chunk_size": schedule.chunk_size,
            "execution": schedule.execution,
        }
    if graph is not None:
        degrees = graph.out_degrees()
        profile["graph"] = {
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "avg_degree": _ratio(graph.num_edges, graph.num_vertices),
            "max_degree": int(degrees.max()) if degrees.size else 0,
        }
    return profile


def write_workload_profile(path: str, profile: dict) -> None:
    """Write ``profile`` as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile, handle, indent=2, sort_keys=False)
        handle.write("\n")
