"""Perf-regression attribution: diff two runs phase by phase.

``repro bench-check`` can tell you *that* a benchmark regressed; this
module answers *where*.  Both runs are reduced to a **phase profile** —
per-(category, name) self time, total time, and call counts, the same
aggregation ``repro profile`` prints — and the diff ranks phases by the
absolute self-time delta.  A 40% wall-time regression that is 95%
``native.compile`` is a cold kernel cache; one that is all
``bucket.reduce`` is a real runtime regression.  The ranking makes that
distinction mechanical.

Inputs are deliberately liberal: :func:`load_profile_document` accepts a
raw Chrome-trace file (as written by ``repro trace``), an already-reduced
phase-profile document, or a bench-check baseline record with an embedded
``phase_profile`` — so ``repro trace-diff A B`` works on any pair of
artifacts the toolchain produces.
"""

from __future__ import annotations

import json

from .exporters import self_profile

__all__ = [
    "PHASE_PROFILE_SCHEMA",
    "phase_profile",
    "load_profile_document",
    "trace_diff",
    "format_trace_diff",
]

PHASE_PROFILE_SCHEMA = 1


def phase_profile(tracer_or_events) -> dict:
    """Reduce trace events to a serializable per-phase profile document.

    The document is ``{"schema": 1, "wall_us": <sum of top-level self
    time>, "phases": [{"cat", "name", "count", "total_us", "self_us"},
    ...]}`` with phases sorted by self time descending — small enough to
    embed in benchmark baselines, rich enough to diff.
    """
    rows = self_profile(tracer_or_events)
    return {
        "schema": PHASE_PROFILE_SCHEMA,
        "wall_us": sum(row.self_us for row in rows),
        "phases": [
            {
                "cat": row.cat,
                "name": row.name,
                "count": row.count,
                "total_us": row.total_us,
                "self_us": row.self_us,
            }
            for row in rows
        ],
    }


def load_profile_document(source) -> dict:
    """Coerce ``source`` into a phase-profile document.

    ``source`` may be a path to a JSON file or an already-loaded dict, in
    any of three shapes:

    - a Chrome-trace document (``traceEvents`` key) — reduced via
      :func:`phase_profile`;
    - a phase-profile document (``phases`` key) — used as-is;
    - any record embedding one under a ``phase_profile`` key (bench-check
      baselines) — unwrapped.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = source
    if not isinstance(payload, dict):
        raise ValueError(
            "expected a JSON object (chrome trace, phase profile, or "
            f"bench record), got {type(payload).__name__}"
        )
    if "phases" in payload:
        return payload
    if "phase_profile" in payload and isinstance(
        payload["phase_profile"], dict
    ):
        return load_profile_document(payload["phase_profile"])
    if "traceEvents" in payload:
        return phase_profile(payload["traceEvents"])
    raise ValueError(
        "document has none of 'traceEvents', 'phases', or 'phase_profile' "
        "- not a trace or profile artifact"
    )


def trace_diff(baseline, fresh) -> dict:
    """Attribute the wall-time delta between two runs to phases.

    Both arguments go through :func:`load_profile_document`.  Returns
    ``{"wall_us": {...}, "rows": [...]}`` where each row carries the
    phase's baseline/fresh self time, the delta in microseconds, the
    delta as a percentage of the *baseline wall time* (so rows sum to the
    overall change), and the call-count change.  Rows are sorted by
    absolute delta, largest first — the attribution order.
    """
    base_doc = load_profile_document(baseline)
    fresh_doc = load_profile_document(fresh)

    def index(doc: dict) -> dict[tuple[str, str], dict]:
        return {(p["cat"], p["name"]): p for p in doc["phases"]}

    base_phases = index(base_doc)
    fresh_phases = index(fresh_doc)
    base_wall = float(base_doc.get("wall_us", 0.0))
    fresh_wall = float(fresh_doc.get("wall_us", 0.0))

    rows = []
    for key in sorted(set(base_phases) | set(fresh_phases)):
        base = base_phases.get(key)
        new = fresh_phases.get(key)
        base_self = float(base["self_us"]) if base else 0.0
        fresh_self = float(new["self_us"]) if new else 0.0
        delta = fresh_self - base_self
        rows.append(
            {
                "cat": key[0],
                "name": key[1],
                "baseline_self_us": base_self,
                "fresh_self_us": fresh_self,
                "delta_us": delta,
                # Share of the baseline wall time this phase's change
                # represents; the column that sums to the headline delta.
                "delta_pct_of_wall": (
                    100.0 * delta / base_wall if base_wall else 0.0
                ),
                "baseline_count": int(base["count"]) if base else 0,
                "fresh_count": int(new["count"]) if new else 0,
            }
        )
    rows.sort(key=lambda row: (-abs(row["delta_us"]), row["cat"], row["name"]))
    return {
        "wall_us": {
            "baseline": base_wall,
            "fresh": fresh_wall,
            "delta": fresh_wall - base_wall,
            "delta_pct": (
                100.0 * (fresh_wall - base_wall) / base_wall
                if base_wall
                else 0.0
            ),
        },
        "rows": rows,
    }


def format_trace_diff(diff: dict, top: int = 10) -> str:
    """Render a :func:`trace_diff` result as an aligned text table."""
    wall = diff["wall_us"]
    lines = [
        "wall time: {:.0f}us -> {:.0f}us ({:+.1f}%)".format(
            wall["baseline"], wall["fresh"], wall["delta_pct"]
        ),
        "",
        "{:<34} {:>12} {:>12} {:>12} {:>9}".format(
            "phase", "baseline_us", "fresh_us", "delta_us", "of_wall"
        ),
    ]
    for row in diff["rows"][: max(0, top)]:
        label = f"{row['cat']}:{row['name']}"
        lines.append(
            "{:<34} {:>12.0f} {:>12.0f} {:>+12.0f} {:>+8.1f}%".format(
                label[:34],
                row["baseline_self_us"],
                row["fresh_self_us"],
                row["delta_us"],
                row["delta_pct_of_wall"],
            )
        )
    shown = min(len(diff["rows"]), max(0, top))
    if shown < len(diff["rows"]):
        lines.append(f"... {len(diff['rows']) - shown} more phases")
    return "\n".join(lines)
