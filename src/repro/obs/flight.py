"""Crash flight recorder: the last N spans, kept even when tracing is off.

When something blows up in production there is no tracer running — the
tracer is opt-in per run.  The flight recorder closes that gap: a bounded
ring buffer (``collections.deque(maxlen=...)``) of the most recent spans and
instants, fed by the same hook sites the tracer uses (the module-level
``obs.span``/``instant`` functions route here whenever no tracer is active).
Being bounded, it costs O(1) memory no matter how long the process runs; a
span records one clock pair and one dict append.

On an escaping error the CLI calls :func:`dump_forensics`, which writes the
ring, the exception (type, message, traceback), the run context noted so far
(program, graph, schedule), and a metrics snapshot to
``.repro/last_run.json`` (or ``$REPRO_STATE_DIR/last_run.json``).
``repro last-run`` pretty-prints that file — the post-mortem you read after
the crash, not the trace you forgot to enable before it.

``REPRO_FLIGHT=0`` disables the recorder entirely (the module-level hooks
then return the shared null span, restoring the strict PR-4
zero-overhead-when-off behaviour).
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback as traceback_module
from collections import deque
from typing import Any

from . import metrics

__all__ = [
    "FlightRecorder",
    "get_recorder",
    "set_recorder",
    "flight_enabled",
    "state_dir",
    "last_run_path",
    "dump_forensics",
    "note_run",
]

DEFAULT_CAPACITY = 512

#: Bumped when the forensics document shape changes.
FORENSICS_SCHEMA = 1


class _FlightSpan:
    """Context manager recording one ring entry on exit.

    Mirrors the tracer's span contract: ``__enter__`` yields the args dict
    so hook sites can add late args (``sp["frontier"] = ...``), and an
    exception escaping the body is recorded (type name) without being
    swallowed.
    """

    __slots__ = ("_recorder", "_name", "_cat", "_args", "_start")

    def __init__(self, recorder: "FlightRecorder", name: str, cat: str, args: dict):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> dict:
        self._start = time.perf_counter()
        return self._args

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        entry = {
            "name": self._name,
            "cat": self._cat,
            "ph": "X",
            "ts_us": (self._start - self._recorder.origin) * 1e6,
            "dur_us": (end - self._start) * 1e6,
            "thread": threading.current_thread().name,
            "args": _jsonable(self._args),
        }
        if exc_type is not None:
            entry["error"] = exc_type.__name__
        self._recorder.record(entry)
        return False


def _jsonable(value: Any):
    """Best-effort JSON coercion for span args (numpy ints, paths, ...)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    try:
        return int(value)  # numpy integer scalars
    except (TypeError, ValueError):
        return repr(value)


class FlightRecorder:
    """Bounded ring of recent spans/instants plus noted run context."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = int(capacity)
        # deque.append is atomic under the GIL; no lock on the hot path.
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._context: dict = {}
        self.origin = time.perf_counter()
        self.recorded = 0

    # -- recording -------------------------------------------------------

    def span(self, name: str, cat: str, **args: Any) -> _FlightSpan:
        return _FlightSpan(self, name, cat, dict(args))

    def instant(self, name: str, cat: str, **args: Any) -> None:
        self.record(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts_us": (time.perf_counter() - self.origin) * 1e6,
                "thread": threading.current_thread().name,
                "args": _jsonable(dict(args)),
            }
        )

    def record(self, entry: dict) -> None:
        self._ring.append(entry)
        self.recorded += 1

    def note(self, **context: Any) -> None:
        """Attach run context (program, graph, schedule) to future dumps."""
        self._context.update(_jsonable(context))

    # -- inspection ------------------------------------------------------

    def events(self) -> list[dict]:
        return list(self._ring)

    def context(self) -> dict:
        return dict(self._context)

    def clear(self) -> None:
        self._ring.clear()
        self._context.clear()
        self.recorded = 0


# ---------------------------------------------------------------------------
# Module-level recorder (on by default; REPRO_FLIGHT=0 disables)
# ---------------------------------------------------------------------------

_RECORDER: FlightRecorder | None = (
    FlightRecorder() if os.environ.get("REPRO_FLIGHT", "1") != "0" else None
)


def get_recorder() -> FlightRecorder | None:
    """The active flight recorder, or None when disabled."""
    return _RECORDER


def set_recorder(recorder: FlightRecorder | None) -> FlightRecorder | None:
    """Install (or, with None, disable) the recorder; returns the old one."""
    global _RECORDER
    old = _RECORDER
    _RECORDER = recorder
    return old


def flight_enabled() -> bool:
    return _RECORDER is not None


def note_run(**context: Any) -> None:
    """Note run context on the active recorder (no-op when disabled)."""
    if _RECORDER is not None:
        _RECORDER.note(**context)


# ---------------------------------------------------------------------------
# Forensics dump
# ---------------------------------------------------------------------------


def state_dir() -> str:
    """Where run state lands: ``$REPRO_STATE_DIR`` or ``.repro/``."""
    return os.environ.get("REPRO_STATE_DIR") or ".repro"


def last_run_path() -> str:
    return os.path.join(state_dir(), "last_run.json")


def dump_forensics(
    error: BaseException, argv: list[str] | None = None
) -> str | None:
    """Write the forensics document for ``error``; returns its path.

    Returns None when the recorder is disabled (``REPRO_FLIGHT=0``) — no
    ring means no post-mortem.  Never raises: a failing dump must not mask
    the original error, so filesystem problems are swallowed.
    """
    recorder = _RECORDER
    if recorder is None:
        return None
    document = {
        "schema": FORENSICS_SCHEMA,
        "written_at": time.time(),
        "argv": list(argv) if argv is not None else None,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": "".join(
                traceback_module.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
        },
        "context": recorder.context(),
        "events": recorder.events(),
        "metrics": metrics.snapshot(),
    }
    path = last_run_path()
    try:
        os.makedirs(state_dir(), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        return None
    return path
