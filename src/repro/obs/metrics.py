"""Always-on metrics: counters, gauges, and log-scale histograms.

Unlike the tracer (opt-in, per-run), the metrics registry is live for the
whole process and cheap enough to leave on everywhere: a hook site costs one
module-global check plus one dict write.  The paper's crossover analysis
(lazy vs eager vs fusion as a function of bucket occupancy, frontier sizes,
and redundant updates) needs these signals on *every* run — the workload
profile and autotuner v2 consume them — so they cannot hide behind
``repro trace``.

Design:

* **Declared names only.**  Every metric must be declared in
  :data:`repro.obs.events.METRICS`; constructing an undeclared one raises.
  This is the metric half of the span/metric name registry (the span half is
  :data:`~repro.obs.events.SPAN_NAMES`).
* **Per-thread shards.**  Counters and histograms write to a slot keyed by
  ``threading.get_ident()`` — distinct dict keys per thread, so concurrent
  updates never contend and never tear under the GIL.  Merging folds every
  shard into the main slot with commutative operations (sums; bucket-wise
  sums), so the merged value is independent of thread scheduling — that is
  what makes the registry deterministic despite being always on.  The
  parallel engine calls :func:`merge_shards` at its round barrier.
* **Log2 histograms.**  Fixed buckets at powers of two (bucket ``i`` holds
  values whose ``bit_length()`` is ``i``, i.e. ``[2^(i-1), 2^i)``), capped
  at 64 buckets — enough for any int64 quantity, no configuration, and the
  bucket index is one integer op.
* **Wall-clock metrics are quarantined.**  Metrics declared with
  ``wallclock: True`` (timings) are excluded from
  :meth:`MetricsRegistry.deterministic_snapshot`, mirroring
  ``WALL_CLOCK_FIELDS`` on :class:`~repro.runtime.stats.RuntimeStats`.

``REPRO_METRICS=0`` in the environment disables collection at import time;
:func:`enable` / :func:`disable` flip it at runtime (the overhead-budget
test measures exactly this toggle).
"""

from __future__ import annotations

import os
import threading
from typing import Iterator

from .events import METRIC_KINDS, METRICS

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "metrics_enabled",
    "enable",
    "disable",
    "merge_shards",
    "reset_metrics",
    "snapshot",
    "deterministic_snapshot",
    "prometheus_text",
    "escape_label_value",
]

# Histogram bucket count: covers every non-negative int64 (bit_length <= 63)
# plus bucket 0 for the value 0.
HISTOGRAM_BUCKETS = 64

_enabled = os.environ.get("REPRO_METRICS", "1") != "0"


def metrics_enabled() -> bool:
    """Whether hook sites are currently recording."""
    return _enabled


def enable() -> None:
    """Turn collection on (the default unless ``REPRO_METRICS=0``)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn collection off; hook sites become a single boolean check."""
    global _enabled
    _enabled = False


def _check_declared(name: str, kind: str) -> dict:
    spec = METRICS.get(name)
    if spec is None:
        raise ValueError(
            f"metric {name!r} is not declared in repro.obs.events.METRICS; "
            "declare it there (the name registry) before emitting it"
        )
    if spec["kind"] != kind:
        raise ValueError(
            f"metric {name!r} is declared as a {spec['kind']}, not a {kind}"
        )
    assert kind in METRIC_KINDS
    return spec


class Counter:
    """A monotonically increasing sum, sharded per thread."""

    __slots__ = ("name", "cat", "wallclock", "_shards")

    def __init__(self, name: str):
        spec = _check_declared(name, "counter")
        self.name = name
        self.cat = spec["cat"]
        self.wallclock = bool(spec.get("wallclock"))
        # thread ident -> partial sum; key None is the merged main slot.
        self._shards: dict[int | None, int] = {}

    def inc(self, amount: int = 1) -> None:
        if not _enabled:
            return
        shards = self._shards
        ident = threading.get_ident()
        shards[ident] = shards.get(ident, 0) + amount

    def merge(self) -> None:
        """Fold all thread shards into the main slot (commutative sum)."""
        shards = self._shards
        total = sum(shards.values())
        shards.clear()
        if total:
            shards[None] = total

    def value(self) -> int:
        return sum(self._shards.values())

    def reset(self) -> None:
        self._shards.clear()


class Gauge:
    """A last-write-wins sample (delta in use, worker count, ...).

    Gauges are not sharded: last-write-wins across threads is inherently a
    race, so a single slot (atomic under the GIL) is the honest model.  Use
    them for configuration-like values written from the coordinator.
    """

    __slots__ = ("name", "cat", "wallclock", "_value")

    def __init__(self, name: str):
        spec = _check_declared(name, "gauge")
        self.name = name
        self.cat = spec["cat"]
        self.wallclock = bool(spec.get("wallclock"))
        self._value: float | int | None = None

    def set(self, value: float | int) -> None:
        if not _enabled:
            return
        self._value = value

    def merge(self) -> None:  # symmetry with Counter/Histogram
        pass

    def value(self) -> float | int | None:
        return self._value

    def reset(self) -> None:
        self._value = None


class Histogram:
    """A fixed-bucket log2 histogram with count/sum/max, sharded per thread.

    ``observe(v)`` drops ``v`` into bucket ``v.bit_length()`` (clamped to
    :data:`HISTOGRAM_BUCKETS`); negative values clamp into bucket 0.
    """

    __slots__ = ("name", "cat", "wallclock", "_shards")

    def __init__(self, name: str):
        spec = _check_declared(name, "histogram")
        self.name = name
        self.cat = spec["cat"]
        self.wallclock = bool(spec.get("wallclock"))
        # thread ident -> [bucket counts, count, sum, max]
        self._shards: dict[int | None, list] = {}

    def _shard(self) -> list:
        ident = threading.get_ident()
        shard = self._shards.get(ident)
        if shard is None:
            shard = self._shards[ident] = [
                [0] * HISTOGRAM_BUCKETS, 0, 0, 0,
            ]
        return shard

    def observe(self, value: int | float) -> None:
        if not _enabled:
            return
        v = int(value)
        index = v.bit_length() if v > 0 else 0
        if index >= HISTOGRAM_BUCKETS:
            index = HISTOGRAM_BUCKETS - 1
        shard = self._shard()
        shard[0][index] += 1
        shard[1] += 1
        shard[2] += v
        if v > shard[3]:
            shard[3] = v

    def merge(self) -> None:
        """Fold all thread shards into the main slot (bucket-wise sums, so
        the result is independent of merge order)."""
        shards = self._shards
        if not shards:
            return
        merged = [[0] * HISTOGRAM_BUCKETS, 0, 0, 0]
        for shard in shards.values():
            for i, n in enumerate(shard[0]):
                merged[0][i] += n
            merged[1] += shard[1]
            merged[2] += shard[2]
            if shard[3] > merged[3]:
                merged[3] = shard[3]
        shards.clear()
        if merged[1]:
            shards[None] = merged

    def _combined(self) -> list:
        combined = [[0] * HISTOGRAM_BUCKETS, 0, 0, 0]
        for shard in self._shards.values():
            for i, n in enumerate(shard[0]):
                combined[0][i] += n
            combined[1] += shard[1]
            combined[2] += shard[2]
            if shard[3] > combined[3]:
                combined[3] = shard[3]
        return combined

    def value(self) -> dict:
        buckets, count, total, peak = self._combined()
        return {
            "buckets": buckets,
            "count": count,
            "sum": total,
            "max": peak,
        }

    def reset(self) -> None:
        self._shards.clear()


_KIND_TO_CLASS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """The process-wide metric set, lazily instantiated from declarations."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = _KIND_TO_CLASS[kind](name)
                    self._metrics[name] = metric
        # The cached-instance path must enforce the declaration too, or a
        # kind mismatch would silently hand back the wrong metric type.
        _check_declared(name, kind)
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def __iter__(self) -> Iterator:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def merge_shards(self) -> None:
        """Deterministically fold per-thread shards (barrier-point merge)."""
        for metric in list(self._metrics.values()):
            metric.merge()

    def reset(self) -> None:
        """Drop every recorded value (per-run and per-test isolation)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Every live metric as JSON-safe values, sorted by name."""
        out: dict = {}
        for metric in self:
            value = metric.value()
            if isinstance(metric, Gauge) and value is None:
                continue
            if isinstance(metric, (Counter, Gauge)) and not value:
                continue
            if isinstance(metric, Histogram) and value["count"] == 0:
                continue
            out[metric.name] = value
        return out

    def deterministic_snapshot(self) -> dict:
        """The bit-stable subset: every non-wall-clock metric.

        Runs that compute the same thing must produce this dict bit for bit
        regardless of thread scheduling — the same contract
        :meth:`RuntimeStats.deterministic_dict` gives for its counters.
        """
        return {
            name: value
            for name, value in self.snapshot().items()
            if not METRICS[name].get("wallclock")
        }

    def prometheus_text(self) -> str:
        """Prometheus text exposition.

        This is the **single** exposition function: ``repro metrics
        --format prom`` and the query service's ``/metrics`` endpoint both
        call it, so the two outputs can never drift apart.  Every series
        carries the ``# TYPE`` line scrapers require, and label values go
        through :func:`escape_label_value`.
        """
        lines: list[str] = []
        for metric in self:
            base = "repro_" + metric.name.replace(".", "_").replace("-", "_")
            if isinstance(metric, Counter):
                value = metric.value()
                if not value:
                    continue
                lines.append(f"# TYPE {base}_total counter")
                lines.append(f"{base}_total {value}")
            elif isinstance(metric, Gauge):
                value = metric.value()
                if value is None:
                    continue
                lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base} {value}")
            else:
                data = metric.value()
                if data["count"] == 0:
                    continue
                lines.append(f"# TYPE {base} histogram")
                cumulative = 0
                for index, count in enumerate(data["buckets"]):
                    if count == 0:
                        continue
                    cumulative += count
                    bound = escape_label_value((1 << index) - 1)
                    lines.append(
                        f'{base}_bucket{{le="{bound}"}} {cumulative}'
                    )
                lines.append(
                    f'{base}_bucket{{le="+Inf"}} {data["count"]}'
                )
                lines.append(f"{base}_sum {data['sum']}")
                lines.append(f"{base}_count {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry every hook site writes to.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Resolve (or create) a declared counter on the global registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Resolve (or create) a declared gauge on the global registry."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Resolve (or create) a declared histogram on the global registry."""
    return REGISTRY.histogram(name)


def merge_shards() -> None:
    """Barrier-point shard merge on the global registry."""
    REGISTRY.merge_shards()


def reset_metrics() -> None:
    """Reset the global registry (tests, per-run isolation)."""
    REGISTRY.reset()


def snapshot() -> dict:
    return REGISTRY.snapshot()


def deterministic_snapshot() -> dict:
    return REGISTRY.deterministic_snapshot()


def prometheus_text() -> str:
    return REGISTRY.prometheus_text()


def escape_label_value(value) -> str:
    """Escape a Prometheus label value per the text exposition format.

    Backslash, double quote, and newline are the three characters the spec
    requires escaping inside ``label="..."``; everything else passes
    through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )
