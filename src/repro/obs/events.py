"""Trace event schema (a subset of the Chrome Trace Event Format).

Every event the tracer emits is a plain dictionary that serializes directly
into the ``traceEvents`` array of a Chrome-trace JSON file, loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  The subset used
here:

============  =====================================================
``ph``        phase: ``"X"`` complete span, ``"i"`` instant,
              ``"C"`` counter, ``"M"`` metadata (thread names)
``name``      event name (``"bucket.advance"``, ``"lex"``, ...)
``cat``       category — one of :data:`CATEGORIES`; maps a span to
              the layer that emitted it
``ts``        start timestamp in microseconds from the trace origin
``dur``       duration in microseconds (complete spans only)
``pid``       process id (always the real pid; one process per trace)
``tid``       small stable integer per OS thread (0 = the thread the
              tracer was created on, workers count up from 1)
``args``      open dictionary of span payload (frontier sizes, bucket
              orders, pass names, ...)
============  =====================================================

The schema is enforced by :func:`validate_event` /
:func:`validate_chrome_trace` — pure-python structural validation, no
third-party JSON-schema dependency.  The test suite round-trips traces
through JSON and validates them; ``repro trace`` output is therefore
guaranteed loadable.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CATEGORIES",
    "PHASES",
    "SPAN_NAMES",
    "METRIC_KINDS",
    "METRICS",
    "validate_event",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
]

# The layers of the stack that emit events (DESIGN.md section 9).
CATEGORIES = frozenset(
    {
        "compiler",  # frontend + midend passes + codegen
        "bucket",    # bucket-runtime structure events (advance, rebucket)
        "runtime",   # apply operators / rounds in runtime_support
        "parallel",  # parallel-engine produce/barrier/commit
        "native",    # native path: toolchain/codegen/compile/load/execute
        "incremental",  # mutation resume: seed/invalidate/recompute/resume
        "serve",     # query service: request handling, execution, mutation
        "harness",   # eval harness cells
        "cli",       # top-level command spans
        "meta",      # thread-name metadata
    }
)

# Event phases this tracer emits.
PHASES = frozenset({"X", "i", "C", "M"})

# ---------------------------------------------------------------------------
# Name registries
# ---------------------------------------------------------------------------
# Every span/instant name the tracer, flight recorder, or any hook site may
# emit, mapped to the category it belongs to.  A name not in this table is a
# typo: ``tests/test_name_registry.py`` scans the source tree for literal
# hook-site names and fails on anything undeclared, so a misspelled span
# name breaks CI instead of silently fragmenting the profile.
SPAN_NAMES: dict[str, str] = {
    # compiler: frontend, midend passes, codegen, module loading
    "compile": "compiler",
    "lex": "compiler",
    "parse": "compiler",
    "typecheck": "compiler",
    "midend": "compiler",
    "midend.validate_ir": "compiler",
    "midend.recognize_loop": "compiler",
    "midend.resolve_schedule": "compiler",
    "midend.effects": "compiler",
    "midend.dependence": "compiler",
    "midend.races": "compiler",
    "midend.constant_sum": "compiler",
    "midend.histogram_transform": "compiler",
    "midend.incremental_eligibility": "compiler",
    "midend.vectorize": "compiler",
    "codegen.python": "compiler",
    "codegen.cpp": "compiler",
    "load_module": "compiler",
    # runtime: program entry and the apply operators
    "program.run": "runtime",
    "apply.push": "runtime",
    "apply.pull": "runtime",
    "apply.edges": "runtime",
    "apply.histogram": "runtime",
    "ordered_process_eager": "runtime",
    "eager.round": "runtime",
    "eager.fused_run": "runtime",
    # bucket: queue-structure events
    "bucket.advance": "bucket",
    "bucket.reduce": "bucket",
    "bucket.rebucket_overflow": "bucket",
    "bucket.dequeue_chunk": "bucket",
    "bucket.window_advance": "bucket",
    # parallel: produce/barrier/commit round protocol
    "worker.produce": "parallel",
    "barrier.wait": "parallel",
    "commit": "parallel",
    "commit.replay": "parallel",
    # native: toolchain probe, codegen, build/cache, ctypes dispatch
    "native.toolchain": "native",
    "native.codegen": "native",
    "native.compile": "native",
    "native.load": "native",
    "native.dispatch": "native",
    "native.execute": "native",
    # incremental: mutation resume pipeline
    "incremental.classify": "incremental",
    "incremental.invalidate": "incremental",
    "incremental.recompute": "incremental",
    "incremental.resume": "incremental",
    "incremental.kcore": "incremental",
    # serve: the query service's request -> execute -> respond pipeline
    "serve.request": "serve",
    "serve.execute": "serve",
    "serve.mutate": "serve",
    # harness / meta
    "cell.run": "harness",
    "thread_name": "meta",
}

# Metric kinds the registry implements (obs/metrics.py).
METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})

# Every metric the always-on registry may carry.  ``wallclock: True`` marks
# metrics derived from clock reads — inherently nondeterministic, excluded
# from ``deterministic_snapshot`` (mirroring WALL_CLOCK_FIELDS on
# RuntimeStats).  The registry constructor refuses undeclared names, so a
# typo at a hook site raises immediately instead of minting a ghost series.
METRICS: dict[str, dict] = {
    # bucket runtimes
    "bucket.dequeues": {"kind": "counter", "cat": "bucket"},
    "bucket.frontier_size": {"kind": "histogram", "cat": "bucket"},
    "bucket.occupancy": {"kind": "histogram", "cat": "bucket"},
    "bucket.rebucket_overflows": {"kind": "counter", "cat": "bucket"},
    "bucket.reduce_batches": {"kind": "counter", "cat": "bucket"},
    "bucket.window_advances": {"kind": "counter", "cat": "bucket"},
    "bucket.delta": {"kind": "gauge", "cat": "bucket"},
    # apply operators
    "apply.calls": {"kind": "counter", "cat": "runtime"},
    "apply.vectorized_calls": {"kind": "counter", "cat": "runtime"},
    "apply.scalar_calls": {"kind": "counter", "cat": "runtime"},
    "apply.frontier_size": {"kind": "histogram", "cat": "runtime"},
    "runs.completed": {"kind": "counter", "cat": "runtime"},
    "runs.failed": {"kind": "counter", "cat": "runtime"},
    # parallel engine
    "parallel.rounds": {"kind": "counter", "cat": "parallel"},
    "parallel.chunk_size": {"kind": "histogram", "cat": "parallel"},
    "parallel.workers": {"kind": "gauge", "cat": "parallel"},
    "parallel.shard_merges": {"kind": "counter", "cat": "parallel"},
    "parallel.barrier_wait_us": {
        "kind": "histogram", "cat": "parallel", "wallclock": True,
    },
    # native path
    "native.toolchain_probes": {"kind": "counter", "cat": "native"},
    "native.cache_hits": {"kind": "counter", "cat": "native"},
    "native.cache_misses": {"kind": "counter", "cat": "native"},
    "native.builds": {"kind": "counter", "cat": "native"},
    "native.executions": {"kind": "counter", "cat": "native"},
    "native.compile_us": {
        "kind": "histogram", "cat": "native", "wallclock": True,
    },
    "native.execute_us": {
        "kind": "histogram", "cat": "native", "wallclock": True,
    },
    # incremental engine
    "incremental.batches": {"kind": "counter", "cat": "incremental"},
    "incremental.seeds": {"kind": "histogram", "cat": "incremental"},
    "incremental.invalidated": {"kind": "histogram", "cat": "incremental"},
    "incremental.kcore_fixpoints": {"kind": "counter", "cat": "incremental"},
    # query service (repro serve)
    "serve.requests": {"kind": "counter", "cat": "serve"},
    "serve.cache_hits": {"kind": "counter", "cat": "serve"},
    "serve.cache_misses": {"kind": "counter", "cat": "serve"},
    "serve.coalesced": {"kind": "counter", "cat": "serve"},
    "serve.rejected": {"kind": "counter", "cat": "serve"},
    "serve.errors": {"kind": "counter", "cat": "serve"},
    "serve.mutations": {"kind": "counter", "cat": "serve"},
    "serve.resumes": {"kind": "counter", "cat": "serve"},
    "serve.queue_depth": {"kind": "gauge", "cat": "serve"},
    "serve.latency_us": {
        "kind": "histogram", "cat": "serve", "wallclock": True,
    },
}

_REQUIRED = ("name", "cat", "ph", "ts", "pid", "tid")


def validate_event(event: Any) -> list[str]:
    """Structural problems with one trace event (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    for key in _REQUIRED:
        if key not in event:
            problems.append(f"missing required key {key!r}")
    if problems:
        return problems
    if not isinstance(event["name"], str) or not event["name"]:
        problems.append("name must be a non-empty string")
    if event["cat"] not in CATEGORIES:
        problems.append(
            f"unknown category {event['cat']!r} (expected one of "
            f"{sorted(CATEGORIES)})"
        )
    if event["ph"] not in PHASES:
        problems.append(f"unknown phase {event['ph']!r}")
    if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
        problems.append("ts must be a non-negative number (microseconds)")
    if not isinstance(event["pid"], int):
        problems.append("pid must be an integer")
    if not isinstance(event["tid"], int) or event["tid"] < 0:
        problems.append("tid must be a non-negative integer")
    if event["ph"] == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append("complete (ph=X) events need a non-negative dur")
    if "args" in event and not isinstance(event["args"], dict):
        problems.append("args must be an object")
    return problems


def validate_chrome_trace(payload: Any) -> list[str]:
    """Structural problems with a whole Chrome-trace document."""
    if not isinstance(payload, dict):
        return [f"trace is not an object: {type(payload).__name__}"]
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        for problem in validate_event(event):
            problems.append(f"traceEvents[{index}]: {problem}")
    metadata = payload.get("metadata")
    if metadata is not None and not isinstance(metadata, dict):
        problems.append("metadata must be an object")
    return problems


def assert_valid_chrome_trace(payload: Any) -> None:
    """Raise ``ValueError`` listing every schema violation (if any)."""
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "invalid Chrome trace: " + "; ".join(problems[:20])
            + (f" (+{len(problems) - 20} more)" if len(problems) > 20 else "")
        )
