"""Trace event schema (a subset of the Chrome Trace Event Format).

Every event the tracer emits is a plain dictionary that serializes directly
into the ``traceEvents`` array of a Chrome-trace JSON file, loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  The subset used
here:

============  =====================================================
``ph``        phase: ``"X"`` complete span, ``"i"`` instant,
              ``"C"`` counter, ``"M"`` metadata (thread names)
``name``      event name (``"bucket.advance"``, ``"lex"``, ...)
``cat``       category — one of :data:`CATEGORIES`; maps a span to
              the layer that emitted it
``ts``        start timestamp in microseconds from the trace origin
``dur``       duration in microseconds (complete spans only)
``pid``       process id (always the real pid; one process per trace)
``tid``       small stable integer per OS thread (0 = the thread the
              tracer was created on, workers count up from 1)
``args``      open dictionary of span payload (frontier sizes, bucket
              orders, pass names, ...)
============  =====================================================

The schema is enforced by :func:`validate_event` /
:func:`validate_chrome_trace` — pure-python structural validation, no
third-party JSON-schema dependency.  The test suite round-trips traces
through JSON and validates them; ``repro trace`` output is therefore
guaranteed loadable.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CATEGORIES",
    "PHASES",
    "validate_event",
    "validate_chrome_trace",
    "assert_valid_chrome_trace",
]

# The layers of the stack that emit events (DESIGN.md section 9).
CATEGORIES = frozenset(
    {
        "compiler",  # frontend + midend passes + codegen
        "bucket",    # bucket-runtime structure events (advance, rebucket)
        "runtime",   # apply operators / rounds in runtime_support
        "parallel",  # parallel-engine produce/barrier/commit
        "native",    # native path: toolchain/codegen/compile/load/execute
        "incremental",  # mutation resume: seed/invalidate/recompute/resume
        "harness",   # eval harness cells
        "cli",       # top-level command spans
        "meta",      # thread-name metadata
    }
)

# Event phases this tracer emits.
PHASES = frozenset({"X", "i", "C", "M"})

_REQUIRED = ("name", "cat", "ph", "ts", "pid", "tid")


def validate_event(event: Any) -> list[str]:
    """Structural problems with one trace event (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    for key in _REQUIRED:
        if key not in event:
            problems.append(f"missing required key {key!r}")
    if problems:
        return problems
    if not isinstance(event["name"], str) or not event["name"]:
        problems.append("name must be a non-empty string")
    if event["cat"] not in CATEGORIES:
        problems.append(
            f"unknown category {event['cat']!r} (expected one of "
            f"{sorted(CATEGORIES)})"
        )
    if event["ph"] not in PHASES:
        problems.append(f"unknown phase {event['ph']!r}")
    if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
        problems.append("ts must be a non-negative number (microseconds)")
    if not isinstance(event["pid"], int):
        problems.append("pid must be an integer")
    if not isinstance(event["tid"], int) or event["tid"] < 0:
        problems.append("tid must be a non-negative integer")
    if event["ph"] == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append("complete (ph=X) events need a non-negative dur")
    if "args" in event and not isinstance(event["args"], dict):
        problems.append("args must be an object")
    return problems


def validate_chrome_trace(payload: Any) -> list[str]:
    """Structural problems with a whole Chrome-trace document."""
    if not isinstance(payload, dict):
        return [f"trace is not an object: {type(payload).__name__}"]
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        for problem in validate_event(event):
            problems.append(f"traceEvents[{index}]: {problem}")
    metadata = payload.get("metadata")
    if metadata is not None and not isinstance(metadata, dict):
        problems.append("metadata must be an object")
    return problems


def assert_valid_chrome_trace(payload: Any) -> None:
    """Raise ``ValueError`` listing every schema violation (if any)."""
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "invalid Chrome trace: " + "; ".join(problems[:20])
            + (f" (+{len(problems) - 20} more)" if len(problems) > 20 else "")
        )
