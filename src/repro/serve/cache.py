"""The serve-side result cache: bounded LRU over converged traversals.

One entry holds the full output vector(s) of one traversal, keyed by the
coalescing tuple ``(graph epoch, program, source, traversal target,
schedule)``.  Point lookups against different *read* targets share the same
entry — a cached SSSP run from source ``s`` answers ``dist[t]`` for every
``t`` — so the unit of caching is the traversal, not the (source, target)
pair.

Entries are immutable once inserted (the engine copies nothing out; readers
slice values straight from the stored arrays), so the cache needs no per-
entry locking: all access happens on the event loop thread.  Mutations
invalidate by *epoch* — the engine bumps its epoch and calls :meth:`clear`,
then repopulates the entries it can resume incrementally.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

__all__ = ["CacheEntry", "ResultCache"]


@dataclass
class CacheEntry:
    """One converged traversal: output vectors plus a stats summary."""

    vectors: dict[str, np.ndarray]
    stats: dict[str, int] = field(default_factory=dict)
    engine: str = "compiled"  # "compiled" | "incremental"


class ResultCache:
    """A bounded LRU mapping traversal keys to :class:`CacheEntry`."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> CacheEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, key: Hashable) -> CacheEntry | None:
        """Lookup without recency or hit/miss accounting."""
        return self._entries.get(key)

    def put(self, key: Hashable, entry: CacheEntry) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = entry
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (epoch invalidation); returns the count."""
        dropped = len(self._entries)
        self._entries.clear()
        self.invalidations += dropped
        return dropped

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
