"""Hand-rolled HTTP/1.1 framing for the query service.

The service deliberately depends on nothing beyond the standard library
(``asyncio.start_server`` gives us sockets; this module gives us wire
framing), so ``repro serve`` runs wherever the interpreter does.  Only the
subset the service needs is implemented:

* request line + headers + ``Content-Length``-framed bodies (no chunked
  transfer encoding, no trailers, no multipart);
* ``GET``/``POST``/``HEAD`` methods; anything else earns a 405 at routing;
* keep-alive by default (HTTP/1.1 semantics), ``Connection: close``
  honoured in both directions.

Hard limits bound every read so a malicious or confused client cannot balloon
server memory: request line and header block are capped, as is the body.
Violations raise :class:`HTTPError`, which the server turns into a 4xx
response instead of a connection reset.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "REASONS",
    "format_response",
    "json_response",
    "read_request",
]

#: Upper bound on the request line plus the whole header block.
MAX_HEADER_BYTES = 16 * 1024
#: Upper bound on a request body (mutation scripts and query JSON are tiny).
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """A malformed or over-limit request; maps to a 4xx response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HTTPRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    close: bool = field(default=False)

    def json(self) -> dict:
        """The body parsed as a JSON object (raises :class:`HTTPError`)."""
        if not self.body:
            return {}
        try:
            document = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HTTPError(400, f"body is not valid JSON: {error}")
        if not isinstance(document, dict):
            raise HTTPError(400, "JSON body must be an object")
        return document

    def text(self) -> str:
        """The body decoded as UTF-8 text (raises :class:`HTTPError`)."""
        try:
            return self.body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise HTTPError(400, f"body is not valid UTF-8: {error}")


async def read_request(reader) -> HTTPRequest | None:
    """Read one request off ``reader``; ``None`` on a clean EOF.

    The header block is read with a hard byte cap; the body is framed by
    ``Content-Length`` (chunked encoding is rejected — no client of this
    service uses it).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests (keep-alive close)
        raise HTTPError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HTTPError(413, f"header block exceeds {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPError(413, f"header block exceeds {MAX_HEADER_BYTES} bytes")

    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HTTPError(400, "chunked transfer encoding is not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HTTPError(400, f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise HTTPError(400, f"bad Content-Length: {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise HTTPError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""

    split = urlsplit(target)
    query = {
        key: value for key, value in parse_qsl(split.query, keep_blank_values=True)
    }
    connection = headers.get("connection", "").lower()
    close = connection == "close" or version == "HTTP/1.0"
    return HTTPRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
        close=close,
    )


def format_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Mapping[str, str] | None = None,
    close: bool = False,
    head_only: bool = False,
) -> bytes:
    """Serialize one HTTP/1.1 response with explicit framing headers."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    if extra_headers:
        for name, value in extra_headers.items():
            lines.append(f"{name}: {value}")
    payload = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return payload if head_only else payload + body


def json_response(
    status: int,
    document: dict,
    extra_headers: Mapping[str, str] | None = None,
    close: bool = False,
    head_only: bool = False,
) -> bytes:
    """A JSON response body with framing (sorted keys, trailing newline)."""
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    return format_response(
        status,
        body,
        content_type="application/json",
        extra_headers=extra_headers,
        close=close,
        head_only=head_only,
    )
