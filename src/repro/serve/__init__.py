"""The graph analytics query service (``repro serve``).

Long-running process model for the reproduced stack: load a graph once
into shared CSR storage, keep compiled programs and incremental sessions
warm, and answer concurrent point queries (SSSP / wBFS / PPSP / widest
path / k-core / Bellman-Ford distances) over HTTP/JSON.

Layers, bottom up:

- :mod:`repro.serve.http` — stdlib HTTP/1.1 framing (no new dependencies);
- :mod:`repro.serve.cache` — bounded LRU over converged traversals;
- :mod:`repro.serve.engine` — admission control, request coalescing,
  cache-invalidation-on-mutation, traversal execution;
- :mod:`repro.serve.server` — the asyncio server and its four endpoints
  (``/healthz``, ``/metrics``, ``/query``, ``/mutate``);
- :mod:`repro.serve.client` — a blocking client for tests and benches;
- :mod:`repro.serve.bench` — the closed-loop load-test harness behind
  ``repro bench-serve`` and the CI perf gate (``BENCH_serve.json``).

Semantics are documented in DESIGN.md §14; every response bit-matches a
solo run of the same program on the current (post-mutation) graph.
"""

from .cache import CacheEntry, ResultCache
from .client import ServeClient, ServeResponse
from .engine import SERVABLE_PROGRAMS, Backpressure, QuerySpec, ServeEngine
from .server import QueryServer, ServerHandle, start_in_thread

__all__ = [
    "Backpressure",
    "CacheEntry",
    "QueryServer",
    "QuerySpec",
    "ResultCache",
    "SERVABLE_PROGRAMS",
    "ServeClient",
    "ServeEngine",
    "ServeResponse",
    "ServerHandle",
    "start_in_thread",
]
