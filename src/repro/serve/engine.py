"""The serving engine: admission control, coalescing, cache, mutation.

:class:`ServeEngine` owns one mutable CSR graph and answers point queries
against it concurrently.  All coordination state (the in-flight table, the
admission counter, the result cache) lives on the event-loop thread; only
the traversal itself — a compiled-program run or an incremental-session
resume — is shipped to a worker thread, under a reader/writer lock that
keeps traversals and graph mutations strictly serialized against each other
(``/query`` takes the read side, ``/mutate`` the write side; the writer is
preferred so a mutation cannot starve behind a query stream).

The request path, in order:

1. **Cache**: a converged traversal for the same ``(epoch, program, source,
   target, schedule)`` answers immediately — no admission charge.
2. **Coalesce**: a traversal for the same key already in flight is joined,
   not repeated — concurrent identical queries cost one traversal.
3. **Admit**: past the bounded pending budget the query is rejected with
   :class:`Backpressure` (the server turns that into ``429 Retry-After``).
   An admitted query is never dropped — it holds its slot until it
   completes or fails.
4. **Execute**: under the read lock, on a worker thread.

Mutations (``POST /mutate``) take the write lock, apply the script to the
main graph *and* to every live incremental session (each session owns its
own graph copy — sessions mutate their graph on ``apply``, so sharing the
served graph would double-apply every batch), compact the main graph while
no reader can observe it, bump the epoch (invalidating the whole cache),
and repopulate the cache from the resumed sessions at the new epoch.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from contextlib import asynccontextmanager
from dataclasses import dataclass, replace

import numpy as np

from ..backend.program import CompiledProgram, compile_program
from ..errors import GraphError, SchedulingError
from ..graph.csr import CSRGraph
from ..graph.mutations import apply_mutations, parse_mutation_script
from ..incremental import IncrementalSession
from ..lang.programs import ALL_PROGRAMS
from ..midend.schedule import Schedule
from ..obs import metrics, span
from .cache import CacheEntry, ResultCache

__all__ = [
    "Backpressure",
    "QuerySpec",
    "SERVABLE_PROGRAMS",
    "ServeEngine",
]

#: Programs the service can run: every built-in without extern functions.
#: ``astar`` and ``setcover`` need caller-supplied externs, so they are
#: compile-time features, not servable queries.
SERVABLE_PROGRAMS = {
    "sssp": "dist",
    "wbfs": "dist",
    "ppsp": "dist",
    "widest": "width",
    "bellman_ford": "dist",
    "kcore": "D",
}

#: Servable programs that can keep an incremental session alive for resume
#: after mutations (the I001-eligible extremal fixpoints; k-core resume
#: needs a symmetric graph, which the service does not require, so it runs
#: on the compiled path).
_SESSION_ALGORITHMS = {"sssp": "sssp", "wbfs": "wbfs", "widest": "widest_path"}

#: Schedule knobs a query may set.  Everything else on :class:`Schedule`
#: (sanitize, incremental) is an offline tool, not a per-query decision.
_SCHEDULE_KNOBS = frozenset(
    {
        "priority_update",
        "delta",
        "bucket_fusion_threshold",
        "num_buckets",
        "direction",
        "parallelization",
        "num_threads",
        "chunk_size",
        "execution",
    }
)
_INT_KNOBS = frozenset(
    {"delta", "bucket_fusion_threshold", "num_buckets", "num_threads", "chunk_size"}
)


class Backpressure(Exception):
    """Admission queue full; the client should retry after ``retry_after``."""

    def __init__(self, pending: int, limit: int, retry_after: int = 1):
        super().__init__(
            f"admission queue full ({pending} pending >= limit {limit})"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after = retry_after


@dataclass(frozen=True)
class QuerySpec:
    """One validated point query: program, source/target, schedule."""

    program: str
    source: int | None
    target: int | None
    schedule_key: tuple
    schedule: Schedule

    @property
    def vector(self) -> str:
        """Name of the output vector the program publishes."""
        return SERVABLE_PROGRAMS[self.program]

    @classmethod
    def from_params(cls, params: dict) -> "QuerySpec":
        """Build a spec from decoded request parameters.

        Raises :class:`~repro.errors.GraphError` on anything malformed —
        the server maps that to a 400, never a traversal.
        """
        program = params.get("program")
        if not isinstance(program, str) or program not in SERVABLE_PROGRAMS:
            raise GraphError(
                f"unknown or unservable program {program!r}; servable: "
                f"{', '.join(sorted(SERVABLE_PROGRAMS))}"
            )

        source = _int_param(params, "source")
        target = _int_param(params, "target")
        if program == "kcore":
            if source is not None:
                raise GraphError("kcore is a whole-graph query; drop 'source'")
        elif source is None:
            raise GraphError(f"{program} requires a 'source' vertex")
        if program == "ppsp":
            if target is None:
                raise GraphError("ppsp requires a 'target' vertex")
        elif target is not None:
            raise GraphError(f"{program} does not take a 'target' (only ppsp)")

        raw_schedule = params.get("schedule") or {}
        if isinstance(raw_schedule, str):
            raw_schedule = _parse_schedule_text(raw_schedule)
        if not isinstance(raw_schedule, dict):
            raise GraphError("'schedule' must be an object of knob settings")
        knobs: dict[str, object] = {}
        for name, value in raw_schedule.items():
            if name not in _SCHEDULE_KNOBS:
                raise GraphError(
                    f"unknown schedule knob {name!r}; settable: "
                    f"{', '.join(sorted(_SCHEDULE_KNOBS))}"
                )
            if name in _INT_KNOBS:
                try:
                    value = int(value)
                except (TypeError, ValueError):
                    raise GraphError(f"schedule knob {name!r} must be an integer")
            elif not isinstance(value, str):
                raise GraphError(f"schedule knob {name!r} must be a string")
            knobs[name] = value
        try:
            schedule = replace(Schedule(), **knobs)
        except (TypeError, ValueError) as error:
            raise GraphError(f"bad schedule: {error}")
        schedule_key = tuple(sorted(knobs.items()))
        return cls(
            program=program,
            source=source,
            target=target,
            schedule_key=schedule_key,
            schedule=schedule,
        )


def _int_param(params: dict, name: str) -> int | None:
    value = params.get(name)
    if value is None or value == "":
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise GraphError(f"{name!r} must be an integer vertex id, got {value!r}")


def _parse_schedule_text(text: str) -> dict:
    """``delta=4,priority_update=lazy`` → knob dict (query-string form)."""
    knobs: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep:
            raise GraphError(f"bad schedule setting {part!r}; expected knob=value")
        knobs[name.strip()] = value.strip()
    return knobs


class _RWLock:
    """Async reader/writer lock with writer preference.

    Queries hold the read side across their executor hop; mutations hold
    the write side.  New readers queue behind a waiting writer so a steady
    query stream cannot starve ``/mutate``.
    """

    def __init__(self):
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @asynccontextmanager
    async def read(self):
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @asynccontextmanager
    async def write(self):
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            async with self._cond:
                self._writer = False
                self._cond.notify_all()


class ServeEngine:
    """Shared-graph query engine behind ``repro serve``.

    Parameters
    ----------
    graph:
        The served CSR graph.  Compacted once up front so concurrent
        readers never race on lazy overlay compaction; thereafter it is
        only mutated (and re-compacted) under the write lock.
    graph_name:
        Display name used in responses and as the compiled programs'
        ``argv[1]``.
    max_pending:
        Admission budget: queries needing a fresh traversal beyond this
        many already-admitted ones are rejected with :class:`Backpressure`.
        Cache hits and coalesced joins are free — they consume no slot.
    cache_capacity:
        LRU capacity of the result cache (traversals, not vertices).
    max_sessions:
        How many incremental sessions to keep warm for post-mutation
        resume; least-recently-created beyond this are dropped (their
        queries still work — they just recompute from scratch).
    workers:
        Executor threads running traversals.
    """

    def __init__(
        self,
        graph: CSRGraph,
        graph_name: str = "<served>",
        max_pending: int = 64,
        cache_capacity: int = 128,
        max_sessions: int = 8,
        workers: int = 2,
    ):
        graph.indptr  # noqa: B018 — fold any pending overlay before sharing
        self.graph = graph
        self.graph_name = graph_name
        self.max_pending = int(max_pending)
        self.epoch = 0
        self.cache = ResultCache(cache_capacity)
        self.lock = _RWLock()
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._pending = 0
        self._max_sessions = int(max_sessions)
        self._sessions: OrderedDict[tuple, IncrementalSession] = OrderedDict()
        self._compiled: dict[tuple, CompiledProgram] = {}
        self._compile_lock = threading.Lock()
        self._state_lock = threading.Lock()
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(workers)), thread_name_prefix="serve"
        )

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def cache_key(self, spec: QuerySpec) -> tuple:
        return (self.epoch, spec.program, spec.source, spec.target, spec.schedule_key)

    def validate(self, spec: QuerySpec) -> None:
        n = self.graph.num_vertices
        for label, vertex in (("source", spec.source), ("target", spec.target)):
            if vertex is not None and not 0 <= vertex < n:
                raise GraphError(
                    f"{label} {vertex} out of range for a {n}-vertex graph"
                )

    async def query(self, spec: QuerySpec) -> tuple[CacheEntry, str]:
        """Answer one query; returns ``(entry, how)`` where ``how`` is
        ``"cache"``, ``"coalesced"``, or ``"computed"``."""
        metrics.counter("serve.requests").inc()
        self.validate(spec)
        key = self.cache_key(spec)
        entry = self.cache.get(key)
        if entry is not None:
            metrics.counter("serve.cache_hits").inc()
            return entry, "cache"
        metrics.counter("serve.cache_misses").inc()

        inflight = self._inflight.get(key)
        if inflight is not None:
            metrics.counter("serve.coalesced").inc()
            return await self._join(inflight), "coalesced"

        if self._pending >= self.max_pending:
            metrics.counter("serve.rejected").inc()
            raise Backpressure(self._pending, self.max_pending)
        self._pending += 1
        metrics.gauge("serve.queue_depth").set(self._pending)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            async with self.lock.read():
                loop = asyncio.get_running_loop()
                try:
                    entry = await loop.run_in_executor(
                        self._executor, self._compute, spec
                    )
                except Exception as error:  # propagate to coalesced joiners
                    # Result-wrapper instead of set_exception: a joiner that
                    # times out would otherwise leave an "exception never
                    # retrieved" warning on the abandoned future.
                    future.set_result(("error", error))
                    raise
            # Key includes the epoch, so an entry computed against the
            # pre-mutation graph can never answer a post-mutation query —
            # at worst it populates a key nothing will ever ask for again.
            self.cache.put(key, entry)
            future.set_result(("ok", entry))
            return entry, "computed"
        finally:
            self._inflight.pop(key, None)
            self._pending -= 1
            metrics.gauge("serve.queue_depth").set(self._pending)

    @staticmethod
    async def _join(future: asyncio.Future) -> CacheEntry:
        status, payload = await asyncio.shield(future)
        if status == "error":
            raise payload
        return payload

    # ------------------------------------------------------------------
    # Traversal execution (worker threads, read lock held by caller)
    # ------------------------------------------------------------------
    def _compute(self, spec: QuerySpec) -> CacheEntry:
        with span(
            "serve.execute",
            "serve",
            program=spec.program,
            source=-1 if spec.source is None else spec.source,
        ):
            if (
                spec.program in _SESSION_ALGORITHMS
                and spec.schedule.execution != "native"
            ):
                try:
                    return self._compute_session(spec)
                except SchedulingError:
                    pass  # e.g. wbfs with delta != 1 — the compiled path runs it
            return self._compute_compiled(spec)

    def _compute_session(self, spec: QuerySpec) -> CacheEntry:
        """Run (or reuse) an incremental session for resumable programs."""
        session_key = (spec.program, spec.source, spec.schedule_key)
        with self._state_lock:
            session = self._sessions.get(session_key)
        if session is None:
            session = IncrementalSession(
                self._graph_copy(),
                _SESSION_ALGORITHMS[spec.program],
                source=int(spec.source or 0),
                schedule=spec.schedule,
            )
            result = session.run()
            stats = {"rounds": result.stats.rounds}
            with self._state_lock:
                self._sessions[session_key] = session
                while len(self._sessions) > self._max_sessions:
                    self._sessions.popitem(last=False)
        else:
            stats = {}
        return CacheEntry(
            vectors={spec.vector: session.values.copy()},
            stats=stats,
            engine="incremental",
        )

    def _compute_compiled(self, spec: QuerySpec) -> CacheEntry:
        program = self._compiled_program(spec)
        argv = [spec.program, self.graph_name]
        if spec.source is not None:
            argv.append(str(spec.source))
        if spec.target is not None:
            argv.append(str(spec.target))
        result = program.run(argv, graph=self.graph)
        vector = result.globals[spec.vector]
        if not isinstance(vector, np.ndarray):
            raise GraphError(
                f"program {spec.program!r} produced no vector {spec.vector!r}"
            )
        return CacheEntry(
            vectors={spec.vector: vector},
            stats={"rounds": result.stats.rounds},
            engine="compiled",
        )

    def _compiled_program(self, spec: QuerySpec) -> CompiledProgram:
        key = (spec.program, spec.schedule_key)
        with self._compile_lock:
            program = self._compiled.get(key)
            if program is None:
                program = compile_program(ALL_PROGRAMS[spec.program], spec.schedule)
                self._compiled[key] = program
            return program

    def _graph_copy(self) -> CSRGraph:
        # The graph is compacted (init and every mutate do so), so the
        # property reads below are pure; the copy hands the session arrays
        # it may scribble on without perturbing concurrent readers.
        return CSRGraph(
            self.graph.indptr.copy(),
            self.graph.indices.copy(),
            self.graph.weights.copy(),
        )

    # ------------------------------------------------------------------
    # Mutation path
    # ------------------------------------------------------------------
    async def mutate(self, script: str) -> dict:
        """Apply a mutation script; invalidate and repopulate the cache."""
        batches = parse_mutation_script(script)
        if not batches:
            raise GraphError("mutation script contains no mutations")
        async with self.lock.write():
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._mutate_locked, batches
            )

    def _mutate_locked(self, batches: list) -> dict:
        total = sum(len(batch) for batch in batches)
        with span("serve.mutate", "serve", batches=len(batches), mutations=total):
            for batch in batches:
                apply_mutations(self.graph, batch)
            self.graph.indptr  # noqa: B018 — compact while no reader can see it
            resumed = 0
            with self._state_lock:
                sessions = list(self._sessions.items())
            for _, session in sessions:
                for batch in batches:
                    session.apply(batch)
                metrics.counter("serve.resumes").inc()
                resumed += 1
            self.epoch += 1
            invalidated = self.cache.clear()
            # Repopulate from the resumed sessions: their converged vectors
            # are already current for the new epoch, so the first queries
            # after a mutation hit the cache instead of recomputing.
            for (program, source, schedule_key), session in sessions:
                key = (self.epoch, program, source, None, schedule_key)
                self.cache.put(
                    key,
                    CacheEntry(
                        vectors={SERVABLE_PROGRAMS[program]: session.values.copy()},
                        engine="incremental",
                    ),
                )
            metrics.counter("serve.mutations").inc()
        return {
            "batches": len(batches),
            "mutations": total,
            "epoch": self.epoch,
            "invalidated": invalidated,
            "resumed_sessions": resumed,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "graph": self.graph_name,
            "num_vertices": int(self.graph.num_vertices),
            "num_edges": int(self.graph.num_edges),
            "epoch": self.epoch,
            "pending": self._pending,
            "max_pending": self.max_pending,
            "inflight": len(self._inflight),
            "sessions": len(self._sessions),
            "cache": self.cache.stats(),
            "programs": sorted(SERVABLE_PROGRAMS),
        }

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
