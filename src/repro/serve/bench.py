"""Closed-loop load-test harness behind ``repro bench-serve``.

Boots a real :class:`~repro.serve.server.QueryServer` (own event-loop
thread, real TCP sockets), then drives it with ``clients`` closed-loop
threads — each issues its next query the moment the previous response
lands, the standard closed-loop model for latency/throughput benches.

Sources are drawn from a finite pool of the highest-out-degree vertices
under a Zipf distribution, so the traffic has the skew that makes a result
cache worth having: a few hot sources dominate, the tail keeps missing.
The Zipf draw is hand-rolled inverse-CDF over the finite pool (a plain
``rng.random()`` float against precomputed cumulative weights), so the
sequence of sources is bit-stable across numpy versions — which is what
lets the bench report **deterministic** counters (``unique_sources``,
``responses_ok``) that ``bench-check`` can compare exactly, alongside the
wall-clock percentiles it compares with tolerance.

Two measured phases:

* **mixed** — all clients, Zipf sources, cold cache: misses pay a real
  traversal, hits and coalesced joins ride along.  Yields throughput and
  the end-to-end latency percentiles.
* **cached** — one client replays the hottest source: every request is a
  cache hit.  Yields the cached-hit percentiles (the ``cached_p95_ms``
  floor in CI).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..graph.generators import rmat
from .client import ServeClient
from .server import ServerHandle, start_in_thread

__all__ = ["FLOORS", "check_floors", "percentile", "run_serve_bench", "zipf_ranks"]

#: CI floors enforced by ``repro bench-check`` on the fresh run (and by
#: ``repro bench-serve --enforce-floors``).  From the acceptance criteria:
#: >= 200 qps at 8 closed-loop clients, p95 < 100 ms, cached-hit p95 < 5 ms.
FLOORS = {
    "throughput_qps": 200.0,
    "p95_ms": 100.0,
    "cached_p95_ms": 5.0,
}


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for an empty list)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def zipf_ranks(rng: np.random.Generator, count: int, pool: int, s: float) -> list[int]:
    """``count`` Zipf(s)-distributed ranks in ``[0, pool)``.

    Inverse-CDF over the finite pool: only ``rng.random()`` is consumed,
    so the draw is bit-stable across numpy versions (unlike
    ``Generator.zipf``, whose rejection sampling is an implementation
    detail).
    """
    weights = 1.0 / np.arange(1, pool + 1, dtype=np.float64) ** s
    cumulative = np.cumsum(weights / weights.sum())
    draws = rng.random(count)
    return np.searchsorted(cumulative, draws, side="right").tolist()


def _source_pool(graph, size: int) -> list[int]:
    """The ``size`` highest-out-degree vertices (hottest-first)."""
    degrees = np.diff(graph.indptr)
    order = np.argsort(-degrees, kind="stable")
    return [int(vertex) for vertex in order[:size]]


def _client_worker(
    host: str,
    port: int,
    program: str,
    schedule: dict,
    sources: list[int],
    latencies_ms: list[float],
    outcomes: list[str],
    barrier: threading.Barrier,
) -> None:
    with ServeClient(host, port) as client:
        barrier.wait()
        for source in sources:
            start = time.perf_counter()
            response = client.query(program, source=source, schedule=schedule)
            latencies_ms.append((time.perf_counter() - start) * 1e3)
            if response.status == 200:
                outcomes.append(response.json()["served"])
            else:
                outcomes.append(f"http_{response.status}")


def run_serve_bench(
    scale: int = 10,
    edge_factor: int = 16,
    seed: int = 0,
    clients: int = 8,
    requests: int = 50,
    pool_size: int = 24,
    zipf_s: float = 1.2,
    program: str = "sssp",
    delta: int = 3,
    cached_requests: int = 200,
    max_pending: int = 64,
) -> dict:
    """Run the two-phase load test; returns the ``BENCH_serve.json`` record."""
    graph = rmat(scale, edge_factor, seed=seed, weights=(1, 4))
    graph_name = f"rmat(scale={scale},edge_factor={edge_factor},seed={seed})"
    schedule = {"priority_update": "lazy", "delta": delta}
    handle: ServerHandle = start_in_thread(
        graph, graph_name=graph_name, max_pending=max_pending
    )
    host, port = handle.address
    try:
        pool = _source_pool(graph, pool_size)
        plans: list[list[int]] = []
        for index in range(clients):
            rng = np.random.default_rng(seed * 1_000_003 + index)
            ranks = zipf_ranks(rng, requests, len(pool), zipf_s)
            plans.append([pool[rank] for rank in ranks])
        unique_sources = len({source for plan in plans for source in plan})

        # -- mixed phase: all clients, cold cache ----------------------
        latencies: list[list[float]] = [[] for _ in range(clients)]
        outcomes: list[list[str]] = [[] for _ in range(clients)]
        barrier = threading.Barrier(clients + 1)
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    host,
                    port,
                    program,
                    schedule,
                    plans[index],
                    latencies[index],
                    outcomes[index],
                    barrier,
                ),
                name=f"bench-client-{index}",
            )
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        all_latencies = [sample for bucket in latencies for sample in bucket]
        all_outcomes = [outcome for bucket in outcomes for outcome in bucket]
        total = len(all_outcomes)
        responses_ok = sum(
            1 for outcome in all_outcomes if not outcome.startswith("http_")
        )

        # -- cached phase: one client, hottest source, all hits --------
        cached_latencies: list[float] = []
        with ServeClient(host, port) as client:
            client.query(program, source=pool[0], schedule=schedule)  # warm
            for _ in range(cached_requests):
                start = time.perf_counter()
                client.query(program, source=pool[0], schedule=schedule)
                cached_latencies.append((time.perf_counter() - start) * 1e3)

        health = ServeClient(host, port).healthz()
    finally:
        handle.stop()

    served = {
        outcome: all_outcomes.count(outcome)
        for outcome in sorted(set(all_outcomes))
    }
    return {
        "benchmark": "query service closed-loop load test (repro serve)",
        "graph": {
            "kind": "rmat",
            "scale": scale,
            "edge_factor": edge_factor,
            "seed": seed,
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
        },
        "program": program,
        "schedule": schedule,
        "clients": clients,
        "requests_per_client": requests,
        "pool_size": pool_size,
        "zipf_s": zipf_s,
        "cached_requests": cached_requests,
        "max_pending": max_pending,
        "total_requests": total,
        "responses_ok": responses_ok,
        "unique_sources": unique_sources,
        "served": served,
        "throughput_qps": total / elapsed if elapsed else 0.0,
        "elapsed_seconds": elapsed,
        "p50_ms": percentile(all_latencies, 0.50),
        "p95_ms": percentile(all_latencies, 0.95),
        "p99_ms": percentile(all_latencies, 0.99),
        "cached_p50_ms": percentile(cached_latencies, 0.50),
        "cached_p95_ms": percentile(cached_latencies, 0.95),
        "floors": dict(FLOORS),
        "server_cache": health["cache"],
    }


def check_floors(record: dict) -> list[str]:
    """Floor violations in a bench record (empty list = within budget)."""
    floors = record.get("floors", FLOORS)
    problems: list[str] = []
    if record["throughput_qps"] < floors["throughput_qps"]:
        problems.append(
            f"throughput {record['throughput_qps']:.1f} qps below the "
            f"{floors['throughput_qps']:.0f} qps floor"
        )
    if record["p95_ms"] > floors["p95_ms"]:
        problems.append(
            f"p95 latency {record['p95_ms']:.2f} ms above the "
            f"{floors['p95_ms']:.0f} ms ceiling"
        )
    if record["cached_p95_ms"] > floors["cached_p95_ms"]:
        problems.append(
            f"cached-hit p95 {record['cached_p95_ms']:.2f} ms above the "
            f"{floors['cached_p95_ms']:.0f} ms ceiling"
        )
    return problems
