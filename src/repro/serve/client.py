"""A small blocking client for the query service.

Built on :mod:`http.client` (stdlib), used by the load-test harness
(``repro bench-serve``), the concurrency test suite, and anything that
wants to talk to ``repro serve`` without hand-writing HTTP.  One
:class:`ServeClient` holds one keep-alive connection and is **not**
thread-safe — give each closed-loop client thread its own instance.
"""

from __future__ import annotations

import http.client
import json

__all__ = ["ServeClient", "ServeResponse"]


class ServeResponse:
    """Status, headers, and decoded body of one exchange."""

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    @property
    def retry_after(self) -> int | None:
        value = self.headers.get("retry-after")
        return int(value) if value is not None else None

    def raise_for_status(self) -> "ServeResponse":
        if self.status >= 400:
            raise RuntimeError(
                f"server returned {self.status}: {self.body.decode('utf-8', 'replace')!r}"
            )
        return self


class ServeClient:
    """One keep-alive connection to a running query server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: bytes | str | None = None,
        content_type: str = "application/json",
    ) -> ServeResponse:
        if isinstance(body, str):
            body = body.encode("utf-8")
        headers = {"Content-Type": content_type} if body is not None else {}
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                raw = connection.getresponse()
                payload = raw.read()
                return ServeResponse(
                    raw.status,
                    {name.lower(): value for name, value in raw.getheaders()},
                    payload,
                )
            except (
                http.client.RemoteDisconnected,
                BrokenPipeError,
                ConnectionResetError,
            ):
                # The server closed the keep-alive connection (idle timeout,
                # restart); reconnect once before giving up.
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self.request("GET", "/healthz").raise_for_status().json()

    def metrics_text(self) -> str:
        response = self.request("GET", "/metrics").raise_for_status()
        return response.body.decode("utf-8")

    def query(
        self,
        program: str,
        source: int | None = None,
        target: int | None = None,
        vertex: int | None = None,
        schedule: dict | None = None,
        full: bool = False,
    ) -> ServeResponse:
        """POST one query; returns the raw response (may be 4xx/429)."""
        document: dict = {"program": program}
        if source is not None:
            document["source"] = source
        if target is not None:
            document["target"] = target
        if vertex is not None:
            document["vertex"] = vertex
        if schedule:
            document["schedule"] = schedule
        if full:
            document["full"] = True
        return self.request("POST", "/query", body=json.dumps(document))

    def mutate(self, script: str) -> dict:
        response = self.request(
            "POST", "/mutate", body=script, content_type="text/plain"
        )
        return response.raise_for_status().json()
