"""The asyncio HTTP server in front of :class:`~repro.serve.engine.ServeEngine`.

Endpoints (all JSON unless noted):

``GET /healthz``
    Liveness plus a stats snapshot (epoch, cache, admission state).
``GET /metrics``
    Prometheus text exposition — the same
    :func:`repro.obs.metrics.prometheus_text` that backs
    ``repro metrics --format prom``; there is exactly one exposition
    function in the codebase.
``GET/POST /query``
    One point query.  Parameters (query string on GET, JSON body on POST):
    ``program``, ``source``, ``target`` (ppsp), ``vertex`` (which entry of
    the output vector to return; defaults to ``target``/``source``),
    ``full`` (return the whole vector), ``schedule`` (knob object, or
    ``knob=value,...`` text on GET).
``POST /mutate``
    Body is a mutation script (``add/remove/update`` lines, ``flush``
    separators) — either raw text or JSON ``{"script": "..."}``.

Failure mapping: :class:`Backpressure` → ``429`` with ``Retry-After``
(the admission queue is full; accepted requests are never dropped),
:class:`~repro.errors.GraphItError` → ``400`` (the request was wrong),
anything else → ``500`` with a crash-forensics dump
(:func:`repro.obs.flight.dump_forensics`) so ``repro last-run`` can
explain a dead handler after the fact.
"""

from __future__ import annotations

import asyncio
import threading
import time

from ..errors import GraphItError
from ..obs import dump_forensics, metrics, span
from ..obs.metrics import prometheus_text
from .engine import Backpressure, QuerySpec, ServeEngine
from .http import (
    HTTPError,
    HTTPRequest,
    format_response,
    json_response,
    read_request,
)

__all__ = ["QueryServer", "ServerHandle", "start_in_thread"]

#: Idle keep-alive connections are dropped after this many seconds.
IDLE_TIMEOUT = 120.0


class QueryServer:
    """One listening socket dispatching into a shared :class:`ServeEngine`."""

    def __init__(self, engine: ServeEngine, host: str = "127.0.0.1", port: int = 0):
        self.engine = engine
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Kick idle keep-alive connections: closing the transport feeds EOF
        # into their pending read, which ends the handler loop cleanly.
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.wait(list(self._handlers), timeout=10)
        self.engine.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), timeout=IDLE_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    writer.write(
                        json_response(408, {"error": "idle timeout"}, close=True)
                    )
                    break
                except HTTPError as error:
                    writer.write(
                        json_response(
                            error.status, {"error": error.message}, close=True
                        )
                    )
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if request.close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: HTTPRequest) -> bytes:
        start = time.perf_counter()
        head_only = request.method == "HEAD"
        with span("serve.request", "serve", method=request.method, path=request.path):
            try:
                response = await self._route(request, head_only)
            except Backpressure as error:
                response = json_response(
                    429,
                    {
                        "error": str(error),
                        "pending": error.pending,
                        "limit": error.limit,
                    },
                    extra_headers={"Retry-After": str(error.retry_after)},
                    close=request.close,
                    head_only=head_only,
                )
            except HTTPError as error:
                response = json_response(
                    error.status,
                    {"error": error.message},
                    close=request.close,
                    head_only=head_only,
                )
            except GraphItError as error:
                response = json_response(
                    400, {"error": str(error)}, close=request.close, head_only=head_only
                )
            except Exception as error:  # noqa: BLE001 — keep the server up
                metrics.counter("serve.errors").inc()
                dump_forensics(error, ["serve", request.method, request.path])
                response = json_response(
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                    close=request.close,
                    head_only=head_only,
                )
        metrics.histogram("serve.latency_us").observe(
            (time.perf_counter() - start) * 1e6
        )
        return response

    async def _route(self, request: HTTPRequest, head_only: bool) -> bytes:
        method, path = request.method, request.path
        if path == "/healthz":
            if method not in ("GET", "HEAD"):
                raise HTTPError(405, f"{method} not allowed on {path}")
            document = {"status": "ok", **self.engine.stats()}
            return json_response(
                200, document, close=request.close, head_only=head_only
            )
        if path == "/metrics":
            if method not in ("GET", "HEAD"):
                raise HTTPError(405, f"{method} not allowed on {path}")
            body = prometheus_text().encode("utf-8")
            return format_response(
                200,
                body,
                content_type="text/plain; version=0.0.4",
                close=request.close,
                head_only=head_only,
            )
        if path == "/query":
            if method == "GET":
                params: dict = dict(request.query)
            elif method == "POST":
                params = request.json()
            else:
                raise HTTPError(405, f"{method} not allowed on {path}")
            return await self._handle_query(request, params)
        if path == "/mutate":
            if method != "POST":
                raise HTTPError(405, f"{method} not allowed on {path}")
            return await self._handle_mutate(request)
        raise HTTPError(404, f"no route for {path}")

    async def _handle_query(self, request: HTTPRequest, params: dict) -> bytes:
        spec = QuerySpec.from_params(params)
        full = str(params.get("full", "")).lower() in ("1", "true", "yes")
        vertex = params.get("vertex")
        if vertex is not None:
            try:
                vertex = int(vertex)
            except (TypeError, ValueError):
                raise HTTPError(400, f"'vertex' must be an integer, got {vertex!r}")
            n = self.engine.graph.num_vertices
            if not 0 <= vertex < n:
                raise HTTPError(
                    400, f"vertex {vertex} out of range for a {n}-vertex graph"
                )
        entry, how = await self.engine.query(spec)
        values = entry.vectors[spec.vector]
        read_at = vertex
        if read_at is None:
            read_at = spec.target if spec.target is not None else spec.source
        document = {
            "program": spec.program,
            "source": spec.source,
            "target": spec.target,
            "vector": spec.vector,
            "engine": entry.engine,
            "served": how,
            "epoch": self.engine.epoch,
        }
        if read_at is not None:
            document["vertex"] = read_at
            document["value"] = int(values[read_at])
        if full or read_at is None:
            document["values"] = [int(value) for value in values]
        if entry.stats:
            document["stats"] = {
                key: int(value) for key, value in entry.stats.items()
            }
        return json_response(200, document, close=request.close)

    async def _handle_mutate(self, request: HTTPRequest) -> bytes:
        content_type = request.headers.get("content-type", "")
        if "json" in content_type:
            document = request.json()
            script = document.get("script")
            if not isinstance(script, str):
                raise HTTPError(400, 'JSON mutate body needs a "script" string')
        else:
            script = request.text()
        summary = await self.engine.mutate(script)
        return json_response(200, {"status": "ok", **summary}, close=request.close)


class ServerHandle:
    """A server running on a daemon thread (tests and the bench harness)."""

    def __init__(self, server: QueryServer, loop: asyncio.AbstractEventLoop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        return (self.server.host, self.server.port)

    def stop(self, timeout: float = 10.0) -> None:
        if self.loop.is_running():
            asyncio.run_coroutine_threadsafe(self.server.close(), self.loop).result(
                timeout
            )
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)


def start_in_thread(
    graph,
    graph_name: str = "<served>",
    host: str = "127.0.0.1",
    port: int = 0,
    **engine_kwargs,
) -> ServerHandle:
    """Boot a :class:`QueryServer` on a background event-loop thread."""
    engine = ServeEngine(graph, graph_name=graph_name, **engine_kwargs)
    server = QueryServer(engine, host=host, port=port)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # noqa: BLE001 — surfaced to the caller
            failure.append(error)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="serve-loop", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if failure:
        raise failure[0]
    return ServerHandle(server, loop, thread)
