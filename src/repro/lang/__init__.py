"""DSL frontend: lexer, parser, AST, type checker, benchmark programs."""

from . import ast_nodes
from .lexer import tokenize
from .parser import parse
from .programs import ALL_PROGRAMS, program_source
from .span import Span
from .symbols import Scope, SymbolTable
from .typecheck import typecheck
from .types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    VOID,
    EdgeSetType,
    ElementType,
    FunctionType,
    PriorityQueueType,
    ScalarType,
    Type,
    VectorType,
    VertexSetType,
)

__all__ = [
    "tokenize",
    "parse",
    "Span",
    "typecheck",
    "ast_nodes",
    "Scope",
    "SymbolTable",
    "ALL_PROGRAMS",
    "program_source",
    "Type",
    "ScalarType",
    "ElementType",
    "VertexSetType",
    "EdgeSetType",
    "VectorType",
    "PriorityQueueType",
    "FunctionType",
    "INT",
    "FLOAT",
    "BOOL",
    "STRING",
    "VOID",
]
