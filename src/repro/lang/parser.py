"""Recursive-descent parser for the GraphIt algorithm-language subset.

The grammar covers everything the paper's programs use (Figure 3, Figure 8,
Figure 10): element/const/func declarations, generic graph types, statement
labels (``#s1#``), the priority-queue constructor with its two argument
lists, method-call chains (``edges.from(b).applyUpdatePriority(f)``), and
the trailing ``schedule:`` block with ``program->command(...)`` chains.
"""

from __future__ import annotations

from ..errors import ParseError
from ..obs import span as trace_span
from . import ast_nodes as ast
from .lexer import tokenize
from .tokens import Token, TokenKind
from .types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    ElementType,
    EdgeSetType,
    PriorityQueueType,
    ScalarType,
    Type,
    VectorType,
    VertexSetType,
)

__all__ = ["parse", "Parser"]

_SCALAR_TYPES = {"int": INT, "float": FLOAT, "bool": BOOL, "string": STRING}

_COMPARISONS = {
    TokenKind.EQ: "==",
    TokenKind.NEQ: "!=",
    TokenKind.LT: "<",
    TokenKind.GT: ">",
    TokenKind.LE: "<=",
    TokenKind.GE: ">=",
}

_ADDITIVE = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MULTIPLICATIVE = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}


def parse(source: str, filename: str | None = None) -> ast.Program:
    """Parse DSL source text into a :class:`~repro.lang.ast_nodes.Program`.

    ``filename`` (when given) is recorded on the returned program and
    attached to every :class:`~repro.lang.span.Span` in parse errors, so
    diagnostics render as clickable ``file:line:col`` locations.
    """
    with trace_span("lex", "compiler", file=filename or "<string>") as sp:
        tokens = tokenize(source, filename)
        if sp is not None:
            sp["tokens"] = len(tokens)
    with trace_span("parse", "compiler", file=filename or "<string>"):
        program = Parser(tokens, filename).parse_program()
    program.source_file = filename
    return program


class Parser:
    def __init__(self, tokens: list[Token], filename: str | None = None):
        self._tokens = tokens
        self._filename = filename
        self._position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._current.kind is kind

    def _match(self, kind: TokenKind) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        if not self._check(kind):
            raise self._error(
                f"expected {kind.value!r} {context}, found {self._current.text!r}"
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(
            message,
            self._current.line,
            self._current.column,
            span=self._current.span.with_file(self._filename),
        )

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        elements: list[ast.ElementDecl] = []
        constants: list[ast.ConstDecl] = []
        functions: list[ast.FuncDecl] = []
        externs: list[ast.ExternFuncDecl] = []
        schedule: list[ast.ScheduleStmt] = []

        while not self._check(TokenKind.EOF):
            if self._check(TokenKind.ELEMENT):
                elements.append(self._parse_element())
            elif self._check(TokenKind.CONST):
                constants.append(self._parse_const())
            elif self._check(TokenKind.FUNC):
                functions.append(self._parse_func())
            elif self._check(TokenKind.EXTERN):
                externs.append(self._parse_extern())
            elif self._check(TokenKind.SCHEDULE):
                schedule = self._parse_schedule_block()
            else:
                raise self._error(
                    "expected a declaration (element, const, func, extern) "
                    "or a schedule block"
                )
        return ast.Program(
            elements=elements,
            constants=constants,
            functions=functions,
            externs=externs,
            schedule=schedule,
        )

    def _parse_element(self) -> ast.ElementDecl:
        token = self._expect(TokenKind.ELEMENT, "to open an element declaration")
        name = self._expect(TokenKind.IDENT, "after 'element'").text
        self._expect(TokenKind.END, "to close the element declaration")
        return ast.ElementDecl(name, line=token.line, column=token.column)

    def _parse_const(self) -> ast.ConstDecl:
        token = self._expect(TokenKind.CONST, "to open a const declaration")
        name = self._expect(TokenKind.IDENT, "after 'const'").text
        self._expect(TokenKind.COLON, "after the const name")
        declared_type = self._parse_type()
        initializer = None
        if self._match(TokenKind.ASSIGN):
            initializer = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "to end the const declaration")
        return ast.ConstDecl(name, declared_type, initializer, line=token.line, column=token.column)

    def _parse_extern(self) -> ast.ExternFuncDecl:
        token = self._expect(TokenKind.EXTERN, "to open an extern declaration")
        self._expect(TokenKind.FUNC, "after 'extern'")
        name = self._expect(TokenKind.IDENT, "after 'extern func'").text
        self._expect(TokenKind.SEMICOLON, "to end the extern declaration")
        return ast.ExternFuncDecl(name, line=token.line, column=token.column)

    def _parse_func(self) -> ast.FuncDecl:
        token = self._expect(TokenKind.FUNC, "to open a function")
        name = self._expect(TokenKind.IDENT, "after 'func'").text
        self._expect(TokenKind.LPAREN, "after the function name")
        parameters: list[tuple[str, Type]] = []
        while not self._check(TokenKind.RPAREN):
            param_name = self._expect(TokenKind.IDENT, "as a parameter name").text
            self._expect(TokenKind.COLON, "after the parameter name")
            parameters.append((param_name, self._parse_type()))
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN, "to close the parameter list")
        result = None
        if self._match(TokenKind.ARROW):
            self._expect(TokenKind.LPAREN, "after '->'")
            result_name = self._expect(TokenKind.IDENT, "as the result name").text
            self._expect(TokenKind.COLON, "after the result name")
            result = (result_name, self._parse_type())
            self._expect(TokenKind.RPAREN, "to close the result declaration")
        body = self._parse_statements_until(TokenKind.END)
        self._expect(TokenKind.END, "to close the function")
        return ast.FuncDecl(name, parameters, result, body, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _parse_type(self) -> Type:
        token = self._expect(TokenKind.IDENT, "as a type name")
        name = token.text
        if name in _SCALAR_TYPES:
            return _SCALAR_TYPES[name]
        if name == "vertexset":
            element = self._parse_element_argument()
            return VertexSetType(element)
        if name == "edgeset":
            element = self._parse_element_argument()
            self._expect(TokenKind.LPAREN, "for the edgeset signature")
            source = self._parse_type()
            self._expect(TokenKind.COMMA, "between edgeset endpoint types")
            destination = self._parse_type()
            weight = None
            if self._match(TokenKind.COMMA):
                weight = self._parse_type()
                if not isinstance(weight, ScalarType):
                    raise self._error("edge weights must have a scalar type")
            self._expect(TokenKind.RPAREN, "to close the edgeset signature")
            if not isinstance(source, ElementType) or not isinstance(
                destination, ElementType
            ):
                raise self._error("edgeset endpoints must be element types")
            return EdgeSetType(element, source, destination, weight)
        if name == "vector":
            element = self._parse_element_argument()
            self._expect(TokenKind.LPAREN, "for the vector value type")
            value = self._parse_type()
            self._expect(TokenKind.RPAREN, "to close the vector value type")
            return VectorType(element, value)
        if name == "priority_queue":
            element = self._parse_element_argument()
            self._expect(TokenKind.LPAREN, "for the priority value type")
            value = self._parse_type()
            self._expect(TokenKind.RPAREN, "to close the priority value type")
            return PriorityQueueType(element, value)
        # Any other identifier is an element type reference.
        return ElementType(name)

    def _parse_element_argument(self) -> ElementType:
        self._expect(TokenKind.LBRACE, "for the element type argument")
        name = self._expect(TokenKind.IDENT, "as the element type").text
        self._expect(TokenKind.RBRACE, "to close the element type argument")
        return ElementType(name)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_statements_until(self, *terminators: TokenKind) -> list[ast.Stmt]:
        stop = set(terminators) | {TokenKind.EOF, TokenKind.ELSE, TokenKind.ELIF}
        body: list[ast.Stmt] = []
        while self._current.kind not in stop:
            body.append(self._parse_statement())
        return body

    def _parse_statement(self) -> ast.Stmt:
        label = None
        if self._check(TokenKind.HASH):
            self._advance()
            label = self._expect(TokenKind.IDENT, "as the statement label").text
            self._expect(TokenKind.HASH, "to close the statement label")
        statement = self._parse_unlabeled_statement()
        statement.label = label
        return statement

    def _parse_unlabeled_statement(self) -> ast.Stmt:
        token = self._current
        if self._check(TokenKind.VAR):
            return self._parse_var_decl()
        if self._check(TokenKind.WHILE):
            self._advance()
            condition = self._parse_expression()
            body = self._parse_statements_until(TokenKind.END)
            self._expect(TokenKind.END, "to close the while loop")
            return ast.While(condition, body, line=token.line, column=token.column)
        if self._check(TokenKind.IF):
            return self._parse_if()
        if self._check(TokenKind.FOR):
            self._advance()
            variable = self._expect(TokenKind.IDENT, "as the loop variable").text
            self._expect(TokenKind.IN, "after the loop variable")
            start = self._parse_expression()
            self._expect(TokenKind.COLON, "in the loop range")
            stop = self._parse_expression()
            body = self._parse_statements_until(TokenKind.END)
            self._expect(TokenKind.END, "to close the for loop")
            return ast.For(variable, start, stop, body, line=token.line, column=token.column)
        if self._check(TokenKind.PRINT):
            self._advance()
            expression = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "to end the print statement")
            return ast.Print(expression, line=token.line, column=token.column)
        if self._check(TokenKind.DELETE):
            self._advance()
            name = self._expect(TokenKind.IDENT, "after 'delete'").text
            self._expect(TokenKind.SEMICOLON, "to end the delete statement")
            return ast.Delete(name, line=token.line, column=token.column)
        if self._check(TokenKind.RETURN):
            self._advance()
            value = None
            if not self._check(TokenKind.SEMICOLON):
                value = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "to end the return statement")
            return ast.Return(value, line=token.line, column=token.column)

        expression = self._parse_expression()
        if self._match(TokenKind.ASSIGN):
            if not isinstance(expression, (ast.Name, ast.Index)):
                raise self._error("assignment target must be a name or an index")
            value = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "to end the assignment")
            return ast.Assign(expression, value, line=token.line, column=token.column)
        self._expect(TokenKind.SEMICOLON, "to end the expression statement")
        return ast.ExprStmt(expression, line=token.line, column=token.column)

    def _parse_var_decl(self) -> ast.VarDecl:
        token = self._expect(TokenKind.VAR, "to open a var declaration")
        name = self._expect(TokenKind.IDENT, "after 'var'").text
        self._expect(TokenKind.COLON, "after the variable name")
        declared_type = self._parse_type()
        initializer = None
        if self._match(TokenKind.ASSIGN):
            initializer = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "to end the var declaration")
        return ast.VarDecl(name, declared_type, initializer, line=token.line, column=token.column)

    def _parse_if(self) -> ast.If:
        token = self._advance()  # 'if' or 'elif'
        condition = self._parse_expression()
        then_body = self._parse_statements_until(TokenKind.END)
        else_body: list[ast.Stmt] = []
        if self._check(TokenKind.ELIF):
            else_body = [self._parse_if()]
            return ast.If(condition, then_body, else_body, line=token.line, column=token.column)
        if self._match(TokenKind.ELSE):
            else_body = self._parse_statements_until(TokenKind.END)
        self._expect(TokenKind.END, "to close the if statement")
        return ast.If(condition, then_body, else_body, line=token.line, column=token.column)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check(TokenKind.OR):
            token = self._advance()
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right, line=token.line, column=token.column)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._check(TokenKind.AND):
            token = self._advance()
            right = self._parse_not()
            left = ast.BinaryOp("and", left, right, line=token.line, column=token.column)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._check(TokenKind.NOT):
            token = self._advance()
            return ast.UnaryOp("not", self._parse_not(), line=token.line, column=token.column)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while self._current.kind in _COMPARISONS:
            operator = _COMPARISONS[self._current.kind]
            token = self._advance()
            right = self._parse_additive()
            left = ast.BinaryOp(operator, left, right, line=token.line, column=token.column)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._current.kind in _ADDITIVE:
            operator = _ADDITIVE[self._current.kind]
            token = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinaryOp(operator, left, right, line=token.line, column=token.column)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._current.kind in _MULTIPLICATIVE:
            operator = _MULTIPLICATIVE[self._current.kind]
            token = self._advance()
            right = self._parse_unary()
            left = ast.BinaryOp(operator, left, right, line=token.line, column=token.column)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check(TokenKind.MINUS):
            token = self._advance()
            return ast.UnaryOp("-", self._parse_unary(), line=token.line, column=token.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expression = self._parse_primary()
        while True:
            if self._check(TokenKind.DOT):
                self._advance()
                method = self._expect(TokenKind.IDENT, "as a method name").text
                self._expect(TokenKind.LPAREN, "to open the method arguments")
                arguments = self._parse_arguments()
                expression = ast.MethodCall(
                    expression,
                    method,
                    arguments,
                    line=expression.line,
                    column=expression.column,
                )
            elif self._check(TokenKind.LBRACKET):
                self._advance()
                index = self._parse_expression()
                self._expect(TokenKind.RBRACKET, "to close the index")
                expression = ast.Index(
                    expression,
                    index,
                    line=expression.line,
                    column=expression.column,
                )
            else:
                return expression

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if self._match(TokenKind.INT):
            return ast.IntLiteral(int(token.text), line=token.line, column=token.column)
        if self._match(TokenKind.FLOAT):
            return ast.FloatLiteral(float(token.text), line=token.line, column=token.column)
        if self._match(TokenKind.STRING):
            return ast.StringLiteral(token.text, line=token.line, column=token.column)
        if self._match(TokenKind.TRUE):
            return ast.BoolLiteral(True, line=token.line, column=token.column)
        if self._match(TokenKind.FALSE):
            return ast.BoolLiteral(False, line=token.line, column=token.column)
        if self._match(TokenKind.NEW):
            new_type = self._parse_type()
            self._expect(TokenKind.LPAREN, "to open the constructor arguments")
            arguments = self._parse_arguments()
            return ast.New(new_type, arguments, line=token.line, column=token.column)
        if self._check(TokenKind.IDENT):
            self._advance()
            if self._check(TokenKind.LPAREN):
                self._advance()
                arguments = self._parse_arguments()
                return ast.Call(token.text, arguments, line=token.line, column=token.column)
            return ast.Name(token.text, line=token.line, column=token.column)
        if self._match(TokenKind.LPAREN):
            expression = self._parse_expression()
            self._expect(TokenKind.RPAREN, "to close the parenthesized expression")
            return expression
        raise self._error(f"expected an expression, found {token.text!r}")

    def _parse_arguments(self) -> list[ast.Expr]:
        arguments: list[ast.Expr] = []
        while not self._check(TokenKind.RPAREN):
            arguments.append(self._parse_expression())
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN, "to close the argument list")
        return arguments

    # ------------------------------------------------------------------
    # Schedule block
    # ------------------------------------------------------------------
    def _parse_schedule_block(self) -> list[ast.ScheduleStmt]:
        self._expect(TokenKind.SCHEDULE, "to open the schedule block")
        self._expect(TokenKind.COLON, "after 'schedule'")
        statements: list[ast.ScheduleStmt] = []
        while self._check(TokenKind.IDENT) and self._current.text == "program":
            self._advance()
            while self._check(TokenKind.ARROW):
                self._advance()
                command_token = self._expect(
                    TokenKind.IDENT, "as a scheduling command"
                )
                self._expect(TokenKind.LPAREN, "to open the scheduling arguments")
                arguments: list[str] = []
                while not self._check(TokenKind.RPAREN):
                    argument = self._current
                    if argument.kind in (TokenKind.STRING, TokenKind.INT, TokenKind.IDENT):
                        arguments.append(argument.text)
                        self._advance()
                    else:
                        raise self._error(
                            "scheduling arguments must be strings, integers, "
                            "or identifiers"
                        )
                    if not self._match(TokenKind.COMMA):
                        break
                self._expect(TokenKind.RPAREN, "to close the scheduling arguments")
                statements.append(
                    ast.ScheduleStmt(
                        command_token.text, arguments, line=command_token.line, column=command_token.column
                    )
                )
            self._match(TokenKind.SEMICOLON)
        return statements
