"""Token definitions for the GraphIt algorithm-language subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .span import Span

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(enum.Enum):
    # Literals and identifiers
    INT = "int_literal"
    FLOAT = "float_literal"
    STRING = "string_literal"
    IDENT = "identifier"

    # Keywords
    ELEMENT = "element"
    CONST = "const"
    VAR = "var"
    FUNC = "func"
    EXTERN = "extern"
    END = "end"
    WHILE = "while"
    IF = "if"
    ELIF = "elif"
    ELSE = "else"
    FOR = "for"
    IN = "in"
    RETURN = "return"
    DELETE = "delete"
    NEW = "new"
    TRUE = "true"
    FALSE = "false"
    AND = "and"
    OR = "or"
    NOT = "not"
    PRINT = "print"
    SCHEDULE = "schedule"

    # Punctuation and operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    HASH = "#"
    ARROW = "->"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    EOF = "eof"


KEYWORDS = {
    "element": TokenKind.ELEMENT,
    "const": TokenKind.CONST,
    "var": TokenKind.VAR,
    "func": TokenKind.FUNC,
    "extern": TokenKind.EXTERN,
    "end": TokenKind.END,
    "while": TokenKind.WHILE,
    "if": TokenKind.IF,
    "elif": TokenKind.ELIF,
    "else": TokenKind.ELSE,
    "for": TokenKind.FOR,
    "in": TokenKind.IN,
    "return": TokenKind.RETURN,
    "delete": TokenKind.DELETE,
    "new": TokenKind.NEW,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
    "print": TokenKind.PRINT,
    "schedule": TokenKind.SCHEDULE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def span(self) -> Span:
        """The source region this token covers."""
        return Span.from_token(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
