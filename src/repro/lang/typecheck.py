"""Type checker for the GraphIt algorithm-language subset.

Checks the paper's programs end to end: element references resolve, vectors
are indexed by vertices, priority-queue operators receive the right argument
shapes (both the 2- and 3-argument ``updatePriorityMin`` forms seen in
Table 1 and Figure 3), edgeset traversal chains are well-formed, and
user-defined functions match the shape ``applyUpdatePriority`` expects.

The checker produces a :class:`~repro.lang.symbols.SymbolTable` the midend
and backends consume.
"""

from __future__ import annotations

from ..errors import TypeCheckError
from . import ast_nodes as ast
from .symbols import Scope, SymbolTable
from .types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    VOID,
    EdgeSetType,
    ElementType,
    FunctionType,
    PriorityQueueType,
    Type,
    VectorType,
    VertexSetType,
)

__all__ = ["typecheck", "TypeChecker"]

# Methods on priority queues: name -> (min arity, max arity, result type).
_PQ_METHODS: dict[str, tuple[int, int, Type]] = {
    "finished": (0, 0, BOOL),
    "finishedVertex": (1, 1, BOOL),
    "dequeueReadySet": (0, 0, None),  # vertexset of the queue's element
    "getCurrentPriority": (0, 0, None),  # the queue's value type
    "get_current_priority": (0, 0, None),
    "updatePriorityMin": (2, 3, VOID),
    "updatePriorityMax": (2, 3, VOID),
    "updatePrioritySum": (2, 3, VOID),
}

_NUMERIC = (INT, FLOAT)


def typecheck(program: ast.Program) -> SymbolTable:
    """Check ``program`` and return its symbol table; raises TypeCheckError."""
    checker = TypeChecker()
    return checker.check(program)


class TypeChecker:
    def __init__(self) -> None:
        self.table = SymbolTable()
        self._current_function: str | None = None

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def check(self, program: ast.Program) -> SymbolTable:
        for element in program.elements:
            if element.name in self.table.elements:
                raise TypeCheckError(
                    f"line {element.line}: element {element.name!r} redeclared"
                )
            self.table.elements.add(element.name)

        for extern in program.externs:
            self.table.externs.add(extern.name)

        for const in program.constants:
            self._check_type_wellformed(const.declared_type, const.line)
            self.table.globals.declare(const.name, const.declared_type, const.line)

        # Declare function signatures before checking bodies, so functions
        # may call each other.
        for func in program.functions:
            parameters = tuple(param_type for _, param_type in func.parameters)
            result = func.result[1] if func.result else VOID
            if func.name in self.table.functions:
                raise TypeCheckError(
                    f"line {func.line}: function {func.name!r} redeclared"
                )
            self.table.functions[func.name] = FunctionType(parameters, result)

        for func in program.functions:
            self._check_function(func)

        for const in program.constants:
            if const.initializer is not None:
                scope = Scope(self.table.globals)
                self._declare_builtins(scope)
                initializer_type = self._expr(const.initializer, scope)
                self._check_assignable(
                    const.declared_type, initializer_type, const.line
                )
        return self.table

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _check_type_wellformed(self, declared: Type, line: int) -> None:
        for element in self._referenced_elements(declared):
            if element.name not in self.table.elements:
                raise TypeCheckError(
                    f"line {line}: unknown element type {element.name!r}"
                )

    def _referenced_elements(self, declared: Type):
        if isinstance(declared, ElementType):
            yield declared
        elif isinstance(declared, VertexSetType):
            yield declared.element
        elif isinstance(declared, EdgeSetType):
            yield declared.element
            yield declared.source
            yield declared.destination
        elif isinstance(declared, (VectorType, PriorityQueueType)):
            yield declared.element

    def _check_function(self, func: ast.FuncDecl) -> None:
        scope = Scope(self.table.globals)
        self._declare_builtins(scope)
        locals_map: dict[str, Type] = {}
        for name, param_type in func.parameters:
            self._check_type_wellformed(param_type, func.line)
            scope.declare(name, param_type, func.line)
            locals_map[name] = param_type
        if func.result is not None:
            result_name, result_type = func.result
            scope.declare(result_name, result_type, func.line)
            locals_map[result_name] = result_type
        self._current_function = func.name
        self._block(func.body, scope, locals_map)
        self._current_function = None
        self.table.function_locals[func.name] = locals_map

    def _declare_builtins(self, scope: Scope) -> None:
        # argv: the command-line string array; INT_MAX: the usual sentinel.
        scope.declare("argv", VectorType(ElementType("__arg"), STRING))
        scope.declare("INT_MAX", INT)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(
        self, body: list[ast.Stmt], scope: Scope, locals_map: dict[str, Type]
    ) -> None:
        for statement in body:
            self._statement(statement, scope, locals_map)

    def _statement(
        self, statement: ast.Stmt, scope: Scope, locals_map: dict[str, Type]
    ) -> None:
        if isinstance(statement, ast.VarDecl):
            self._check_type_wellformed(statement.declared_type, statement.line)
            if statement.initializer is not None:
                value_type = self._expr(statement.initializer, scope)
                self._check_assignable(
                    statement.declared_type, value_type, statement.line
                )
            scope.declare(statement.name, statement.declared_type, statement.line)
            locals_map[statement.name] = statement.declared_type
        elif isinstance(statement, ast.Assign):
            target_type = self._expr(statement.target, scope)
            value_type = self._expr(statement.value, scope)
            self._check_assignable(target_type, value_type, statement.line)
        elif isinstance(statement, ast.ExprStmt):
            self._expr(statement.expression, scope)
        elif isinstance(statement, ast.While):
            condition = self._expr(statement.condition, scope)
            self._check_assignable(BOOL, condition, statement.line)
            self._block(statement.body, Scope(scope), locals_map)
        elif isinstance(statement, ast.If):
            condition = self._expr(statement.condition, scope)
            self._check_assignable(BOOL, condition, statement.line)
            self._block(statement.then_body, Scope(scope), locals_map)
            self._block(statement.else_body, Scope(scope), locals_map)
        elif isinstance(statement, ast.For):
            self._check_assignable(INT, self._expr(statement.start, scope), statement.line)
            self._check_assignable(INT, self._expr(statement.stop, scope), statement.line)
            inner = Scope(scope)
            inner.declare(statement.variable, INT, statement.line)
            locals_map.setdefault(statement.variable, INT)
            self._block(statement.body, inner, locals_map)
        elif isinstance(statement, ast.Print):
            self._expr(statement.expression, scope)
        elif isinstance(statement, ast.Delete):
            if scope.lookup(statement.name) is None:
                raise TypeCheckError(
                    f"line {statement.line}: delete of undeclared name "
                    f"{statement.name!r}"
                )
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self._expr(statement.value, scope)
        else:  # pragma: no cover - parser produces no other statements
            raise TypeCheckError(f"unhandled statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expr(self, expression: ast.Expr, scope: Scope) -> Type:
        if isinstance(expression, ast.IntLiteral):
            return INT
        if isinstance(expression, ast.FloatLiteral):
            return FLOAT
        if isinstance(expression, ast.BoolLiteral):
            return BOOL
        if isinstance(expression, ast.StringLiteral):
            return STRING
        if isinstance(expression, ast.Name):
            named = scope.lookup(expression.identifier)
            if named is None:
                raise TypeCheckError(
                    f"line {expression.line}: undeclared name "
                    f"{expression.identifier!r}"
                )
            return named
        if isinstance(expression, ast.BinaryOp):
            return self._binary(expression, scope)
        if isinstance(expression, ast.UnaryOp):
            operand = self._expr(expression.operand, scope)
            if expression.operator == "not":
                self._check_assignable(BOOL, operand, expression.line)
                return BOOL
            if operand not in _NUMERIC:
                raise TypeCheckError(
                    f"line {expression.line}: unary '-' needs a numeric operand"
                )
            return operand
        if isinstance(expression, ast.Index):
            return self._index(expression, scope)
        if isinstance(expression, ast.Call):
            return self._call(expression, scope)
        if isinstance(expression, ast.MethodCall):
            return self._method_call(expression, scope)
        if isinstance(expression, ast.New):
            self._check_type_wellformed(expression.type, expression.line)
            for argument in expression.arguments:
                self._expr(argument, scope)
            return expression.type
        raise TypeCheckError(  # pragma: no cover
            f"unhandled expression {type(expression).__name__}"
        )

    def _binary(self, expression: ast.BinaryOp, scope: Scope) -> Type:
        left = self._expr(expression.left, scope)
        right = self._expr(expression.right, scope)
        operator = expression.operator
        if operator in ("and", "or"):
            self._check_assignable(BOOL, left, expression.line)
            self._check_assignable(BOOL, right, expression.line)
            return BOOL
        if operator in ("==", "!="):
            if left != right:
                raise TypeCheckError(
                    f"line {expression.line}: cannot compare {left} with {right}"
                )
            return BOOL
        if operator in ("<", ">", "<=", ">="):
            if left not in _NUMERIC or right not in _NUMERIC:
                raise TypeCheckError(
                    f"line {expression.line}: ordering comparison needs numeric "
                    f"operands, got {left} and {right}"
                )
            return BOOL
        # Arithmetic.
        if left not in _NUMERIC or right not in _NUMERIC:
            raise TypeCheckError(
                f"line {expression.line}: arithmetic needs numeric operands, "
                f"got {left} and {right}"
            )
        return FLOAT if FLOAT in (left, right) else INT

    def _index(self, expression: ast.Index, scope: Scope) -> Type:
        base = self._expr(expression.base, scope)
        index_type = self._expr(expression.index, scope)
        if isinstance(base, VectorType):
            # Vectors are indexed by a vertex (element) or an int id.
            if not (isinstance(index_type, ElementType) or index_type == INT):
                raise TypeCheckError(
                    f"line {expression.line}: vector index must be a vertex "
                    f"or int, got {index_type}"
                )
            return base.value
        raise TypeCheckError(
            f"line {expression.line}: type {base} is not indexable"
        )

    def _call(self, expression: ast.Call, scope: Scope) -> Type:
        name = expression.function
        argument_types = [self._expr(a, scope) for a in expression.arguments]
        if name == "load":
            if len(argument_types) != 1 or argument_types[0] != STRING:
                raise TypeCheckError(
                    f"line {expression.line}: load() takes one string path"
                )
            # The edgeset type comes from the declaration it initializes.
            return _AnyEdgeSet()
        if name in ("min", "max"):
            if len(argument_types) != 2 or any(
                t not in _NUMERIC for t in argument_types
            ):
                raise TypeCheckError(
                    f"line {expression.line}: {name}() takes two numeric "
                    f"arguments"
                )
            return FLOAT if FLOAT in argument_types else INT
        if name == "atoi":
            if len(argument_types) != 1 or argument_types[0] != STRING:
                raise TypeCheckError(
                    f"line {expression.line}: atoi() takes one string"
                )
            return INT
        if name in self.table.externs:
            return _AnyType()
        if name in self.table.functions:
            signature = self.table.functions[name]
            if len(argument_types) != len(signature.parameters):
                raise TypeCheckError(
                    f"line {expression.line}: {name}() takes "
                    f"{len(signature.parameters)} arguments, got "
                    f"{len(argument_types)}"
                )
            for expected, actual in zip(signature.parameters, argument_types):
                self._check_assignable(expected, actual, expression.line)
            return signature.result
        raise TypeCheckError(
            f"line {expression.line}: call to unknown function {name!r}"
        )

    def _method_call(self, expression: ast.MethodCall, scope: Scope) -> Type:
        receiver = self._expr(expression.receiver, scope)
        method = expression.method

        # Function-reference arguments (applyUpdatePriority) are resolved
        # against the function table, not the value scope — handle them
        # before evaluating arguments as expressions.
        if isinstance(receiver, EdgeSetType) and method in (
            "applyUpdatePriority",
            "apply",
        ):
            if len(expression.arguments) != 1 or not isinstance(
                expression.arguments[0], ast.Name
            ):
                raise TypeCheckError(
                    f"line {expression.line}: {method} takes a function name"
                )
            function_name = expression.arguments[0].identifier
            if (
                function_name not in self.table.functions
                and function_name not in self.table.externs
            ):
                raise TypeCheckError(
                    f"line {expression.line}: {method} references unknown "
                    f"function {function_name!r}"
                )
            if function_name in self.table.functions:
                signature = self.table.functions[function_name]
                if len(signature.parameters) not in (2, 3):
                    raise TypeCheckError(
                        f"line {expression.line}: the {method} UDF must "
                        f"take (src, dst) or (src, dst, weight)"
                    )
            return VOID

        argument_types = [self._expr(a, scope) for a in expression.arguments]

        if isinstance(receiver, PriorityQueueType):
            if method not in _PQ_METHODS:
                raise TypeCheckError(
                    f"line {expression.line}: priority queues have no method "
                    f"{method!r}"
                )
            low, high, result = _PQ_METHODS[method]
            if not low <= len(argument_types) <= high:
                raise TypeCheckError(
                    f"line {expression.line}: {method} takes between {low} and "
                    f"{high} arguments, got {len(argument_types)}"
                )
            if method == "dequeueReadySet":
                return VertexSetType(receiver.element)
            if method in ("getCurrentPriority", "get_current_priority"):
                return receiver.value
            if method.startswith("updatePriority"):
                first = argument_types[0]
                if not (isinstance(first, ElementType) or first == INT):
                    raise TypeCheckError(
                        f"line {expression.line}: {method}'s first argument "
                        f"must be a vertex"
                    )
                for other in argument_types[1:]:
                    if other not in _NUMERIC:
                        raise TypeCheckError(
                            f"line {expression.line}: {method}'s value "
                            f"arguments must be numeric"
                        )
            return result if result is not None else VOID

        if isinstance(receiver, EdgeSetType):
            if method == "getOutDegrees":
                if argument_types:
                    raise TypeCheckError(
                        f"line {expression.line}: getOutDegrees takes no arguments"
                    )
                return VectorType(receiver.source, INT)
            if method == "from":
                if len(argument_types) != 1 or not isinstance(
                    argument_types[0], VertexSetType
                ):
                    raise TypeCheckError(
                        f"line {expression.line}: from() takes a vertexset"
                    )
                return receiver
            raise TypeCheckError(
                f"line {expression.line}: edgesets have no method {method!r}"
            )

        if isinstance(receiver, VertexSetType):
            if method == "getVertexSetSize" or method == "size":
                return INT
            raise TypeCheckError(
                f"line {expression.line}: vertexsets have no method {method!r}"
            )

        raise TypeCheckError(
            f"line {expression.line}: type {receiver} has no methods"
        )

    # ------------------------------------------------------------------
    # Assignability
    # ------------------------------------------------------------------
    def _check_assignable(self, target: Type, value: Type, line: int) -> None:
        if isinstance(value, _AnyType) or isinstance(target, _AnyType):
            return
        if isinstance(value, _AnyEdgeSet) and isinstance(target, EdgeSetType):
            return
        if target == value:
            return
        if target == FLOAT and value == INT:
            return
        # A vector of T accepts a scalar T fill (e.g. `dist = INT_MAX`
        # broadcasting in declarations) — GraphIt's vector initialization.
        if isinstance(target, VectorType) and value == target.value:
            return
        if isinstance(target, ElementType) and value == INT:
            return  # vertex ids are integers at the boundary
        if isinstance(target, VertexSetType) and isinstance(value, VertexSetType):
            if target.element == value.element:
                return
        raise TypeCheckError(f"line {line}: cannot assign {value} to {target}")


class _AnyType(Type):
    """Result type of extern calls (unchecked boundary)."""


class _AnyEdgeSet(Type):
    """Result type of load(); assignable to any declared edgeset type."""
