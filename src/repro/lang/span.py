"""Source spans for diagnostics.

A :class:`Span` is a half-open region of DSL source text identified by
1-based line/column coordinates plus an optional file name.  Spans render in
the classic compiler ``file:line:col`` shape so terminal emulators make them
clickable, and they merge (for multi-token constructs) and compare cheaply.

Every token already knows its line/column; AST nodes carry the line/column
of their introducing token.  ``Span.from_node`` / ``Span.from_token`` are
the two conversion points the diagnostics engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from . import ast_nodes
    from .tokens import Token

__all__ = ["Span"]


@dataclass(frozen=True, order=True)
class Span:
    """A located region of source text (1-based, end-exclusive columns)."""

    line: int = 0
    column: int = 0
    end_line: int = 0
    end_column: int = 0
    file: str | None = None

    def __post_init__(self) -> None:
        # Normalize a point span: an unset end collapses onto the start.
        if self.end_line < self.line or (
            self.end_line == self.line and self.end_column < self.column
        ):
            object.__setattr__(self, "end_line", self.line)
            object.__setattr__(self, "end_column", self.column)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_token(cls, token: "Token", file: str | None = None) -> "Span":
        """The span covering one lexical token."""
        return cls(
            line=token.line,
            column=token.column,
            end_line=token.line,
            end_column=token.column + max(len(token.text), 1),
            file=file,
        )

    @classmethod
    def from_node(cls, node: "ast_nodes.Node", file: str | None = None) -> "Span":
        """The (point) span at a node's recorded position."""
        line = getattr(node, "line", 0) or 0
        column = getattr(node, "column", 0) or 0
        return cls(line=line, column=column, file=file)

    def with_file(self, file: str | None) -> "Span":
        """A copy of this span attributed to ``file``."""
        return replace(self, file=file)

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        first, last = sorted((self, other))
        return Span(
            line=first.line,
            column=first.column,
            end_line=max(first.end_line, last.end_line),
            end_column=(
                max(first.end_column, last.end_column)
                if first.end_line == last.end_line
                else last.end_column
            ),
            file=self.file or other.file,
        )

    # ------------------------------------------------------------------
    # Predicates and rendering
    # ------------------------------------------------------------------
    @property
    def is_known(self) -> bool:
        """Whether the span points at a real source location."""
        return self.line > 0

    def __str__(self) -> str:
        prefix = f"{self.file}:" if self.file else ""
        if not self.is_known:
            return f"{prefix}?:?" if prefix else "<unknown location>"
        if self.column > 0:
            return f"{prefix}{self.line}:{self.column}"
        return f"{prefix}{self.line}"

    def caret_excerpt(self, source: str) -> str:
        """A two-line ``source-line`` + caret excerpt (GCC style)."""
        if not self.is_known:
            return ""
        lines = source.splitlines()
        if not 1 <= self.line <= len(lines):
            return ""
        text = lines[self.line - 1]
        caret_col = max(self.column, 1)
        width = 1
        if self.end_line == self.line and self.end_column > self.column:
            width = self.end_column - self.column
        caret = " " * (caret_col - 1) + "^" + "~" * (width - 1)
        return f"{text}\n{caret}"
