"""AST node definitions and visitor infrastructure.

Nodes are plain dataclasses carrying their source line for diagnostics.
:class:`NodeVisitor` dispatches on node class name (``visit_While`` etc.),
with a ``generic_visit`` that walks children — the pattern the midend
analyses and transforms are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from .span import Span
from .types import Type

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    # Expressions
    "IntLiteral",
    "FloatLiteral",
    "BoolLiteral",
    "StringLiteral",
    "Name",
    "BinaryOp",
    "UnaryOp",
    "Call",
    "MethodCall",
    "Index",
    "New",
    # Statements
    "VarDecl",
    "Assign",
    "ExprStmt",
    "While",
    "If",
    "For",
    "Print",
    "Delete",
    "Return",
    # Declarations
    "ElementDecl",
    "ConstDecl",
    "FuncDecl",
    "ExternFuncDecl",
    "ScheduleStmt",
    "Program",
    # Visitors
    "NodeVisitor",
    "NodeTransformer",
    "walk",
]


@dataclass
class Node:
    """Base AST node; every node records its source line and column."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)

    @property
    def span(self) -> Span:
        """The (point) source span where this node begins."""
        return Span.from_node(self)


@dataclass
class Expr(Node):
    pass


@dataclass
class Stmt(Node):
    label: str | None = field(default=None, kw_only=True)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class Name(Expr):
    identifier: str


@dataclass
class BinaryOp(Expr):
    operator: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    operator: str
    operand: Expr


@dataclass
class Call(Expr):
    function: str
    arguments: list[Expr]


@dataclass
class MethodCall(Expr):
    receiver: Expr
    method: str
    arguments: list[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class New(Expr):
    type: Type
    arguments: list[Expr]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class VarDecl(Stmt):
    name: str
    declared_type: Type
    initializer: Expr | None = None


@dataclass
class Assign(Stmt):
    target: Expr  # Name or Index
    value: Expr


@dataclass
class ExprStmt(Stmt):
    expression: Expr


@dataclass
class While(Stmt):
    condition: Expr
    body: list[Stmt]


@dataclass
class If(Stmt):
    condition: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class For(Stmt):
    variable: str
    start: Expr
    stop: Expr
    body: list[Stmt]


@dataclass
class Print(Stmt):
    expression: Expr


@dataclass
class Delete(Stmt):
    name: str


@dataclass
class Return(Stmt):
    value: Expr | None = None


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class ElementDecl(Node):
    name: str


@dataclass
class ConstDecl(Node):
    name: str
    declared_type: Type
    initializer: Expr | None = None


@dataclass
class FuncDecl(Node):
    name: str
    parameters: list[tuple[str, Type]]
    result: tuple[str, Type] | None
    body: list[Stmt]


@dataclass
class ExternFuncDecl(Node):
    name: str


@dataclass
class ScheduleStmt(Node):
    """One ``program->command("label", arg)`` link of the schedule chain."""

    command: str
    arguments: list[str]


@dataclass
class Program(Node):
    elements: list[ElementDecl]
    constants: list[ConstDecl]
    functions: list[FuncDecl]
    externs: list[ExternFuncDecl]
    schedule: list[ScheduleStmt]
    source_file: str | None = field(default=None, kw_only=True)

    def function(self, name: str) -> FuncDecl | None:
        for func in self.functions:
            if func.name == name:
                return func
        return None

    def constant(self, name: str) -> ConstDecl | None:
        for const in self.constants:
            if const.name == name:
                return const
        return None


# ----------------------------------------------------------------------
# Visitor infrastructure
# ----------------------------------------------------------------------
def _child_nodes(node: Node):
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node):
    """Yield ``node`` and all descendants in pre-order."""
    yield node
    for child in _child_nodes(node):
        yield from walk(child)


class NodeVisitor:
    """Dispatch by node class name; ``generic_visit`` recurses into children."""

    def visit(self, node: Node) -> Any:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node) -> Any:
        for child in _child_nodes(node):
            self.visit(child)
        return None


class NodeTransformer(NodeVisitor):
    """Visitor whose visit methods return replacement nodes.

    ``generic_visit`` rebuilds child lists; returning a different node from a
    ``visit_X`` method replaces the original in its parent.
    """

    def generic_visit(self, node: Node) -> Node:
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Node):
                setattr(node, f.name, self.visit(value))
            elif isinstance(value, list):
                new_items = []
                for item in value:
                    if isinstance(item, Node):
                        replacement = self.visit(item)
                        if replacement is not None:
                            new_items.append(replacement)
                    else:
                        new_items.append(item)
                setattr(node, f.name, new_items)
        return node
