"""Symbol tables for the type checker and the backends."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TypeCheckError
from .types import FunctionType, Type

__all__ = ["Scope", "SymbolTable"]


class Scope:
    """A single lexical scope mapping names to types."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self._symbols: dict[str, Type] = {}

    def declare(self, name: str, symbol_type: Type, line: int = 0) -> None:
        if name in self._symbols:
            raise TypeCheckError(
                f"line {line}: redeclaration of {name!r} in the same scope"
            )
        self._symbols[name] = symbol_type

    def lookup(self, name: str) -> Type | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope._symbols:
                return scope._symbols[name]
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Type | None:
        return self._symbols.get(name)


@dataclass
class SymbolTable:
    """Program-wide symbol information produced by the type checker.

    ``globals`` holds constants (and element types); ``functions`` holds the
    signature of each function; ``function_locals`` maps a function name to
    the types of its parameters and local variables (used by the backends to
    emit declarations).
    """

    globals: Scope = field(default_factory=Scope)
    functions: dict[str, FunctionType] = field(default_factory=dict)
    function_locals: dict[str, dict[str, Type]] = field(default_factory=dict)
    elements: set[str] = field(default_factory=set)
    externs: set[str] = field(default_factory=set)
