"""Type system for the GraphIt algorithm-language subset.

Types are immutable value objects compared structurally.  The interesting
types are the graph-domain ones: element types (declared with ``element``),
vertex/edge sets over an element, per-vertex vectors, and priority queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Type",
    "ScalarType",
    "INT",
    "FLOAT",
    "BOOL",
    "STRING",
    "VOID",
    "ElementType",
    "VertexSetType",
    "EdgeSetType",
    "VectorType",
    "PriorityQueueType",
    "FunctionType",
]


@dataclass(frozen=True)
class Type:
    """Base class for all DSL types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return self.__class__.__name__


@dataclass(frozen=True)
class ScalarType(Type):
    name: str

    def __str__(self) -> str:
        return self.name


INT = ScalarType("int")
FLOAT = ScalarType("float")
BOOL = ScalarType("bool")
STRING = ScalarType("string")
VOID = ScalarType("void")


@dataclass(frozen=True)
class ElementType(Type):
    """A user-declared element type (``element Vertex end``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VertexSetType(Type):
    element: ElementType

    def __str__(self) -> str:
        return f"vertexset{{{self.element.name}}}"


@dataclass(frozen=True)
class EdgeSetType(Type):
    element: ElementType
    source: ElementType
    destination: ElementType
    weight: ScalarType | None = None

    @property
    def is_weighted(self) -> bool:
        return self.weight is not None

    def __str__(self) -> str:
        inner = f"{self.source.name}, {self.destination.name}"
        if self.weight is not None:
            inner += f", {self.weight.name}"
        return f"edgeset{{{self.element.name}}}({inner})"


@dataclass(frozen=True)
class VectorType(Type):
    element: ElementType
    value: Type

    def __str__(self) -> str:
        return f"vector{{{self.element.name}}}({self.value})"


@dataclass(frozen=True)
class PriorityQueueType(Type):
    element: ElementType
    value: Type

    def __str__(self) -> str:
        return f"priority_queue{{{self.element.name}}}({self.value})"


@dataclass(frozen=True)
class FunctionType(Type):
    parameters: tuple[Type, ...] = field(default_factory=tuple)
    result: Type = VOID

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        return f"func({params}) -> {self.result}"
