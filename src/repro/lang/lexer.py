"""Hand-written lexer for the GraphIt algorithm-language subset.

Comments run from ``%`` or ``//`` to end of line (GraphIt uses ``%``; we
accept both).  Labels appear as ``#name#`` and are lexed as HASH IDENT HASH.
"""

from __future__ import annotations

from ..errors import ParseError
from .tokens import KEYWORDS, Token, TokenKind

__all__ = ["tokenize"]

_TWO_CHAR = {
    "->": TokenKind.ARROW,
    "==": TokenKind.EQ,
    "!=": TokenKind.NEQ,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMICOLON,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "#": TokenKind.HASH,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


def tokenize(source: str, filename: str | None = None) -> list[Token]:
    """Convert DSL source text to a token list ending with an EOF token.

    ``filename`` only affects error reporting: lexical errors carry a
    :class:`~repro.lang.span.Span` attributed to it.
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> ParseError:
        from .span import Span

        return ParseError(
            message, line, column, span=Span(line=line, column=column, file=filename)
        )

    while index < length:
        char = source[index]

        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue

        # Comments: '//' or '%' to end of line.  '%' only opens a comment
        # when it cannot be the modulo operator (i.e. not directly following
        # a value); GraphIt sources in the paper use '%' only at line starts,
        # so we treat '%' after whitespace-only prefix as a comment.
        if char == "/" and index + 1 < length and source[index + 1] == "/":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == "%" and (not tokens or tokens[-1].line != line):
            while index < length and source[index] != "\n":
                index += 1
            continue

        if char.isdigit():
            start = index
            start_column = column
            while index < length and source[index].isdigit():
                index += 1
                column += 1
            is_float = False
            if (
                index < length
                and source[index] == "."
                and index + 1 < length
                and source[index + 1].isdigit()
            ):
                is_float = True
                index += 1
                column += 1
                while index < length and source[index].isdigit():
                    index += 1
                    column += 1
            text = source[start:index]
            kind = TokenKind.FLOAT if is_float else TokenKind.INT
            tokens.append(Token(kind, text, line, start_column))
            continue

        if char.isalpha() or char == "_":
            start = index
            start_column = column
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
                column += 1
            text = source[start:index]
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            tokens.append(Token(kind, text, line, start_column))
            continue

        if char == '"':
            start_column = column
            index += 1
            column += 1
            start = index
            while index < length and source[index] != '"':
                if source[index] == "\n":
                    raise error("unterminated string literal")
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            text = source[start:index]
            index += 1
            column += 1
            tokens.append(Token(TokenKind.STRING, text, line, start_column))
            continue

        two = source[index : index + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, line, column))
            index += 2
            column += 2
            continue

        if char in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[char], char, line, column))
            index += 1
            column += 1
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
