"""The six benchmark algorithms written in the DSL.

These are the programs Table 5 counts lines for, written in the style of the
paper's Figure 3.  ``SSSP``/``WBFS``/``PPSP``/``ASTAR``/``KCORE`` compile end
to end; ``SETCOVER`` follows the paper's approach of delegating its per-round
conflict resolution to extern functions ("For A* search and SetCover,
GraphIt needs to use long extern functions", Section 6.2).

Each program is exposed both as a plain source string and through
:func:`program_source` / :data:`ALL_PROGRAMS`.
"""

from __future__ import annotations

from ..errors import GraphItError

__all__ = [
    "SSSP",
    "WIDEST",
    "BELLMAN_FORD",
    "WBFS",
    "PPSP",
    "ASTAR",
    "KCORE",
    "SETCOVER",
    "ALL_PROGRAMS",
    "program_source",
]

SSSP = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const dist : vector{Vertex}(int) = INT_MAX;
const pq : priority_queue{Vertex}(int);

func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var new_dist : int = dist[src] + weight;
    pq.updatePriorityMin(dst, dist[dst], new_dist);
end

func main()
    var start_vertex : int = atoi(argv[2]);
    dist[start_vertex] = 0;
    pq = new priority_queue{Vertex}(int)(true, "lower_first", dist, start_vertex);
    while (pq.finished() == false)
        var bucket : vertexset{Vertex} = pq.dequeueReadySet();
        #s1# edges.from(bucket).applyUpdatePriority(updateEdge);
        delete bucket;
    end
end
"""

# wBFS is Δ-stepping with Δ fixed to 1; the algorithm text is identical and
# only the schedule differs (Section 6.1).
WBFS = SSSP

PPSP = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const dist : vector{Vertex}(int) = INT_MAX;
const pq : priority_queue{Vertex}(int);

func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var new_dist : int = dist[src] + weight;
    pq.updatePriorityMin(dst, dist[dst], new_dist);
end

func main()
    var start_vertex : int = atoi(argv[2]);
    var dst_vertex : int = atoi(argv[3]);
    dist[start_vertex] = 0;
    pq = new priority_queue{Vertex}(int)(true, "lower_first", dist, start_vertex);
    var done : bool = false;
    while (pq.finished() == false) and (done == false)
        var bucket : vertexset{Vertex} = pq.dequeueReadySet();
        if (dist[dst_vertex] != INT_MAX) and (pq.getCurrentPriority() >= dist[dst_vertex])
            done = true;
        else
            #s1# edges.from(bucket).applyUpdatePriority(updateEdge);
        end
        delete bucket;
    end
end
"""

ASTAR = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const dist : vector{Vertex}(int) = INT_MAX;
const est : vector{Vertex}(int) = INT_MAX;
const h : vector{Vertex}(int) = 0;
const pq : priority_queue{Vertex}(int);
extern func computeHeuristic;

func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var new_dist : int = dist[src] + weight;
    if new_dist < dist[dst]
        dist[dst] = new_dist;
        pq.updatePriorityMin(dst, est[dst], new_dist + h[dst]);
    end
end

func main()
    var start_vertex : int = atoi(argv[2]);
    var dst_vertex : int = atoi(argv[3]);
    computeHeuristic(dst_vertex);
    dist[start_vertex] = 0;
    est[start_vertex] = h[start_vertex];
    pq = new priority_queue{Vertex}(int)(true, "lower_first", est, start_vertex);
    var done : bool = false;
    while (pq.finished() == false) and (done == false)
        var bucket : vertexset{Vertex} = pq.dequeueReadySet();
        if (dist[dst_vertex] != INT_MAX) and (pq.getCurrentPriority() >= dist[dst_vertex])
            done = true;
        else
            #s1# edges.from(bucket).applyUpdatePriority(updateEdge);
        end
        delete bucket;
    end
end
"""

KCORE = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load(argv[1]);
const D : vector{Vertex}(int) = edges.getOutDegrees();
const pq : priority_queue{Vertex}(int);

func apply_f(src : Vertex, dst : Vertex)
    var k : int = pq.getCurrentPriority();
    pq.updatePrioritySum(dst, -1, k);
end

func main()
    pq = new priority_queue{Vertex}(int)(false, "lower_first", D, -1);
    while (pq.finished() == false)
        var bucket : vertexset{Vertex} = pq.dequeueReadySet();
        #s1# edges.from(bucket).applyUpdatePriority(apply_f);
        delete bucket;
    end
end
"""

SETCOVER = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex) = load(argv[1]);
const ratio : vector{Vertex}(int) = 0;
const pq : priority_queue{Vertex}(int);
extern func initRatios;
extern func processBucket;

func main()
    initRatios();
    pq = new priority_queue{Vertex}(int)(false, "higher_first", ratio, -1);
    while (pq.finished() == false)
        var bucket : vertexset{Vertex} = pq.dequeueReadySet();
        #s1# processBucket(bucket);
        delete bucket;
    end
end
"""

# Extension beyond the paper's six benchmarks: widest path exercises
# updatePriorityMax and the higher_first processing direction of Table 1.
WIDEST = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const width : vector{Vertex}(int) = 0;
const pq : priority_queue{Vertex}(int);

func updateEdge(src : Vertex, dst : Vertex, weight : int)
    var bottleneck : int = min(width[src], weight);
    pq.updatePriorityMax(dst, width[dst], bottleneck);
end

func main()
    var start_vertex : int = atoi(argv[2]);
    width[start_vertex] = 1099511627776;
    pq = new priority_queue{Vertex}(int)(true, "higher_first", width, start_vertex);
    while (pq.finished() == false)
        var bucket : vertexset{Vertex} = pq.dequeueReadySet();
        #s1# edges.from(bucket).applyUpdatePriority(updateEdge);
        delete bucket;
    end
end
"""

# Unordered baseline in plain (original) GraphIt: frontier-free
# Bellman-Ford iterating whole-edgeset applies to a fixpoint — the program
# behind the "GraphIt (unordered)" rows of Table 4.
BELLMAN_FORD = """\
element Vertex end
element Edge end
const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);
const dist : vector{Vertex}(int) = INT_MAX;
const changed : int = 0;

func relax(src : Vertex, dst : Vertex, weight : int)
    if dist[src] != INT_MAX
        var new_dist : int = dist[src] + weight;
        if new_dist < dist[dst]
            dist[dst] = new_dist;
            changed = 1;
        end
    end
end

func main()
    var start_vertex : int = atoi(argv[2]);
    dist[start_vertex] = 0;
    changed = 1;
    while changed == 1
        changed = 0;
        #s1# edges.apply(relax);
    end
end
"""

ALL_PROGRAMS: dict[str, str] = {
    "sssp": SSSP,
    "wbfs": WBFS,
    "ppsp": PPSP,
    "astar": ASTAR,
    "kcore": KCORE,
    "setcover": SETCOVER,
    "widest": WIDEST,
    "bellman_ford": BELLMAN_FORD,
}


def program_source(name: str) -> str:
    """The DSL source for a benchmark algorithm (or the widest extension)."""
    if name not in ALL_PROGRAMS:
        raise GraphItError(
            f"unknown DSL program {name!r}; expected one of {tuple(ALL_PROGRAMS)}"
        )
    return ALL_PROGRAMS[name]
