"""Per-vertex property vectors.

The DSL's ``vector{Vertex}(int)`` maps to :class:`VertexVector`: a thin,
typed wrapper over a numpy array with a named fill value.  Generated code and
the runtime operate on the raw ``.values`` array for speed; the wrapper exists
so the public API (examples, tests) has an explicit, bounds-checked surface.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError

__all__ = ["VertexVector", "INT_MAX"]

# Matches the paper's use of INT_MAX as the "infinity" distance sentinel.
INT_MAX = np.iinfo(np.int64).max


class VertexVector:
    """A dense per-vertex vector of int64 values."""

    def __init__(self, num_vertices: int, fill: int = 0):
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._values = np.full(num_vertices, fill, dtype=np.int64)
        self._fill = int(fill)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "VertexVector":
        vector = cls(0)
        vector._values = np.asarray(values, dtype=np.int64).copy()
        vector._fill = 0
        return vector

    @property
    def values(self) -> np.ndarray:
        """The underlying numpy array (mutable)."""
        return self._values

    @property
    def fill_value(self) -> int:
        """The value this vector was initialized with."""
        return self._fill

    def __len__(self) -> int:
        return self._values.size

    def __getitem__(self, vertex: int) -> int:
        self._check(vertex)
        return int(self._values[vertex])

    def __setitem__(self, vertex: int, value: int) -> None:
        self._check(vertex)
        self._values[vertex] = value

    def copy(self) -> "VertexVector":
        return VertexVector.from_array(self._values)

    def _check(self, vertex: int) -> None:
        if not 0 <= vertex < self._values.size:
            raise GraphError(f"vertex {vertex} out of range [0, {self._values.size})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VertexVector(size={self._values.size})"
