"""Graph serialization: edge-list text, DIMACS ``.gr``, and numpy binary.

The DIMACS shortest-path format (``.gr`` / ``.co``) is what the paper's road
graphs (RoadUSA from the 9th DIMACS implementation challenge) ship in, so we
support both the graph file and the coordinate companion file.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import GraphError
from .builder import GraphBuilder
from .csr import CSRGraph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_dimacs",
    "save_dimacs",
    "load_npz",
    "save_npz",
]


def load_edge_list(path: str | os.PathLike, num_vertices: int | None = None) -> CSRGraph:
    """Load a whitespace-separated edge list: ``src dst [weight]`` per line.

    Lines starting with ``#`` or ``%`` are comments.  When ``num_vertices``
    is omitted it is inferred as ``max vertex id + 1``.
    """
    sources: list[int] = []
    dests: list[int] = []
    weights: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(f"{path}:{lineno}: expected 'src dst [weight]'")
            sources.append(int(parts[0]))
            dests.append(int(parts[1]))
            weights.append(int(parts[2]) if len(parts) == 3 else 1)
    if num_vertices is None:
        num_vertices = max(max(sources, default=-1), max(dests, default=-1)) + 1
    builder = GraphBuilder(num_vertices)
    builder.add_edges(
        np.array(sources, dtype=np.int64),
        np.array(dests, dtype=np.int64),
        np.array(weights, dtype=np.int64),
    )
    return builder.build()


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write ``src dst weight`` lines for every edge."""
    sources, dests, weights = graph.edge_list()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        for s, d, w in zip(sources.tolist(), dests.tolist(), weights.tolist()):
            handle.write(f"{s} {d} {w}\n")


def load_dimacs(
    path: str | os.PathLike, coordinates_path: str | os.PathLike | None = None
) -> CSRGraph:
    """Load a DIMACS shortest-path ``.gr`` file (1-based vertex ids).

    ``coordinates_path`` optionally names the companion ``.co`` file with
    ``v id x y`` lines, attached as vertex coordinates.
    """
    num_vertices = None
    sources: list[int] = []
    dests: list[int] = []
    weights: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphError(f"{path}:{lineno}: expected 'p sp <n> <m>'")
                num_vertices = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphError(f"{path}:{lineno}: expected 'a <src> <dst> <w>'")
                sources.append(int(parts[1]) - 1)
                dests.append(int(parts[2]) - 1)
                weights.append(int(parts[3]))
            else:
                raise GraphError(f"{path}:{lineno}: unknown record {parts[0]!r}")
    if num_vertices is None:
        raise GraphError(f"{path}: missing 'p sp' header line")

    coordinates = None
    if coordinates_path is not None:
        coordinates = _load_dimacs_coordinates(coordinates_path, num_vertices)

    builder = GraphBuilder(num_vertices)
    builder.add_edges(
        np.array(sources, dtype=np.int64),
        np.array(dests, dtype=np.int64),
        np.array(weights, dtype=np.int64),
    )
    return builder.build(coordinates=coordinates)


def _load_dimacs_coordinates(path: str | os.PathLike, num_vertices: int) -> np.ndarray:
    coordinates = np.zeros((num_vertices, 2), dtype=np.float64)
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("c", "p")):
                continue
            parts = line.split()
            if parts[0] != "v" or len(parts) != 4:
                raise GraphError(f"{path}:{lineno}: expected 'v <id> <x> <y>'")
            vertex = int(parts[1]) - 1
            if not 0 <= vertex < num_vertices:
                raise GraphError(f"{path}:{lineno}: vertex id out of range")
            coordinates[vertex] = (float(parts[2]), float(parts[3]))
    return coordinates


def save_dimacs(
    graph: CSRGraph,
    path: str | os.PathLike,
    coordinates_path: str | os.PathLike | None = None,
) -> None:
    """Write the graph in DIMACS ``.gr`` format (and optionally the ``.co``)."""
    sources, dests, weights = graph.edge_list()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("c generated by repro.graph.io\n")
        handle.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for s, d, w in zip(sources.tolist(), dests.tolist(), weights.tolist()):
            handle.write(f"a {s + 1} {d + 1} {w}\n")
    if coordinates_path is not None:
        if not graph.has_coordinates:
            raise GraphError("graph has no coordinates to save")
        with open(coordinates_path, "w", encoding="utf-8") as handle:
            handle.write(f"p aux sp co {graph.num_vertices}\n")
            for v, (x, y) in enumerate(graph.coordinates):
                handle.write(f"v {v + 1} {x:.6f} {y:.6f}\n")


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save the graph in compressed numpy binary form."""
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "weights": graph.weights,
    }
    if graph.has_coordinates:
        arrays["coordinates"] = graph.coordinates
    np.savez_compressed(path, **arrays)


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        coordinates = data["coordinates"] if "coordinates" in data else None
        return CSRGraph(
            data["indptr"], data["indices"], data["weights"], coordinates=coordinates
        )
