"""Vertex sets (frontiers) in sparse and dense layouts.

GraphIt's direction optimization switches frontier layout between a sparse
array of vertex ids (efficient for small frontiers, used by SparsePush) and a
dense boolean map (efficient for large frontiers, used by DensePull).  This
module provides one class that can hold either layout and convert on demand,
mirroring Ligra/GraphIt's ``vertexsubset``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..errors import GraphError

__all__ = ["VertexSet"]


class VertexSet:
    """A subset of the vertices of a graph with ``num_vertices`` vertices.

    The set keeps whichever of the two layouts it was created with and
    materializes the other lazily; both stay consistent afterwards because
    instances are immutable.
    """

    def __init__(
        self,
        num_vertices: int,
        vertices: Iterable[int] | np.ndarray | None = None,
        bool_map: np.ndarray | None = None,
    ):
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        if (vertices is None) == (bool_map is None):
            raise GraphError("provide exactly one of vertices or bool_map")
        self._num_vertices = int(num_vertices)
        self._sparse: np.ndarray | None = None
        self._dense: np.ndarray | None = None
        if vertices is not None:
            arr = np.unique(np.asarray(list(vertices) if not isinstance(vertices, np.ndarray) else vertices, dtype=np.int64))
            if arr.size and (arr[0] < 0 or arr[-1] >= num_vertices):
                raise GraphError("vertex id out of range")
            self._sparse = arr
        else:
            bool_map = np.asarray(bool_map, dtype=bool)
            if bool_map.shape != (num_vertices,):
                raise GraphError(
                    f"bool_map must have shape ({num_vertices},), got {bool_map.shape}"
                )
            self._dense = bool_map.copy()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_vertices: int) -> "VertexSet":
        return cls(num_vertices, vertices=np.empty(0, dtype=np.int64))

    @classmethod
    def full(cls, num_vertices: int) -> "VertexSet":
        return cls(num_vertices, vertices=np.arange(num_vertices, dtype=np.int64))

    @classmethod
    def single(cls, num_vertices: int, vertex: int) -> "VertexSet":
        return cls(num_vertices, vertices=[vertex])

    # ------------------------------------------------------------------
    # Layout access
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Size of the universe this set draws from."""
        return self._num_vertices

    def to_sparse(self) -> np.ndarray:
        """The members as a sorted int64 array (sparse layout)."""
        if self._sparse is None:
            self._sparse = np.flatnonzero(self._dense).astype(np.int64)
        return self._sparse

    def to_dense(self) -> np.ndarray:
        """The members as a boolean map (dense layout)."""
        if self._dense is None:
            dense = np.zeros(self._num_vertices, dtype=bool)
            dense[self._sparse] = True
            self._dense = dense
        return self._dense

    @property
    def is_sparse(self) -> bool:
        """True when the sparse layout is already materialized."""
        return self._sparse is not None

    # ------------------------------------------------------------------
    # Set behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._sparse is not None:
            return int(self._sparse.size)
        return int(np.count_nonzero(self._dense))

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_sparse().tolist())

    def __contains__(self, vertex: int) -> bool:
        if not 0 <= vertex < self._num_vertices:
            return False
        if self._dense is not None:
            return bool(self._dense[vertex])
        return bool(np.isin(vertex, self._sparse))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexSet):
            return NotImplemented
        return self._num_vertices == other._num_vertices and np.array_equal(
            self.to_sparse(), other.to_sparse()
        )

    def __hash__(self) -> int:  # sets are immutable value objects
        return hash((self._num_vertices, self.to_sparse().tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        members = self.to_sparse()
        preview = ", ".join(map(str, members[:8].tolist()))
        suffix = ", ..." if members.size > 8 else ""
        return f"VertexSet({{{preview}{suffix}}}, size={members.size})"

    # ------------------------------------------------------------------
    # Set algebra (each returns a new set)
    # ------------------------------------------------------------------
    def union(self, other: "VertexSet") -> "VertexSet":
        self._check_compatible(other)
        return VertexSet(
            self._num_vertices,
            vertices=np.union1d(self.to_sparse(), other.to_sparse()),
        )

    def intersection(self, other: "VertexSet") -> "VertexSet":
        self._check_compatible(other)
        return VertexSet(
            self._num_vertices,
            vertices=np.intersect1d(self.to_sparse(), other.to_sparse()),
        )

    def difference(self, other: "VertexSet") -> "VertexSet":
        self._check_compatible(other)
        return VertexSet(
            self._num_vertices,
            vertices=np.setdiff1d(self.to_sparse(), other.to_sparse()),
        )

    def _check_compatible(self, other: "VertexSet") -> None:
        if self._num_vertices != other._num_vertices:
            raise GraphError("vertex sets draw from different universes")
