"""Graph mutations: typed edge deltas and batch application.

A :class:`Mutation` names one edge-level change — insert, delete, or
weight update — in a form the incremental engine can classify (improving
vs. worsening relative to a program's priority direction).  Batches are
plain sequences of mutations; :func:`apply_mutations` pushes them through
the CSR overlay in order, optionally mirroring each change across both
directions for symmetric (undirected) workloads like k-core.

``parse_mutation_script`` reads the line format used by
``repro run --mutations`` / ``repro bench-incremental``::

    # comment
    add 3 7 5        # insert edge 3 -> 7 with weight 5
    add 3 7          # weight defaults to 1
    remove 3 7       # delete every copy of 3 -> 7
    update 3 7 9     # set the weight of every copy of 3 -> 7 to 9
    flush            # apply the mutations so far as one batch

``flush`` lines split the script into batches; the incremental engine
resumes once per batch, matching how an evolving-graph service would feed
grouped updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import GraphError
from .csr import CSRGraph

__all__ = [
    "Mutation",
    "MUTATION_KINDS",
    "apply_mutations",
    "parse_mutation_script",
]

MUTATION_KINDS = ("add", "remove", "update")


@dataclass(frozen=True)
class Mutation:
    """One edge-level change.

    ``weight`` is the inserted edge's weight for ``add``, the new weight
    for ``update``, and ignored for ``remove``.
    """

    kind: str
    src: int
    dst: int
    weight: int = 1

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise GraphError(
                f"unknown mutation kind {self.kind!r}; expected one of "
                f"{MUTATION_KINDS}"
            )

    @staticmethod
    def add(src: int, dst: int, weight: int = 1) -> "Mutation":
        return Mutation("add", src, dst, weight)

    @staticmethod
    def remove(src: int, dst: int) -> "Mutation":
        return Mutation("remove", src, dst)

    @staticmethod
    def update(src: int, dst: int, weight: int) -> "Mutation":
        return Mutation("update", src, dst, weight)


def apply_mutations(
    graph: CSRGraph,
    mutations: Iterable[Mutation],
    *,
    symmetric: bool = False,
) -> int:
    """Apply ``mutations`` to ``graph`` in order; returns how many applied.

    With ``symmetric=True`` each change is mirrored onto the reverse edge
    (self-loops apply once), preserving the undirected invariant the
    k-core algorithms require.
    """
    applied = 0
    for mutation in mutations:
        _apply_one(graph, mutation)
        if symmetric and mutation.src != mutation.dst:
            _apply_one(
                graph,
                Mutation(mutation.kind, mutation.dst, mutation.src, mutation.weight),
            )
        applied += 1
    return applied


def _apply_one(graph: CSRGraph, mutation: Mutation) -> None:
    if mutation.kind == "add":
        graph.add_edge(mutation.src, mutation.dst, mutation.weight)
    elif mutation.kind == "remove":
        graph.remove_edge(mutation.src, mutation.dst)
    else:
        graph.update_weight(mutation.src, mutation.dst, mutation.weight)


def parse_mutation_script(text: str) -> list[list[Mutation]]:
    """Parse a mutation script into batches (split on ``flush`` lines).

    Always returns at least one batch when any mutation is present; a
    trailing empty batch (script ending in ``flush``) is dropped.
    """
    batches: list[list[Mutation]] = [[]]
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        op = parts[0].lower()
        if op == "flush":
            if len(parts) != 1:
                raise GraphError(f"mutation script line {lineno}: flush takes no args")
            batches.append([])
            continue
        if op not in MUTATION_KINDS:
            raise GraphError(
                f"mutation script line {lineno}: unknown op {op!r} "
                f"(expected add/remove/update/flush)"
            )
        try:
            args = [int(p) for p in parts[1:]]
        except ValueError as exc:
            raise GraphError(
                f"mutation script line {lineno}: arguments must be integers"
            ) from exc
        if op == "add":
            if len(args) == 2:
                batches[-1].append(Mutation.add(args[0], args[1]))
            elif len(args) == 3:
                batches[-1].append(Mutation.add(args[0], args[1], args[2]))
            else:
                raise GraphError(
                    f"mutation script line {lineno}: add takes 'src dst [weight]'"
                )
        elif op == "remove":
            if len(args) != 2:
                raise GraphError(
                    f"mutation script line {lineno}: remove takes 'src dst'"
                )
            batches[-1].append(Mutation.remove(args[0], args[1]))
        else:
            if len(args) != 3:
                raise GraphError(
                    f"mutation script line {lineno}: update takes 'src dst weight'"
                )
            batches[-1].append(Mutation.update(args[0], args[1], args[2]))
    while batches and not batches[-1]:
        batches.pop()
    return batches


def mutation_endpoints(mutations: Sequence[Mutation]) -> set[int]:
    """Every vertex id named by a batch (both endpoints of every change)."""
    endpoints: set[int] = set()
    for mutation in mutations:
        endpoints.add(mutation.src)
        endpoints.add(mutation.dst)
    return endpoints
