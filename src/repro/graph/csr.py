"""Compressed sparse row (CSR) graph representation.

The CSR graph is the storage substrate every other component builds on.  It
stores the out-adjacency in three numpy arrays (``indptr``, ``indices``,
``weights``) and lazily materializes the in-adjacency (needed for pull-style
traversals) on first use.  Vertices are dense integers ``0 .. n-1``; weights
are 64-bit integers, matching the paper's use of integer edge weights.

Loaded graphs are mutable through a small delta overlay: ``add_edge``,
``remove_edge`` and ``update_weight`` (single or batched) record pending
inserts per source and a removal mask over base edge slots instead of
rebuilding the arrays per call.  The overlay compacts back into contiguous
CSR lazily — on the first whole-array read after a mutation batch, or
eagerly once the overlay crosses a size threshold — so a batch of k
mutations costs one rebuild, not k.  Point readers (``out_neighbors``,
``out_edges``, ``out_degree``, ``num_edges``) answer through the overlay
without forcing compaction.  Every mutation bumps ``mutation_version`` and
drops the memoized in-CSR and degree arrays, so no consumer can observe a
stale cache.  The vertex set is fixed: mutations may only reference
existing vertex ids.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import GraphError

__all__ = ["CSRGraph", "COMPACTION_THRESHOLD"]


# Pending overlay edges tolerated before compaction happens eagerly at
# mutation time (instead of lazily on the next whole-array read).
COMPACTION_THRESHOLD = 4096


class CSRGraph:
    """A directed graph in compressed sparse row form with a mutation overlay.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; ``indptr[v]`` is the
        offset of vertex ``v``'s first out-edge in ``indices``/``weights``.
    indices:
        ``int64`` array of destination vertex ids, one per directed edge.
    weights:
        Optional ``int64`` array of edge weights aligned with ``indices``.
        When omitted the graph is unweighted and every edge has weight 1.
    coordinates:
        Optional ``float64`` array of shape ``(num_vertices, 2)`` giving a
        planar embedding (used by A* search on road networks).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        coordinates: np.ndarray | None = None,
    ):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphError("indptr must be a non-empty 1-D array")
        if indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({int(indptr[-1])}) must equal the number of edges ({indices.size})"
            )
        num_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise GraphError("edge destination out of range")
        if weights is None:
            weights = np.ones(indices.size, dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != indices.shape:
                raise GraphError("weights must align with indices")
        if coordinates is not None:
            coordinates = np.asarray(coordinates, dtype=np.float64)
            if coordinates.shape != (num_vertices, 2):
                raise GraphError(
                    f"coordinates must have shape ({num_vertices}, 2), got {coordinates.shape}"
                )

        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._coordinates = coordinates
        self._in_csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # Degree arrays are memoized (and frozen): the apply operators ask
        # for them every round.  Mutations invalidate them.
        self._out_degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None
        # Mutation overlay: pending inserts per source, a removal mask over
        # base edge slots, and copy-on-first-write ownership of weights.
        self._pending: dict[int, list[tuple[int, int]]] = {}
        self._pending_count = 0
        self._removed: np.ndarray | None = None
        self._removed_count = 0
        self._weights_owned = False
        self._mutation_version = 0
        # Live count of negative-weight edges, maintained through every
        # mutation so the executors' non-negativity guard costs O(1)
        # instead of an O(E) scan (which would also force compaction).
        self._negative_count = int(np.count_nonzero(weights < 0))
        # Base in-adjacency (indptr, sources, base-slot order), kept valid
        # across overlay mutations: queries filter through the removal
        # mask and append pending inserts.  Only compaction (which
        # replaces the base arrays) invalidates it.
        self._in_base: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (dense ids ``0 .. num_vertices - 1``)."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges (overlay-aware, no compaction)."""
        return self._indices.size - self._removed_count + self._pending_count

    @property
    def mutation_version(self) -> int:
        """Counter bumped by every mutation (cache-key for derived state)."""
        return self._mutation_version

    @property
    def has_pending_mutations(self) -> bool:
        """True when the overlay holds uncompacted inserts or removals."""
        return bool(self._pending) or self._removed is not None

    @property
    def has_negative_weights(self) -> bool:
        """Whether any live edge has a negative weight (O(1), no scan)."""
        return self._negative_count > 0

    @property
    def indptr(self) -> np.ndarray:
        """Out-adjacency offsets (compacts any pending overlay first)."""
        self._compact()
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Out-edge destinations (compacts any pending overlay first)."""
        self._compact()
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        """Out-edge weights (compacts any pending overlay first)."""
        self._compact()
        return self._weights

    @property
    def coordinates(self) -> np.ndarray | None:
        """Planar coordinates per vertex, or ``None`` when absent."""
        return self._coordinates

    @property
    def has_coordinates(self) -> bool:
        return self._coordinates is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

    # ------------------------------------------------------------------
    # Degree queries
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Out-degree of vertex ``v`` (overlay-aware, no compaction)."""
        self._check_vertex(v)
        degree = int(self._indptr[v + 1] - self._indptr[v])
        if self._removed is not None:
            degree -= int(
                np.count_nonzero(self._removed[self._indptr[v] : self._indptr[v + 1]])
            )
        if self._pending:
            degree += len(self._pending.get(v, ()))
        return degree

    def out_degrees(self) -> np.ndarray:
        """Array of all out-degrees (memoized, read-only).

        Overlay-aware without compacting: the base degrees are adjusted by
        the removal mask and pending inserts, so the executors' per-round
        degree reads never trigger an O(E) rebuild mid-resume.
        """
        if self._out_degrees is None:
            degrees = np.diff(self._indptr)
            if self.has_pending_mutations:
                if self._removed is not None:
                    removed_src = np.searchsorted(
                        self._indptr, np.flatnonzero(self._removed), side="right"
                    ) - 1
                    np.subtract.at(degrees, removed_src, 1)
                for src, edges in self._pending.items():
                    degrees[src] += len(edges)
            degrees.setflags(write=False)
            self._out_degrees = degrees
        return self._out_degrees

    def in_degree(self, v: int) -> int:
        """In-degree of vertex ``v`` (materializes the in-CSR on first use)."""
        self._check_vertex(v)
        indptr, _, _ = self.in_csr()
        return int(indptr[v + 1] - indptr[v])

    def in_degrees(self) -> np.ndarray:
        """Array of all in-degrees (memoized, read-only)."""
        if self._in_degrees is None:
            indptr, _, _ = self.in_csr()
            degrees = np.diff(indptr)
            degrees.setflags(write=False)
            self._in_degrees = degrees
        return self._in_degrees

    # ------------------------------------------------------------------
    # Neighbourhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Destinations of ``v``'s out-edges (overlay-aware)."""
        self._check_vertex(v)
        if not self.has_pending_mutations:
            return self._indices[self._indptr[v] : self._indptr[v + 1]]
        neighbors, _ = self._overlay_slice(v)
        return neighbors

    def out_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges, aligned with :meth:`out_neighbors`."""
        self._check_vertex(v)
        if not self.has_pending_mutations:
            return self._weights[self._indptr[v] : self._indptr[v + 1]]
        _, weights = self._overlay_slice(v)
        return weights

    def out_edges(self, v: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(destination, weight)`` pairs for ``v``'s out-edges."""
        neighbors = self.out_neighbors(v)
        weights = self.out_weights(v)
        for dst, weight in zip(neighbors, weights):
            yield int(dst), int(weight)

    def _overlay_slice(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``v``'s out-edges merged with the overlay (base order, adds last)."""
        start, end = self._indptr[v], self._indptr[v + 1]
        neighbors = self._indices[start:end]
        weights = self._weights[start:end]
        if self._removed is not None:
            keep = ~self._removed[start:end]
            neighbors = neighbors[keep]
            weights = weights[keep]
        added = self._pending.get(v)
        if added:
            neighbors = np.concatenate(
                [neighbors, np.fromiter((d for d, _ in added), np.int64, len(added))]
            )
            weights = np.concatenate(
                [weights, np.fromiter((w for _, w in added), np.int64, len(added))]
            )
        return neighbors, weights

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of ``v``'s in-edges."""
        self._check_vertex(v)
        indptr, indices, _ = self.in_csr()
        return indices[indptr[v] : indptr[v + 1]]

    def in_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s in-edges, aligned with :meth:`in_neighbors`."""
        self._check_vertex(v)
        indptr, _, weights = self.in_csr()
        return weights[indptr[v] : indptr[v + 1]]

    def in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The in-adjacency as ``(indptr, indices, weights)``.

        Built lazily by a stable counting sort over destinations, so the
        in-neighbors of each vertex appear in order of their source id.
        """
        self._compact()
        if self._in_csr is None:
            n = self.num_vertices
            counts = np.bincount(self._indices, minlength=n).astype(np.int64)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            order = np.argsort(self._indices, kind="stable")
            sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
            self._in_csr = (indptr, sources[order], self._weights[order])
        return self._in_csr

    # ------------------------------------------------------------------
    # Overlay-aware bulk access (no compaction)
    # ------------------------------------------------------------------
    def base_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The base CSR arrays *without* folding the overlay.

        The returned arrays may still contain edges flagged in
        :meth:`removed_mask` and never contain pending inserts — pair with
        :meth:`removed_mask` and :meth:`pending_out_edges` for an exact
        overlay-aware view.  Mutations never write ``indptr``/``indices``
        in place (a compaction replaces them wholesale), so the references
        double as stable snapshots; only ``update_weight`` writes through
        the weights array.
        """
        return self._indptr, self._indices, self._weights

    def removed_mask(self) -> np.ndarray | None:
        """Boolean mask over base edge slots, or ``None`` when no removals."""
        return self._removed

    def pending_snapshot(self) -> dict[int, list[tuple[int, int]]]:
        """A copy of the pending-insert overlay (``src -> [(dst, w), ...]``)."""
        return {src: list(edges) for src, edges in self._pending.items()}

    def pending_out_edges(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pending (uncompacted) inserts whose source is in ``vertices``.

        Returned in overlay order (dict insertion order, per-source append
        order), independent of the order of ``vertices`` — so filtering a
        superset's stream by source equals querying the subset directly.
        """
        empty = np.empty(0, dtype=np.int64)
        if not self._pending:
            return empty, empty.copy(), empty.copy()
        members = np.zeros(self.num_vertices, dtype=bool)
        members[np.asarray(vertices, dtype=np.int64)] = True
        sources: list[int] = []
        dests: list[int] = []
        weights: list[int] = []
        for src, edges in self._pending.items():
            if members[src]:
                for dst, weight in edges:
                    sources.append(src)
                    dests.append(dst)
                    weights.append(weight)
        if not sources:
            return empty, empty.copy(), empty.copy()
        return (
            np.asarray(sources, dtype=np.int64),
            np.asarray(dests, dtype=np.int64),
            np.asarray(weights, dtype=np.int64),
        )

    def ensure_in_base(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build (or fetch) the base in-adjacency index.

        Returns ``(in_indptr, in_sources, in_order)`` over the *base*
        arrays: ``in_order[j]`` is the base out-slot of the j-th in-edge,
        so queries can filter removals and read current weights through
        it.  Stays valid across overlay mutations; compaction rebuilds it
        on next use.  Incremental sessions call this once up front so no
        per-batch resume pays the O(E log E) construction.
        """
        if self._in_base is None:
            n = self.num_vertices
            counts = np.bincount(self._indices, minlength=n).astype(np.int64)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            order = np.argsort(self._indices, kind="stable")
            sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
            self._in_base = (indptr, sources[order], order)
        return self._in_base

    def in_edges_of(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``v``'s live in-edges as ``(tails, weights)`` (overlay-aware).

        Uses the retained base in-adjacency plus the overlay, so the cost
        is O(in-degree + pending overlay), never a full in-CSR rebuild.
        """
        self._check_vertex(v)
        indptr, sources, order = self.ensure_in_base()
        slots = order[indptr[v] : indptr[v + 1]]
        tails = sources[indptr[v] : indptr[v + 1]]
        if self._removed is not None:
            keep = ~self._removed[slots]
            slots = slots[keep]
            tails = tails[keep]
        weights = self._weights[slots]
        if self._pending:
            extra_tails = [
                src
                for src, edges in self._pending.items()
                for dst, _ in edges
                if dst == v
            ]
            if extra_tails:
                extra_weights = [
                    w
                    for src, edges in self._pending.items()
                    for dst, w in edges
                    if dst == v
                ]
                tails = np.concatenate(
                    [tails, np.asarray(extra_tails, dtype=np.int64)]
                )
                weights = np.concatenate(
                    [weights, np.asarray(extra_weights, dtype=np.int64)]
                )
        return tails, weights

    # ------------------------------------------------------------------
    # Mutation API (delta overlay + periodic compaction)
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, weight: int = 1) -> None:
        """Insert a directed edge ``src -> dst``.

        Parallel copies are allowed (the graph is a multigraph under
        mutation, exactly as :class:`GraphBuilder` permits duplicates).
        The insert lands in the overlay; compaction is deferred until a
        whole-array read or the overlay crosses
        :data:`COMPACTION_THRESHOLD`.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        self._pending.setdefault(src, []).append((int(dst), int(weight)))
        self._pending_count += 1
        if weight < 0:
            self._negative_count += 1
        self._note_mutation()
        if self._pending_count > COMPACTION_THRESHOLD:
            self._compact()

    def remove_edge(self, src: int, dst: int) -> None:
        """Remove every copy of the directed edge ``src -> dst``.

        Raises :class:`GraphError` when no such edge exists (removals must
        name live edges — silent no-ops would mask caller bugs).
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        removed = 0
        start, end = int(self._indptr[src]), int(self._indptr[src + 1])
        slots = start + np.flatnonzero(self._indices[start:end] == dst)
        if self._removed is not None and slots.size:
            slots = slots[~self._removed[slots]]
        if slots.size:
            if self._removed is None:
                self._removed = np.zeros(self._indices.size, dtype=bool)
            self._removed[slots] = True
            self._removed_count += slots.size
            removed += int(slots.size)
            self._negative_count -= int(np.count_nonzero(self._weights[slots] < 0))
        added = self._pending.get(src)
        if added:
            kept = [(d, w) for d, w in added if d != dst]
            removed += len(added) - len(kept)
            self._pending_count -= len(added) - len(kept)
            self._negative_count -= sum(
                1 for d, w in added if d == dst and w < 0
            )
            if kept:
                self._pending[src] = kept
            else:
                del self._pending[src]
        if not removed:
            raise GraphError(f"no edge {src} -> {dst} to remove")
        self._note_mutation()

    def update_weight(self, src: int, dst: int, weight: int) -> None:
        """Set the weight of every copy of the edge ``src -> dst``.

        Raises :class:`GraphError` when no such edge exists.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        updated = 0
        start, end = int(self._indptr[src]), int(self._indptr[src + 1])
        slots = start + np.flatnonzero(self._indices[start:end] == dst)
        if self._removed is not None and slots.size:
            slots = slots[~self._removed[slots]]
        if slots.size:
            self._ensure_owned_weights()
            self._negative_count -= int(np.count_nonzero(self._weights[slots] < 0))
            self._weights[slots] = int(weight)
            if weight < 0:
                self._negative_count += int(slots.size)
            updated += int(slots.size)
        added = self._pending.get(src)
        if added:
            for i, (d, w) in enumerate(added):
                if d == dst:
                    added[i] = (d, int(weight))
                    self._negative_count += (weight < 0) - (w < 0)
                    updated += 1
        if not updated:
            raise GraphError(f"no edge {src} -> {dst} to update")
        self._note_mutation()

    def add_edges(
        self, sources: np.ndarray, dests: np.ndarray, weights: np.ndarray | None = None
    ) -> None:
        """Batched :meth:`add_edge` (one compaction for the whole batch)."""
        sources = np.asarray(sources, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        if weights is None:
            weights = np.ones(sources.size, dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
        if sources.shape != dests.shape or sources.shape != weights.shape:
            raise GraphError("add_edges arrays must align")
        for src, dst, weight in zip(sources, dests, weights):
            self.add_edge(int(src), int(dst), int(weight))

    def remove_edges(self, sources: np.ndarray, dests: np.ndarray) -> None:
        """Batched :meth:`remove_edge`."""
        for src, dst in zip(np.asarray(sources), np.asarray(dests)):
            self.remove_edge(int(src), int(dst))

    def update_weights(
        self, sources: np.ndarray, dests: np.ndarray, weights: np.ndarray
    ) -> None:
        """Batched :meth:`update_weight`."""
        for src, dst, weight in zip(
            np.asarray(sources), np.asarray(dests), np.asarray(weights)
        ):
            self.update_weight(int(src), int(dst), int(weight))

    def _note_mutation(self) -> None:
        """Bump the version and drop every memoized derived structure."""
        self._mutation_version += 1
        self._in_csr = None
        self._out_degrees = None
        self._in_degrees = None

    def _ensure_owned_weights(self) -> None:
        # Copy-on-first-write: views handed out before the first mutation
        # keep observing the pre-mutation weights.
        if not self._weights_owned:
            self._weights = self._weights.copy()
            self._weights_owned = True

    def _compact(self) -> None:
        """Fold the overlay back into contiguous CSR arrays.

        The merge keeps base-slot order first and overlay inserts last
        within each source (stable sort over the source column), so edge
        iteration order stays deterministic across compactions.
        """
        if not self.has_pending_mutations:
            return
        n = self.num_vertices
        sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        indices, weights = self._indices, self._weights
        if self._removed is not None:
            keep = ~self._removed
            sources, indices, weights = sources[keep], indices[keep], weights[keep]
        if self._pending:
            add_src = np.fromiter(
                (s for s, edges in self._pending.items() for _ in edges),
                np.int64,
                self._pending_count,
            )
            add_dst = np.fromiter(
                (d for edges in self._pending.values() for d, _ in edges),
                np.int64,
                self._pending_count,
            )
            add_w = np.fromiter(
                (w for edges in self._pending.values() for _, w in edges),
                np.int64,
                self._pending_count,
            )
            sources = np.concatenate([sources, add_src])
            indices = np.concatenate([indices, add_dst])
            weights = np.concatenate([weights, add_w])
        order = np.argsort(sources, kind="stable")
        counts = np.bincount(sources, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._indptr = indptr
        self._indices = np.ascontiguousarray(indices[order])
        self._weights = np.ascontiguousarray(weights[order])
        self._weights_owned = True
        self._pending = {}
        self._pending_count = 0
        self._removed = None
        self._removed_count = 0
        # The base arrays just changed wholesale: the retained in-base
        # index maps stale slots and must be rebuilt on next use.
        self._in_base = None

    # ------------------------------------------------------------------
    # Whole-graph transforms
    # ------------------------------------------------------------------
    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as ``(sources, destinations, weights)`` arrays."""
        self._compact()
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self._indptr)
        )
        return sources, self._indices.copy(), self._weights.copy()

    def reversed(self) -> "CSRGraph":
        """The transpose graph (every edge direction flipped)."""
        indptr, indices, weights = self.in_csr()
        return CSRGraph(
            indptr.copy(), indices.copy(), weights.copy(), coordinates=self._coordinates
        )

    def symmetrized(self) -> "CSRGraph":
        """The undirected version: for every edge (u, v) both directions exist.

        Parallel edges arising from symmetrization are deduplicated, keeping
        the minimum weight, matching the convention the paper uses when
        symmetrizing inputs for k-core and SetCover.
        """
        from .builder import GraphBuilder

        sources, dests, weights = self.edge_list()
        builder = GraphBuilder(self.num_vertices)
        builder.add_edges(sources, dests, weights)
        builder.add_edges(dests, sources, weights)
        return builder.build(
            deduplicate="min", remove_self_loops=False, coordinates=self._coordinates
        )

    def is_symmetric(self) -> bool:
        """True when every edge has a reverse edge of equal weight."""
        sources, dests, weights = self.edge_list()
        forward = set(zip(sources.tolist(), dests.tolist(), weights.tolist()))
        return all((d, s, w) in forward for s, d, w in forward)

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """A copy of this graph with the given per-edge weights."""
        self._compact()
        return CSRGraph(
            self._indptr.copy(),
            self._indices.copy(),
            np.asarray(weights, dtype=np.int64).copy(),
            coordinates=self._coordinates,
        )

    def with_coordinates(self, coordinates: np.ndarray) -> "CSRGraph":
        """A copy of this graph with the given vertex coordinates."""
        self._compact()
        return CSRGraph(
            self._indptr.copy(),
            self._indices.copy(),
            self._weights.copy(),
            coordinates=coordinates,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
