"""Compressed sparse row (CSR) graph representation.

The CSR graph is the storage substrate every other component builds on.  It
stores the out-adjacency in three numpy arrays (``indptr``, ``indices``,
``weights``) and lazily materializes the in-adjacency (needed for pull-style
traversals) on first use.  Vertices are dense integers ``0 .. n-1``; weights
are 64-bit integers, matching the paper's use of integer edge weights.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable directed graph in compressed sparse row form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; ``indptr[v]`` is the
        offset of vertex ``v``'s first out-edge in ``indices``/``weights``.
    indices:
        ``int64`` array of destination vertex ids, one per directed edge.
    weights:
        Optional ``int64`` array of edge weights aligned with ``indices``.
        When omitted the graph is unweighted and every edge has weight 1.
    coordinates:
        Optional ``float64`` array of shape ``(num_vertices, 2)`` giving a
        planar embedding (used by A* search on road networks).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        coordinates: np.ndarray | None = None,
    ):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphError("indptr must be a non-empty 1-D array")
        if indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({int(indptr[-1])}) must equal the number of edges ({indices.size})"
            )
        num_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise GraphError("edge destination out of range")
        if weights is None:
            weights = np.ones(indices.size, dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != indices.shape:
                raise GraphError("weights must align with indices")
        if coordinates is not None:
            coordinates = np.asarray(coordinates, dtype=np.float64)
            if coordinates.shape != (num_vertices, 2):
                raise GraphError(
                    f"coordinates must have shape ({num_vertices}, 2), got {coordinates.shape}"
                )

        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._coordinates = coordinates
        self._in_csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # Degree arrays are memoized (and frozen): the apply operators ask
        # for them every round, and the graph is immutable.
        self._out_degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (dense ids ``0 .. num_vertices - 1``)."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        """Out-adjacency offsets (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Out-edge destinations (read-only view)."""
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        """Out-edge weights (read-only view)."""
        return self._weights

    @property
    def coordinates(self) -> np.ndarray | None:
        """Planar coordinates per vertex, or ``None`` when absent."""
        return self._coordinates

    @property
    def has_coordinates(self) -> bool:
        return self._coordinates is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"

    # ------------------------------------------------------------------
    # Degree queries
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Array of all out-degrees (memoized, read-only)."""
        if self._out_degrees is None:
            degrees = np.diff(self._indptr)
            degrees.setflags(write=False)
            self._out_degrees = degrees
        return self._out_degrees

    def in_degree(self, v: int) -> int:
        """In-degree of vertex ``v`` (materializes the in-CSR on first use)."""
        self._check_vertex(v)
        indptr, _, _ = self.in_csr()
        return int(indptr[v + 1] - indptr[v])

    def in_degrees(self) -> np.ndarray:
        """Array of all in-degrees (memoized, read-only)."""
        if self._in_degrees is None:
            indptr, _, _ = self.in_csr()
            degrees = np.diff(indptr)
            degrees.setflags(write=False)
            self._in_degrees = degrees
        return self._in_degrees

    # ------------------------------------------------------------------
    # Neighbourhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Destinations of ``v``'s out-edges (read-only slice)."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def out_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s out-edges, aligned with :meth:`out_neighbors`."""
        self._check_vertex(v)
        return self._weights[self._indptr[v] : self._indptr[v + 1]]

    def out_edges(self, v: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(destination, weight)`` pairs for ``v``'s out-edges."""
        start, end = self._indptr[v], self._indptr[v + 1]
        for i in range(start, end):
            yield int(self._indices[i]), int(self._weights[i])

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of ``v``'s in-edges."""
        self._check_vertex(v)
        indptr, indices, _ = self.in_csr()
        return indices[indptr[v] : indptr[v + 1]]

    def in_weights(self, v: int) -> np.ndarray:
        """Weights of ``v``'s in-edges, aligned with :meth:`in_neighbors`."""
        self._check_vertex(v)
        indptr, _, weights = self.in_csr()
        return weights[indptr[v] : indptr[v + 1]]

    def in_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The in-adjacency as ``(indptr, indices, weights)``.

        Built lazily by a stable counting sort over destinations, so the
        in-neighbors of each vertex appear in order of their source id.
        """
        if self._in_csr is None:
            n = self.num_vertices
            counts = np.bincount(self._indices, minlength=n).astype(np.int64)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            order = np.argsort(self._indices, kind="stable")
            sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
            self._in_csr = (indptr, sources[order], self._weights[order])
        return self._in_csr

    # ------------------------------------------------------------------
    # Whole-graph transforms
    # ------------------------------------------------------------------
    def edge_list(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as ``(sources, destinations, weights)`` arrays."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self._indptr)
        )
        return sources, self._indices.copy(), self._weights.copy()

    def reversed(self) -> "CSRGraph":
        """The transpose graph (every edge direction flipped)."""
        indptr, indices, weights = self.in_csr()
        return CSRGraph(
            indptr.copy(), indices.copy(), weights.copy(), coordinates=self._coordinates
        )

    def symmetrized(self) -> "CSRGraph":
        """The undirected version: for every edge (u, v) both directions exist.

        Parallel edges arising from symmetrization are deduplicated, keeping
        the minimum weight, matching the convention the paper uses when
        symmetrizing inputs for k-core and SetCover.
        """
        from .builder import GraphBuilder

        sources, dests, weights = self.edge_list()
        builder = GraphBuilder(self.num_vertices)
        builder.add_edges(sources, dests, weights)
        builder.add_edges(dests, sources, weights)
        return builder.build(
            deduplicate="min", remove_self_loops=False, coordinates=self._coordinates
        )

    def is_symmetric(self) -> bool:
        """True when every edge has a reverse edge of equal weight."""
        sources, dests, weights = self.edge_list()
        forward = set(zip(sources.tolist(), dests.tolist(), weights.tolist()))
        return all((d, s, w) in forward for s, d, w in forward)

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """A copy of this graph with the given per-edge weights."""
        return CSRGraph(
            self._indptr.copy(),
            self._indices.copy(),
            np.asarray(weights, dtype=np.int64).copy(),
            coordinates=self._coordinates,
        )

    def with_coordinates(self, coordinates: np.ndarray) -> "CSRGraph":
        """A copy of this graph with the given vertex coordinates."""
        return CSRGraph(
            self._indptr.copy(),
            self._indices.copy(),
            self._weights.copy(),
            coordinates=coordinates,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
