"""Incremental construction of :class:`~repro.graph.csr.CSRGraph` objects.

The builder accumulates edges in coordinate form and converts them to CSR in
one sort, with optional deduplication of parallel edges and self-loop removal.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = ["GraphBuilder", "from_edges"]

_DEDUP_MODES = ("none", "min", "max", "first", "sum")


class GraphBuilder:
    """Accumulates edges and produces a CSR graph.

    Parameters
    ----------
    num_vertices:
        The number of vertices in the graph being built.  All edge endpoints
        must be in ``[0, num_vertices)``.
    """

    def __init__(self, num_vertices: int):
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._num_vertices = int(num_vertices)
        self._sources: list[np.ndarray] = []
        self._dests: list[np.ndarray] = []
        self._weights: list[np.ndarray] = []

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_pending_edges(self) -> int:
        """Number of edges added so far (before deduplication)."""
        return sum(arr.size for arr in self._sources)

    def add_edge(self, source: int, dest: int, weight: int = 1) -> "GraphBuilder":
        """Add a single directed edge. Returns ``self`` for chaining."""
        return self.add_edges([source], [dest], [weight])

    def add_edges(
        self,
        sources: Sequence[int] | np.ndarray,
        dests: Sequence[int] | np.ndarray,
        weights: Sequence[int] | np.ndarray | None = None,
    ) -> "GraphBuilder":
        """Add a batch of directed edges. Returns ``self`` for chaining."""
        sources = np.asarray(sources, dtype=np.int64)
        dests = np.asarray(dests, dtype=np.int64)
        if sources.shape != dests.shape or sources.ndim != 1:
            raise GraphError("sources and dests must be 1-D arrays of equal length")
        if weights is None:
            weights = np.ones(sources.size, dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != sources.shape:
                raise GraphError("weights must align with sources/dests")
        if sources.size:
            for name, arr in (("source", sources), ("destination", dests)):
                if arr.min() < 0 or arr.max() >= self._num_vertices:
                    raise GraphError(
                        f"{name} vertex out of range [0, {self._num_vertices})"
                    )
        self._sources.append(sources)
        self._dests.append(dests)
        self._weights.append(weights)
        return self

    def build(
        self,
        deduplicate: str = "none",
        remove_self_loops: bool = False,
        coordinates: np.ndarray | None = None,
    ) -> CSRGraph:
        """Assemble the accumulated edges into a :class:`CSRGraph`.

        Parameters
        ----------
        deduplicate:
            How to handle parallel edges: ``"none"`` keeps them all,
            ``"min"``/``"max"``/``"sum"`` combine their weights, ``"first"``
            keeps the weight of the earliest-added copy.
        remove_self_loops:
            Drop edges whose endpoints coincide.
        coordinates:
            Optional vertex coordinates forwarded to the graph.
        """
        if deduplicate not in _DEDUP_MODES:
            raise GraphError(
                f"unknown deduplicate mode {deduplicate!r}; expected one of {_DEDUP_MODES}"
            )
        if self._sources:
            sources = np.concatenate(self._sources)
            dests = np.concatenate(self._dests)
            weights = np.concatenate(self._weights)
        else:
            sources = np.empty(0, dtype=np.int64)
            dests = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.int64)

        if remove_self_loops and sources.size:
            keep = sources != dests
            sources, dests, weights = sources[keep], dests[keep], weights[keep]

        # Stable sort by (source, dest) so parallel edges are adjacent and the
        # "first" dedup mode sees them in insertion order.
        order = np.lexsort((dests, sources))
        sources, dests, weights = sources[order], dests[order], weights[order]

        if deduplicate != "none" and sources.size:
            sources, dests, weights = _deduplicate(sources, dests, weights, deduplicate)

        counts = np.bincount(sources, minlength=self._num_vertices).astype(np.int64)
        indptr = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(indptr, dests, weights, coordinates=coordinates)


def _deduplicate(
    sources: np.ndarray, dests: np.ndarray, weights: np.ndarray, mode: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Combine adjacent parallel edges in (source, dest)-sorted arrays."""
    new_group = np.empty(sources.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = (sources[1:] != sources[:-1]) | (dests[1:] != dests[:-1])
    group_ids = np.cumsum(new_group) - 1
    num_groups = int(group_ids[-1]) + 1

    starts = np.flatnonzero(new_group)
    if mode == "first":
        combined = weights[starts]
    elif mode == "sum":
        combined = np.bincount(group_ids, weights=weights, minlength=num_groups).astype(
            np.int64
        )
    else:
        reducer = np.minimum if mode == "min" else np.maximum
        combined = np.empty(num_groups, dtype=np.int64)
        reducer.reduceat(weights, starts, out=combined)
    return sources[starts], dests[starts], combined


def from_edges(
    num_vertices: int,
    edges: Iterable[tuple[int, int] | tuple[int, int, int]],
    deduplicate: str = "none",
    remove_self_loops: bool = False,
    coordinates: np.ndarray | None = None,
) -> CSRGraph:
    """Build a graph from an iterable of ``(src, dst)`` or ``(src, dst, w)``.

    A convenience wrapper over :class:`GraphBuilder` for tests and examples.
    """
    builder = GraphBuilder(num_vertices)
    for edge in edges:
        if len(edge) == 2:
            builder.add_edge(edge[0], edge[1])
        else:
            builder.add_edge(edge[0], edge[1], edge[2])
    return builder.build(
        deduplicate=deduplicate,
        remove_self_loops=remove_self_loops,
        coordinates=coordinates,
    )
