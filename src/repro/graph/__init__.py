"""Graph substrate: CSR storage, builders, generators, I/O, vertex sets."""

from .builder import GraphBuilder, from_edges
from .csr import CSRGraph
from .generators import (
    assign_log_weights,
    assign_uniform_weights,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    random_geometric,
    rmat,
    road_grid,
    star_graph,
)
from .io import (
    load_dimacs,
    load_edge_list,
    load_npz,
    save_dimacs,
    save_edge_list,
    save_npz,
)
from .mutations import Mutation, apply_mutations, parse_mutation_script
from .properties import INT_MAX, VertexVector
from .vertexset import VertexSet

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "Mutation",
    "apply_mutations",
    "parse_mutation_script",
    "from_edges",
    "rmat",
    "road_grid",
    "erdos_renyi",
    "random_geometric",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "assign_uniform_weights",
    "assign_log_weights",
    "load_edge_list",
    "save_edge_list",
    "load_dimacs",
    "save_dimacs",
    "load_npz",
    "save_npz",
    "VertexSet",
    "VertexVector",
    "INT_MAX",
]
