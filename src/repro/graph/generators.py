"""Synthetic graph generators.

These generators produce the laptop-scale stand-ins for the paper's datasets
(Table 3): R-MAT/Kronecker graphs emulate the heavy-tailed, small-diameter
social and web graphs (LiveJournal, Orkut, Twitter, Friendster, WebGraph),
while grid-based road networks emulate the large-diameter, near-planar road
graphs (Massachusetts, Germany, RoadUSA) and carry the planar coordinates
required by A* search.  All generators are seeded and deterministic.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GraphError
from .builder import GraphBuilder
from .csr import CSRGraph

__all__ = [
    "rmat",
    "road_grid",
    "erdos_renyi",
    "random_geometric",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "assign_uniform_weights",
    "assign_log_weights",
]


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weights: tuple[int, int] | None = (1, 1000),
) -> CSRGraph:
    """Generate an R-MAT (recursive matrix) graph.

    Produces ``2**scale`` vertices and about ``edge_factor * 2**scale``
    directed edges with the Graph500 default partition probabilities, which
    yields the heavy-tailed degree distribution and small diameter
    characteristic of social networks.  Parallel edges and self-loops are
    removed, matching the conventions of the GAP benchmark suite generator.

    Parameters
    ----------
    scale:
        log2 of the number of vertices.
    edge_factor:
        Average out-degree before deduplication.
    a, b, c:
        Quadrant probabilities (the fourth is ``1 - a - b - c``).
    seed:
        RNG seed.
    weights:
        ``(low, high)`` for uniform integer weights in ``[low, high)``; pass
        ``None`` for an unweighted graph.
    """
    if scale < 0:
        raise GraphError("scale must be non-negative")
    if not 0 < a + b + c < 1:
        raise GraphError("quadrant probabilities must satisfy 0 < a+b+c < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n

    sources = np.zeros(m, dtype=np.int64)
    dests = np.zeros(m, dtype=np.int64)
    # Standard R-MAT: at each of `scale` levels, each edge picks one of the
    # four quadrants; noise on the probabilities avoids degenerate locality.
    for _ in range(scale):
        r = rng.random(m)
        ab = a + b
        abc = a + b + c
        go_down = (r >= a) & (r < ab) | (r >= abc)
        go_right = r >= ab
        sources = (sources << 1) | go_right.astype(np.int64)
        dests = (dests << 1) | go_down.astype(np.int64)

    # Permute vertex ids so the heavy vertices are not clustered at id 0.
    perm = rng.permutation(n)
    sources = perm[sources]
    dests = perm[dests]

    builder = GraphBuilder(n)
    weight_values = None
    if weights is not None:
        low, high = weights
        weight_values = rng.integers(low, high, size=m, dtype=np.int64)
    builder.add_edges(sources, dests, weight_values)
    return builder.build(deduplicate="first", remove_self_loops=True)


def road_grid(
    rows: int,
    cols: int,
    seed: int = 0,
    drop_fraction: float = 0.08,
    diagonal_fraction: float = 0.05,
    coordinate_scale: float = 100.0,
) -> CSRGraph:
    """Generate a road-network-like graph on a jittered grid.

    Vertices sit on a ``rows x cols`` grid with positional jitter; edges
    connect grid neighbours (and a few random diagonals), weighted by the
    rounded Euclidean distance between endpoints — the analogue of the
    "original weights" the paper uses for road graphs.  A fraction of edges
    is dropped to break the regularity.  The result is symmetric (roads are
    two-way), connected on the retained component of the grid, has a large
    diameter of roughly ``rows + cols``, and carries coordinates for A*.

    Edges on a spanning tree of the grid are never dropped, so the graph
    stays connected.
    """
    if rows < 1 or cols < 1:
        raise GraphError("rows and cols must be positive")
    rng = np.random.default_rng(seed)
    n = rows * cols

    xs, ys = np.meshgrid(
        np.arange(cols, dtype=np.float64), np.arange(rows, dtype=np.float64)
    )
    coords = np.column_stack([xs.ravel(), ys.ravel()])
    coords += rng.uniform(-0.25, 0.25, size=coords.shape)
    coords *= coordinate_scale

    def vid(r: int, c: int) -> int:
        return r * cols + c

    spanning: list[tuple[int, int]] = []
    optional: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            if c + 1 < cols:
                # Horizontal edges in row 0 plus all vertical edges form a
                # spanning tree ("comb"); other horizontals are optional.
                (spanning if r == 0 else optional).append((v, vid(r, c + 1)))
            if r + 1 < rows:
                spanning.append((v, vid(r + 1, c)))

    keep_mask = rng.random(len(optional)) >= drop_fraction
    edges = spanning + [e for e, keep in zip(optional, keep_mask) if keep]

    num_diagonals = int(diagonal_fraction * len(edges))
    for _ in range(num_diagonals):
        r = int(rng.integers(0, rows - 1)) if rows > 1 else 0
        c = int(rng.integers(0, cols - 1)) if cols > 1 else 0
        if rows > 1 and cols > 1:
            edges.append((vid(r, c), vid(r + 1, c + 1)))

    sources = np.array([e[0] for e in edges], dtype=np.int64)
    dests = np.array([e[1] for e in edges], dtype=np.int64)
    deltas = coords[sources] - coords[dests]
    # ceil keeps straight-line distance an admissible A* heuristic:
    # every edge weight is >= the Euclidean distance between its endpoints.
    lengths = np.maximum(1, np.ceil(np.hypot(deltas[:, 0], deltas[:, 1]))).astype(
        np.int64
    )

    builder = GraphBuilder(n)
    builder.add_edges(sources, dests, lengths)
    builder.add_edges(dests, sources, lengths)
    return builder.build(
        deduplicate="min", remove_self_loops=True, coordinates=coords
    )


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    weights: tuple[int, int] | None = (1, 1000),
) -> CSRGraph:
    """Generate a uniform random directed multigraph with dedup applied."""
    if num_vertices < 1 and num_edges > 0:
        raise GraphError("cannot place edges in an empty graph")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dests = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    weight_values = None
    if weights is not None:
        weight_values = rng.integers(weights[0], weights[1], size=num_edges, dtype=np.int64)
    builder = GraphBuilder(num_vertices)
    builder.add_edges(sources, dests, weight_values)
    return builder.build(deduplicate="first", remove_self_loops=True)


def random_geometric(
    num_vertices: int,
    radius: float,
    seed: int = 0,
    coordinate_scale: float = 100.0,
) -> CSRGraph:
    """Generate a symmetric random geometric graph in the unit square.

    Vertices are uniform in [0,1)^2 and connected when within ``radius``.
    Weights are rounded scaled Euclidean distances; coordinates are retained
    so the graph is usable with A*.  Useful as a second road-like topology.
    """
    rng = np.random.default_rng(seed)
    coords = rng.random((num_vertices, 2))
    sources: list[int] = []
    dests: list[int] = []
    # Cell-grid neighbour search keeps this O(n) for fixed density.
    cell = max(radius, 1e-9)
    grid: dict[tuple[int, int], list[int]] = {}
    for v, (x, y) in enumerate(coords):
        grid.setdefault((int(x / cell), int(y / cell)), []).append(v)
    for (cx, cy), members in grid.items():
        neighbors_cells = [
            grid.get((cx + dx, cy + dy), [])
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        ]
        candidates = [v for cell_members in neighbors_cells for v in cell_members]
        for v in members:
            for u in candidates:
                if u <= v:
                    continue
                if np.hypot(*(coords[v] - coords[u])) <= radius:
                    sources.append(v)
                    dests.append(u)

    coords_scaled = coords * coordinate_scale
    src_arr = np.array(sources, dtype=np.int64)
    dst_arr = np.array(dests, dtype=np.int64)
    if src_arr.size:
        deltas = coords_scaled[src_arr] - coords_scaled[dst_arr]
        lengths = np.maximum(1, np.ceil(np.hypot(deltas[:, 0], deltas[:, 1]))).astype(
            np.int64
        )
    else:
        lengths = np.empty(0, dtype=np.int64)
    builder = GraphBuilder(num_vertices)
    builder.add_edges(src_arr, dst_arr, lengths)
    builder.add_edges(dst_arr, src_arr, lengths)
    return builder.build(
        deduplicate="min", remove_self_loops=True, coordinates=coords_scaled
    )


def path_graph(num_vertices: int, weight: int = 1, symmetric: bool = False) -> CSRGraph:
    """A directed (or symmetric) path ``0 -> 1 -> ... -> n-1``."""
    builder = GraphBuilder(num_vertices)
    for v in range(num_vertices - 1):
        builder.add_edge(v, v + 1, weight)
        if symmetric:
            builder.add_edge(v + 1, v, weight)
    return builder.build()


def cycle_graph(num_vertices: int, weight: int = 1) -> CSRGraph:
    """A directed cycle on ``num_vertices`` vertices."""
    if num_vertices < 1:
        raise GraphError("cycle needs at least one vertex")
    builder = GraphBuilder(num_vertices)
    for v in range(num_vertices):
        builder.add_edge(v, (v + 1) % num_vertices, weight)
    return builder.build()


def star_graph(num_leaves: int, weight: int = 1, symmetric: bool = True) -> CSRGraph:
    """A star: vertex 0 connected to ``num_leaves`` leaves."""
    builder = GraphBuilder(num_leaves + 1)
    for leaf in range(1, num_leaves + 1):
        builder.add_edge(0, leaf, weight)
        if symmetric:
            builder.add_edge(leaf, 0, weight)
    return builder.build()


def complete_graph(num_vertices: int, weight: int = 1) -> CSRGraph:
    """A complete directed graph without self-loops."""
    builder = GraphBuilder(num_vertices)
    for u in range(num_vertices):
        for v in range(num_vertices):
            if u != v:
                builder.add_edge(u, v, weight)
    return builder.build()


def assign_uniform_weights(
    graph: CSRGraph, low: int = 1, high: int = 1000, seed: int = 0
) -> CSRGraph:
    """Return a copy of ``graph`` with uniform integer weights in [low, high)."""
    rng = np.random.default_rng(seed)
    return graph.with_weights(
        rng.integers(low, high, size=graph.num_edges, dtype=np.int64)
    )


def assign_log_weights(graph: CSRGraph, seed: int = 0) -> CSRGraph:
    """Return a copy with weights in ``[1, log2 n)``, the paper's wBFS regime."""
    high = max(2, int(math.log2(max(2, graph.num_vertices))))
    rng = np.random.default_rng(seed)
    return graph.with_weights(
        rng.integers(1, high, size=graph.num_edges, dtype=np.int64)
    )
