"""Core ordered-processing runtime: the compiled form of applyUpdatePriority."""

from .executors import (
    make_min_relaxer,
    make_min_relaxer_pull,
    run_eager,
    run_lazy,
    run_lazy_histogram,
    run_lazy_pull,
    run_relaxed,
)

__all__ = [
    "make_min_relaxer",
    "make_min_relaxer_pull",
    "run_eager",
    "run_lazy",
    "run_lazy_pull",
    "run_lazy_histogram",
    "run_relaxed",
]
