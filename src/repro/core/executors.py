"""Ordered-processing executors: the runtime form of the dequeue loop.

Section 5.2 of the paper describes how the compiler replaces the user's

    while (pq.finished() == false)
        var bucket = pq.dequeueReadySet();
        edges.from(bucket).applyUpdatePriority(udf);

loop with an *ordered processing operator* backed by an optimized runtime
library.  These functions are that library.  Each drives one bucketing
strategy:

- :func:`run_eager` — thread-local buckets, optional **bucket fusion**
  (Figure 7): after draining its share of the global bucket, a thread keeps
  processing its own local bucket for the current priority, with no global
  synchronization, while that bucket stays under the size threshold.
- :func:`run_lazy` — buffered bucket updates reduced once per round
  (Figure 5); costs two global synchronizations per round (buffer reduction
  + round barrier).
- :func:`run_lazy_histogram` — the lazy-with-constant-sum strategy
  (Figure 10): per-round neighbour histogram, one transformed update per
  vertex.
- :func:`run_relaxed` — approximate priority ordering (Galois emulation):
  chunked processing with synchronization only at priority-window advances.

Executors are generic over a *relaxer*: a callable
``relax(chunk, thread_id) -> work_units`` that processes the out-edges of the
chunk's vertices and routes priority changes into the queue.  The relaxers
for min-updates (SSSP/wBFS/PPSP/A*) are built by :func:`make_min_relaxer`.

Real parallelism (PR 3)
-----------------------
When the :class:`VirtualThreadPool` is constructed with
``execution="parallel"``, every executor splits each round into a pure
*produce* phase (the CSR edge gathers, which read only immutable topology and
run concurrently on real worker threads — numpy releases the GIL there) and a
mutating *commit* phase (candidate evaluation, ``np.minimum.at``, queue
routing, statistics).  For the deterministic strategies the commits are
replayed in chunk order on the coordinating thread, which makes the committed
instruction sequence — and therefore the outputs *and every stats counter* —
bit-identical to ``execution="serial"``.  The relaxed strategy commits in
completion order under a lock instead (priority inversions allowed).  A
relaxer advertises the split by exposing a ``gather`` attribute and accepting
the pre-gathered edge stream via ``prefetched``; relaxers without ``gather``
fall back to the serial inline loop even under ``execution="parallel"``.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from ..buckets.eager import EagerBucketQueue
from ..buckets.lazy import LazyBucketQueue
from ..buckets.relaxed import RelaxedPriorityQueue
from ..errors import CompileError
from ..graph.csr import CSRGraph
from ..runtime.frontier import gather_out_edges
from ..runtime.histogram import histogram_counts
from ..runtime.stats import RuntimeStats
from ..runtime.threads import VirtualThreadPool

__all__ = [
    "Relaxer",
    "make_min_relaxer",
    "make_min_relaxer_pull",
    "run_eager",
    "run_lazy",
    "run_lazy_pull",
    "run_lazy_histogram",
    "run_relaxed",
]


class Relaxer(Protocol):
    """Processes the out-edges of ``chunk`` as virtual thread ``thread_id``.

    Returns the number of work units performed (edges traversed plus bucket
    operations), which the executor charges to the thread for the
    simulated-time cost model.
    """

    def __call__(self, chunk: np.ndarray, thread_id: int) -> int: ...


def make_min_relaxer(
    graph: CSRGraph,
    distances: np.ndarray,
    queue,
    stats: RuntimeStats,
    heuristic: np.ndarray | None = None,
) -> Relaxer:
    """Vectorized edge relaxation with write-min semantics.

    Implements the ``updateEdge`` UDF of Figure 3: for each out-edge
    ``(src, dst, w)`` of the chunk, propose ``dist[src] + w`` and keep the
    minimum.  Destinations whose distance improved are routed into the
    queue's buckets — eagerly into the calling thread's local bins for an
    :class:`EagerBucketQueue`, or through the dedup-flagged update buffer for
    a :class:`LazyBucketQueue`.

    Parameters
    ----------
    heuristic:
        Optional per-vertex lower bound to the target (A* search): the
        queue's priority vector is then ``dist + heuristic`` rather than
        ``dist`` itself, and is refreshed for every improved vertex.
    """
    eager = isinstance(queue, EagerBucketQueue)
    relaxed = isinstance(queue, RelaxedPriorityQueue)
    priorities = queue.priority_vector
    # Lazy-style queues grow per-worker private update buffers (Figure 5);
    # resolved once here so the hot relax closure pays no getattr per chunk.
    buffer_local = (
        None if (eager or relaxed) else getattr(queue, "buffer_changed_local", None)
    )

    def gather(chunk: np.ndarray, thread_id: int):
        # Pure produce phase: reads only the immutable CSR topology/weights,
        # so it is safe to run concurrently with other produces and with the
        # coordinator's commits.
        return gather_out_edges(graph, chunk)

    def relax(chunk: np.ndarray, thread_id: int, prefetched=None) -> int:
        if prefetched is None:
            sources, dests, weights = gather_out_edges(graph, chunk)
        else:
            sources, dests, weights = prefetched
        if sources.size == 0:
            return 0
        stats.relaxations += int(sources.size)
        candidates = distances[sources] + weights
        old = distances[dests].copy()
        np.minimum.at(distances, dests, candidates)
        stats.atomic_ops += int(dests.size)
        improved = distances[dests] < old
        changed = np.unique(dests[improved])
        if changed.size:
            stats.priority_updates += int(changed.size)
            if heuristic is not None:
                priorities[changed] = distances[changed] + heuristic[changed]
            if eager:
                queue.insert_changed_batch(thread_id, changed)
            elif relaxed:
                queue.insert_changed_batch(changed)
            elif buffer_local is not None:
                buffer_local(thread_id, changed)
            else:
                queue.buffer_changed_batch(changed)
        return int(sources.size) + int(changed.size)

    relax.gather = gather
    return relax


StopCondition = Callable[[], bool]


def _filter_prefetched(prefetched, live: np.ndarray, num_vertices: int):
    """Restrict a pre-gathered edge stream to edges whose source is live.

    ``live`` must preserve the chunk's vertex order (it is produced by a
    boolean mask over the chunk), so the filtered stream is element-for-element
    identical to what ``gather_out_edges(graph, live)`` would return — the
    property the bit-exactness contract rests on.
    """
    sources, dests, weights = prefetched
    if live.size == 0:
        return sources[:0], dests[:0], weights[:0]
    keep = np.zeros(num_vertices, dtype=bool)
    keep[live] = True
    mask = keep[sources]
    if mask.all():
        return prefetched
    return sources[mask], dests[mask], weights[mask]


def run_eager(
    graph: CSRGraph,
    queue: EagerBucketQueue,
    relax: Relaxer,
    pool: VirtualThreadPool,
    stats: RuntimeStats,
    fusion_threshold: int = 0,
    should_stop: StopCondition | None = None,
) -> None:
    """Drive the eager ordered-processing loop (Figures 6 and 7).

    ``fusion_threshold > 0`` enables bucket fusion with that size threshold;
    0 reproduces plain GAPBS-style eager processing.
    """
    if pool.num_threads != queue.num_threads:
        raise CompileError(
            "thread pool and eager queue disagree on the number of threads"
        )
    pool.bind_stats(stats)
    degrees = graph.out_degrees()
    gather = getattr(relax, "gather", None)
    parallel = pool.is_parallel and gather is not None
    fused_boxes: list[int] = [0]

    def commit_chunk(chunk: np.ndarray, thread_id: int, prefetched) -> None:
        """Serial-order commit for one thread's share of the round.

        Runs the thread's initial relaxation *and* its bucket-fusion drain —
        exactly the slice of work the serial loop body performs for this
        thread — so replaying commits in chunk order reproduces the serial
        instruction sequence bit-for-bit.  Only the initial relaxation's edge
        gather was prefetched concurrently; a fused run's local bucket does
        not exist until the preceding commit, so its gathers stay on the
        coordinator (the paper's fused runs need no synchronization either —
        Figure 7 keeps them entirely thread-local).
        """
        if hasattr(queue, "set_thread"):
            queue.set_thread(thread_id)
        # Re-filter against the current priority: another thread of this
        # round may have already improved a vertex past this bucket
        # (the dist >= Δ * bucket check in GAPBS).
        live = chunk[
            np.asarray(queue.order_of_value(queue.priority_vector[chunk]))
            == queue.current_order
        ]
        if prefetched is None:
            # Serial path, or a legacy relaxer without produce support (such
            # relaxers may not accept the ``prefetched`` keyword at all).
            stats.add_thread_work(thread_id, relax(live, thread_id))
        else:
            if live.size != chunk.size:
                prefetched = _filter_prefetched(prefetched, live, graph.num_vertices)
            stats.add_thread_work(
                thread_id, relax(live, thread_id, prefetched=prefetched)
            )
        if fusion_threshold > 0:
            # Figure 7, lines 14-20: keep draining this thread's local
            # bucket for the current priority without synchronizing.
            while True:
                local = queue.pop_local_bucket(thread_id, fusion_threshold)
                if local is None:
                    break
                fused_boxes[0] += 1
                stats.add_thread_work(thread_id, relax(local, thread_id))

    while True:
        frontier = queue.dequeue_ready_set()
        if frontier.size == 0:
            break
        if should_stop is not None and should_stop():
            break
        stats.begin_round()
        fused_boxes[0] = 0
        chunks = pool.partition(frontier, degrees=degrees[frontier])
        if parallel:
            pool.run_round(chunks, gather, commit_chunk, ordered=True)
        else:
            for thread_id, chunk in enumerate(chunks):
                if chunk.size == 0:
                    continue
                commit_chunk(chunk, thread_id, None)
        stats.end_round(syncs=1, fused=fused_boxes[0])


def run_lazy(
    graph: CSRGraph,
    queue: LazyBucketQueue,
    relax: Relaxer,
    pool: VirtualThreadPool,
    stats: RuntimeStats,
    should_stop: StopCondition | None = None,
    round_overhead: Callable[[np.ndarray], int] | None = None,
) -> None:
    """Drive the lazy ordered-processing loop (Figure 5).

    Each round costs two global synchronizations: one to reduce the update
    buffer into per-vertex bucket updates, one at the round barrier.
    ``round_overhead(frontier)`` charges extra per-round work, distributed
    evenly across threads — used by the Julienne emulation to model its
    per-round out-degree reduction for the direction optimization.
    """
    stats.num_threads = pool.num_threads
    pool.bind_stats(stats)
    degrees = graph.out_degrees()
    gather = getattr(relax, "gather", None)
    parallel = pool.is_parallel and gather is not None

    def commit_chunk(chunk: np.ndarray, thread_id: int, prefetched) -> None:
        stats.add_thread_work(thread_id, relax(chunk, thread_id, prefetched=prefetched))

    while True:
        frontier = queue.dequeue_ready_set()
        if frontier.size == 0:
            break
        if should_stop is not None and should_stop():
            break
        stats.begin_round()
        if round_overhead is not None:
            _charge_evenly(stats, pool.num_threads, round_overhead(frontier))
        chunks = pool.partition(frontier, degrees=degrees[frontier])
        if parallel:
            # Fig. 5's round protocol: private produces, then a barrier, then
            # the reduction/commit — the two syncs charged below.
            pool.run_round(chunks, gather, commit_chunk, ordered=True)
        else:
            for thread_id, chunk in enumerate(chunks):
                if chunk.size:
                    stats.add_thread_work(thread_id, relax(chunk, thread_id))
        stats.end_round(syncs=2)


def _charge_evenly(stats: RuntimeStats, num_threads: int, units: int) -> None:
    """Charge ``units`` of work spread evenly across all threads."""
    if units <= 0:
        return
    per_thread = units // num_threads + 1
    for thread_id in range(num_threads):
        stats.add_thread_work(thread_id, per_thread)


def make_min_relaxer_pull(
    graph: CSRGraph,
    distances: np.ndarray,
    queue: LazyBucketQueue,
    stats: RuntimeStats,
    frontier_map: np.ndarray,
    heuristic: np.ndarray | None = None,
):
    """Pull-direction write-min relaxation (Figure 9(b), DensePull).

    Each virtual thread owns a chunk of *destination* vertices and scans
    their in-edges, accepting contributions only from frontier sources.  No
    atomics are needed: a destination is written exclusively by its owner
    (the paper's dependence analysis drops the ``atomicWriteMin`` here).
    ``frontier_map`` is a persistent boolean array the executor refreshes
    each round.
    """
    from ..runtime.frontier import gather_in_edges

    priorities = queue.priority_vector
    buffer_local = getattr(queue, "buffer_changed_local", None)

    def gather(dest_chunk: np.ndarray, thread_id: int):
        # Pure produce phase (in-edge topology only); the frontier-map test
        # and all distance reads happen in the commit below.
        return gather_in_edges(graph, dest_chunk)

    def relax(dest_chunk: np.ndarray, thread_id: int, prefetched=None) -> int:
        if prefetched is None:
            sources, dests, weights = gather_in_edges(graph, dest_chunk)
        else:
            sources, dests, weights = prefetched
        if sources.size == 0:
            return 0
        stats.relaxations += int(sources.size)
        on_frontier = frontier_map[sources]
        sources = sources[on_frontier]
        dests = dests[on_frontier]
        weights = weights[on_frontier]
        if sources.size == 0:
            return int(on_frontier.size)
        candidates = distances[sources] + weights
        old = distances[dests].copy()
        np.minimum.at(distances, dests, candidates)
        improved = distances[dests] < old
        changed = np.unique(dests[improved])
        if changed.size:
            stats.priority_updates += int(changed.size)
            if heuristic is not None:
                priorities[changed] = distances[changed] + heuristic[changed]
            if buffer_local is not None:
                buffer_local(thread_id, changed)
            else:
                queue.buffer_changed_batch(changed)
        return int(on_frontier.size) + int(changed.size)

    relax.gather = gather
    return relax


def run_lazy_pull(
    graph: CSRGraph,
    queue: LazyBucketQueue,
    relax_pull: Relaxer,
    pool: VirtualThreadPool,
    stats: RuntimeStats,
    frontier_map: np.ndarray,
    should_stop: StopCondition | None = None,
) -> None:
    """Drive the lazy loop with DensePull traversal (Figure 9(b)).

    Every round scans all vertices' in-edges against a dense frontier map —
    the layout cost the direction optimization trades against atomic-free
    updates.  ``frontier_map`` must be a zeroed boolean array of size |V|
    shared with the relaxer.
    """
    stats.num_threads = pool.num_threads
    pool.bind_stats(stats)
    all_vertices = np.arange(graph.num_vertices, dtype=np.int64)
    in_degrees = graph.in_degrees()
    gather = getattr(relax_pull, "gather", None)
    parallel = pool.is_parallel and gather is not None

    def commit_chunk(chunk: np.ndarray, thread_id: int, prefetched) -> None:
        stats.add_thread_work(
            thread_id, relax_pull(chunk, thread_id, prefetched=prefetched)
        )

    while True:
        frontier = queue.dequeue_ready_set()
        if frontier.size == 0:
            break
        if should_stop is not None and should_stop():
            break
        frontier_map.fill(False)
        frontier_map[frontier] = True
        stats.begin_round()
        chunks = pool.partition(all_vertices, degrees=in_degrees)
        if parallel:
            pool.run_round(chunks, gather, commit_chunk, ordered=True)
        else:
            for thread_id, chunk in enumerate(chunks):
                if chunk.size:
                    stats.add_thread_work(thread_id, relax_pull(chunk, thread_id))
        stats.end_round(syncs=2)


def run_lazy_histogram(
    graph: CSRGraph,
    queue: LazyBucketQueue,
    stats: RuntimeStats,
    pool: VirtualThreadPool,
    constant: int,
    on_bucket: Callable[[np.ndarray, int], None] | None = None,
    should_stop: StopCondition | None = None,
    round_overhead: Callable[[np.ndarray], int] | None = None,
) -> None:
    """Drive the lazy-with-constant-sum loop (Section 5.1, Figure 10).

    For every dequeued bucket, gathers the out-neighbours of its vertices,
    histograms them, and applies the transformed constant-sum update
    ``priority = clamp(priority + constant * count, current_priority)`` once
    per distinct neighbour.  ``on_bucket(bucket, priority)`` lets algorithms
    record results (k-core stores coreness = current priority).
    """
    stats.num_threads = pool.num_threads
    pool.bind_stats(stats)
    degrees = graph.out_degrees()
    while True:
        bucket = queue.dequeue_ready_set()
        if bucket.size == 0:
            break
        if should_stop is not None and should_stop():
            break
        current_priority = queue.get_current_priority()
        if on_bucket is not None:
            on_bucket(bucket, current_priority)
        stats.begin_round()
        if round_overhead is not None:
            _charge_evenly(stats, pool.num_threads, round_overhead(bucket))
        if pool.is_parallel:
            # Gather each thread's share of the bucket's out-neighbours
            # concurrently (pure topology reads), then reduce once at the
            # barrier.  The histogram is a multiset reduction (np.unique),
            # so per-chunk concatenation order does not affect the counts —
            # the sequential oracle's results are reproduced exactly.
            chunks = pool.partition(bucket, degrees=degrees[bucket])
            gathered: list[np.ndarray] = []

            def produce(chunk: np.ndarray, thread_id: int) -> np.ndarray:
                return gather_out_edges(graph, chunk)[1]

            def collect(chunk: np.ndarray, thread_id: int, part: np.ndarray) -> None:
                gathered.append(part)

            pool.run_round(chunks, produce, collect, ordered=True)
            neighbors = (
                np.concatenate(gathered)
                if gathered
                else np.empty(0, dtype=np.int64)
            )
        else:
            _, neighbors, _ = gather_out_edges(graph, bucket)
        stats.relaxations += int(neighbors.size)
        vertices, counts = histogram_counts(neighbors, stats)
        queue.apply_histogram_updates(vertices, counts, constant, current_priority)
        # The histogram build and the per-vertex application parallelize
        # across threads; charge the work as evenly distributed.
        per_thread = (int(neighbors.size) + int(vertices.size)) // pool.num_threads + 1
        for thread_id in range(pool.num_threads):
            stats.add_thread_work(thread_id, per_thread)
        stats.end_round(syncs=2)


def run_relaxed(
    graph: CSRGraph,
    queue: RelaxedPriorityQueue,
    relax: Relaxer,
    pool: VirtualThreadPool,
    stats: RuntimeStats,
    should_stop: StopCondition | None = None,
) -> None:
    """Drive approximately-ordered processing (Galois emulation).

    There is no per-priority barrier: a global synchronization is charged
    only when the priority window advances, modelling Galois' ordered-list
    scheduler.  Work-efficiency is lost instead (stale and duplicate entries
    are processed), which the relaxation counters expose.
    """
    stats.num_threads = pool.num_threads
    pool.bind_stats(stats)
    degrees = graph.out_degrees()
    gather = getattr(relax, "gather", None)
    parallel = pool.is_parallel and gather is not None

    def commit_chunk(chunk: np.ndarray, thread_id: int, prefetched) -> None:
        stats.add_thread_work(thread_id, relax(chunk, thread_id, prefetched=prefetched))

    previous_order: int | None = None
    rounds_since_sync = 0
    while True:
        frontier = queue.dequeue_ready_set()
        if frontier.size == 0:
            break
        if should_stop is not None and should_stop():
            break
        stats.begin_round()
        chunks = pool.partition(frontier, degrees=degrees[frontier])
        if parallel:
            # Galois emulation: no per-round commit order — commits apply in
            # completion order under the engine's lock, so priority
            # inversions across workers are possible (and admissible).
            pool.run_round(chunks, gather, commit_chunk, ordered=False)
        else:
            for thread_id, chunk in enumerate(chunks):
                if chunk.size:
                    stats.add_thread_work(thread_id, relax(chunk, thread_id))
        # A synchronization is charged when the priority window advances and
        # periodically for distributed termination detection (Galois'
        # scheduler is cheap but not free).
        advanced = queue.current_order != previous_order
        previous_order = queue.current_order
        rounds_since_sync += 1
        syncs = 0
        if advanced or rounds_since_sync >= 8:
            syncs = 1
            rounds_since_sync = 0
        stats.end_round(syncs=syncs)
