"""C++ code generator.

Produces a single self-contained translation unit (embedded runtime +
generated program) that compiles with ``g++ -O2 -std=c++17 -fopenmp``.  The
three code shapes of Figure 9 are reproduced:

- **lazy / SparsePush** — the user's while loop survives; the apply lowers
  to an OpenMP loop over the frontier whose body is the UDF with a
  ``tracking_var``, ``atomicWriteMin`` (when the dependence analysis finds
  conflicts), and dedup-flagged buffered bucket updates (Figure 9(a)).
- **lazy / DensePull** — the apply lowers to a loop over destinations
  scanning in-edges against a dense frontier map, with plain (non-atomic)
  writes (Figure 9(b)).
- **eager (± fusion)** — the entire while loop is replaced by the ordered
  processing operator: an OpenMP parallel region with thread-local
  ``local_bins``, the GAPBS-style two-slot shared frontier, and, under
  fusion, the threshold-gated inner while loop of Figure 7 (Figure 9(c)).

``lazy_constant_sum`` additionally emits the Figure 10 transformed function
and a histogram-based apply.

Programs using extern functions (A*, SetCover) are rejected — as in the
paper's artifact those require hand-written C++ extern functions.

Every generated main ends by dumping each global int vector to the file
named by ``$REPRO_OUTPUT`` (default ``repro_output.txt``), one line per
vector — the hook the differential tests use to compare against the Python
backend.
"""

from __future__ import annotations

from ..errors import CompileError
from ..lang import ast_nodes as ast
from ..lang.types import (
    BOOL,
    FLOAT,
    INT,
    EdgeSetType,
    PriorityQueueType,
    Type,
    VectorType,
    VertexSetType,
)
from ..midend.transforms.lowering import CompilationPlan
from .cpp_runtime import CPP_RUNTIME
from .python_backend import _Emitter

__all__ = ["generate_cpp"]


def generate_cpp(plan: CompilationPlan) -> str:
    """Generate C++ source for ``plan``."""
    return _CppEmitter(plan).emit()


class _CppEmitter:
    def __init__(self, plan: CompilationPlan):
        self.plan = plan
        self.program = plan.program
        self.schedule = plan.schedule
        self.out = _Emitter(indent="  ")
        if self.program.externs:
            raise CompileError(
                "the C++ backend does not support extern functions; as in "
                "the paper's artifact, A* and SetCover need hand-written "
                "C++ externs"
            )
        self.edgeset_name = self._find_const(EdgeSetType)
        if not plan.queue_names:
            raise CompileError(
                "the C++ backend supports ordered (priority-queue) programs "
                "only; compile unordered programs with the Python backend"
            )
        self.queue_name = next(iter(sorted(plan.queue_names)))
        self.vector_names = [
            const.name
            for const in self.program.constants
            if isinstance(const.declared_type, VectorType)
        ]
        self._queue_new = self._find_queue_constructor()
        self._pv_name = self._priority_vector_name()
        # Context flags used during statement emission.
        self._in_eager_region = False
        self._emitting_transformed = False

    # ------------------------------------------------------------------
    # Plan inspection helpers
    # ------------------------------------------------------------------
    def _find_const(self, type_class) -> str | None:
        for const in self.program.constants:
            if isinstance(const.declared_type, type_class):
                return const.name
        return None

    def _find_queue_constructor(self) -> ast.New | None:
        main = self.program.function("main")
        if main is None:
            return None
        for node in ast.walk(main):
            if isinstance(node, ast.New) and isinstance(
                node.type, PriorityQueueType
            ):
                return node
        return None

    def _priority_vector_name(self) -> str:
        if self._queue_new is None or len(self._queue_new.arguments) < 3:
            raise CompileError("cannot locate the priority queue constructor")
        pv_arg = self._queue_new.arguments[2]
        if not isinstance(pv_arg, ast.Name):
            raise CompileError(
                "the priority queue's priority_vector must be a named vector"
            )
        direction = self._queue_new.arguments[1]
        if not (
            isinstance(direction, ast.StringLiteral)
            and direction.value
            in ("lower_first", "lower", "higher_first", "higher")
        ):
            raise CompileError(
                "the priority queue direction must be the literal "
                "'lower_first' or 'higher_first'"
            )
        # Direction parameters threaded through the generated code: bucket
        # orders ascend in both directions (order space); higher_first
        # negates the coarsened priority and uses the large negative null.
        self._dir_lower = direction.value in ("lower_first", "lower")
        self._dir_sign_text = "1" if self._dir_lower else "-1"
        self._null_literal = "kIntMax" if self._dir_lower else "kNullHigher"
        if not self._dir_lower and self.schedule.uses_histogram:
            raise CompileError(
                "lazy_constant_sum requires a lower_first queue in the C++ "
                "backend (the histogram transform tracks decrement counts)"
            )
        allow = self._queue_new.arguments[0]
        if (
            isinstance(allow, ast.BoolLiteral)
            and allow.value is False
            and self.schedule.delta != 1
        ):
            raise CompileError(
                "the priority queue disallows coarsening but the schedule "
                f"sets delta={self.schedule.delta}"
            )
        return pv_arg.identifier

    def _start_vertex_expr(self) -> ast.Expr | None:
        """The constructor's start vertex; None for the all-vertices form."""
        if self._queue_new is None or len(self._queue_new.arguments) < 4:
            return None
        start = self._queue_new.arguments[3]
        if isinstance(start, ast.IntLiteral) and start.value < 0:
            return None
        if (
            isinstance(start, ast.UnaryOp)
            and start.operator == "-"
            and isinstance(start.operand, ast.IntLiteral)
        ):
            return None
        return start

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def emit(self) -> str:
        out = self.out
        out.line("// Generated by repro.backend.cpp_backend — do not edit.")
        out.line(f"// schedule: {self.schedule}")
        out._lines.append(CPP_RUNTIME)
        self._emit_globals()
        self._emit_functions()
        self._emit_main()
        return out.text()

    def _emit_globals(self) -> None:
        out = self.out
        for const in self.program.constants:
            declared = const.declared_type
            if isinstance(declared, EdgeSetType):
                out.line(f"WGraph {const.name};")
            elif isinstance(declared, VectorType):
                out.line(f"std::vector<int64_t> {const.name};")
            elif isinstance(declared, PriorityQueueType):
                if self.schedule.is_lazy:
                    out.line(f"LazyPriorityQueue *{const.name} = nullptr;")
                # Under the eager schedules the queue is replaced by the
                # inline local_bins structure; no global is emitted.
            else:
                out.line(
                    f"{self._cpp_type(declared)} {const.name}"
                    f"{self._global_scalar_init(const)};"
                )
        out.line(f"int64_t delta = {self.schedule.delta};")
        out.line()

    def _global_scalar_init(self, const: ast.ConstDecl) -> str:
        if const.initializer is None:
            return " = 0"
        return f" = {self._expr(const.initializer)}"

    def _emit_functions(self) -> None:
        # Non-main, non-UDF helper functions are emitted as plain functions;
        # the apply UDF itself is inlined at its call site, so only the
        # histogram's transformed function needs a definition.
        if self.schedule.uses_histogram and self.plan.transformed_udf is not None:
            self._emit_transformed_function(self.plan.transformed_udf)

    def _emit_transformed_function(self, func: ast.FuncDecl) -> None:
        out = self.out
        out.line(
            f"inline int64_t {func.name}(NodeID vertex, int64_t count) {{"
        )
        out.push()
        self._emitting_transformed = True
        for statement in func.body:
            self._stmt(statement)
        self._emitting_transformed = False
        out.line("return kIntMax;")
        out.pop()
        out.line("}")
        out.line()

    # ------------------------------------------------------------------
    # main
    # ------------------------------------------------------------------
    def _emit_main(self) -> None:
        main = self.program.function("main")
        if main is None:
            raise CompileError("program has no main function")
        out = self.out
        out.line("int main(int argc, char *argv[]) {")
        out.push()
        out.line("(void)argc;")
        self._emit_const_initializers()
        for statement in main.body:
            self._stmt(statement)
        self._emit_output_dump()
        out.line("return 0;")
        out.pop()
        out.line("}")

    def _emit_const_initializers(self) -> None:
        out = self.out
        for const in self.program.constants:
            declared = const.declared_type
            init = const.initializer
            if isinstance(declared, EdgeSetType):
                if init is None:
                    continue
                out.line(f"{const.name} = {self._expr(init)};")
            elif isinstance(declared, VectorType):
                if init is None:
                    continue
                if (
                    isinstance(init, ast.MethodCall)
                    and init.method == "getOutDegrees"
                ):
                    receiver = self._expr(init.receiver)
                    out.line(f"{const.name} = {receiver}.OutDegrees();")
                else:
                    out.line(
                        f"{const.name}.assign({self.edgeset_name}.num_nodes, "
                        f"{self._expr(init)});"
                    )

    def _emit_output_dump(self) -> None:
        out = self.out
        out.line("{")
        out.push()
        out.line('const char *__path = std::getenv("REPRO_OUTPUT");')
        out.line('std::ofstream __out(__path ? __path : "repro_output.txt");')
        for name in self.vector_names:
            out.line(f'dumpVector(__out, "{name}", {name});')
        out.pop()
        out.line("}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _stmt(self, statement: ast.Stmt) -> None:
        out = self.out
        if isinstance(statement, ast.While):
            if (
                self.plan.loop is not None
                and statement is self.plan.loop.while_stmt
            ):
                if self.schedule.is_eager:
                    self._emit_eager_region()
                    return
                if self.schedule.uses_histogram:
                    self._emit_histogram_scratch()
            out.line(f"while ({self._expr(statement.condition)}) {{")
            out.push()
            for child in statement.body:
                self._stmt(child)
            out.pop()
            out.line("}")
        elif isinstance(statement, ast.VarDecl):
            declared = self._cpp_type(statement.declared_type)
            if statement.initializer is None:
                out.line(f"{declared} {statement.name}{{}};")
            else:
                out.line(
                    f"{declared} {statement.name} = "
                    f"{self._expr(statement.initializer)};"
                )
        elif isinstance(statement, ast.Assign):
            if isinstance(statement.value, ast.New):
                self._emit_queue_construction(statement)
                return
            out.line(
                f"{self._expr(statement.target)} = "
                f"{self._expr(statement.value)};"
            )
        elif isinstance(statement, ast.ExprStmt):
            if self._try_emit_apply(statement.expression):
                return
            out.line(f"{self._expr(statement.expression)};")
        elif isinstance(statement, ast.If):
            out.line(f"if ({self._expr(statement.condition)}) {{")
            out.push()
            for child in statement.then_body:
                self._stmt(child)
            out.pop()
            if statement.else_body:
                out.line("} else {")
                out.push()
                for child in statement.else_body:
                    self._stmt(child)
                out.pop()
            out.line("}")
        elif isinstance(statement, ast.For):
            variable = statement.variable
            out.line(
                f"for (int64_t {variable} = {self._expr(statement.start)}; "
                f"{variable} < {self._expr(statement.stop)}; {variable}++) {{"
            )
            out.push()
            for child in statement.body:
                self._stmt(child)
            out.pop()
            out.line("}")
        elif isinstance(statement, ast.Print):
            out.line(
                f"std::cout << {self._expr(statement.expression)} << std::endl;"
            )
        elif isinstance(statement, ast.Delete):
            out.line(f"// delete {statement.name} (scope-managed)")
        elif isinstance(statement, ast.Return):
            if statement.value is None:
                if self._emitting_transformed:
                    out.line("return kIntMax;")
                else:
                    out.line("return;")
            else:
                out.line(f"return {self._expr(statement.value)};")
        else:  # pragma: no cover
            raise CompileError(f"cannot generate {type(statement).__name__}")

    def _emit_queue_construction(self, statement: ast.Assign) -> None:
        """``pq = new priority_queue{...}(...)`` — a LazyPriorityQueue under
        the lazy schedules; elided under eager (the loop replacement carries
        the initialization)."""
        target = self._expr(statement.target)
        if self.schedule.is_eager:
            self.out.line(
                f"// {target}: replaced by the eager ordered-processing "
                f"operator (thread-local buckets)"
            )
            return
        start = self._start_vertex_expr()
        start_text = self._expr(start) if start is not None else "-1"
        self.out.line(
            f"{target} = new LazyPriorityQueue({self._pv_name}.data(), "
            f"{self.edgeset_name}.num_nodes, delta, {start_text}, "
            f"{self.schedule.num_buckets}, {self._dir_sign_text}, "
            f"{self._null_literal});"
        )

    # ------------------------------------------------------------------
    # Lazy apply lowering (Figures 9(a) and 9(b))
    # ------------------------------------------------------------------
    def _try_emit_apply(self, expression: ast.Expr) -> bool:
        if not (
            isinstance(expression, ast.MethodCall)
            and expression.method in ("applyUpdatePriority", "apply")
        ):
            return False
        chain = expression.receiver
        if not (
            isinstance(chain, ast.MethodCall)
            and chain.method == "from"
            and isinstance(chain.receiver, ast.Name)
        ):
            raise CompileError("applyUpdatePriority needs edges.from(bucket)")
        edgeset = chain.receiver.identifier
        bucket = self._expr(chain.arguments[0])
        udf_name = expression.arguments[0].identifier
        udf = self.program.function(udf_name)
        if udf is None:
            raise CompileError(f"unknown UDF {udf_name!r}")
        if self.schedule.uses_histogram:
            self._emit_histogram_apply(edgeset, bucket)
        elif self.schedule.direction == "DensePull":
            self._emit_pull_apply(edgeset, bucket, udf)
        else:
            self._emit_push_apply(edgeset, bucket, udf)
        return True

    def _udf_param_names(self, udf: ast.FuncDecl) -> tuple[str, str, str | None]:
        names = [name for name, _ in udf.parameters]
        if len(names) == 2:
            return names[0], names[1], None
        return names[0], names[1], names[2]

    def _emit_push_apply(self, edgeset: str, bucket: str, udf: ast.FuncDecl) -> None:
        out = self.out
        src, dst, weight = self._udf_param_names(udf)
        out.line("{")
        out.push()
        out.line("#pragma omp parallel for schedule(dynamic, 64)")
        out.line(f"for (size_t __i = 0; __i < {bucket}.size(); __i++) {{")
        out.push()
        out.line(f"NodeID {src} = {bucket}[__i];")
        out.line(f"for (WNode __wn : {edgeset}.out_neigh({src})) {{")
        out.push()
        out.line(f"NodeID {dst} = __wn.v;")
        if weight is not None:
            out.line(f"WeightT {weight} = __wn.weight;")
        self._emit_udf_body(udf, mode="lazy_push")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")

    def _emit_pull_apply(self, edgeset: str, bucket: str, udf: ast.FuncDecl) -> None:
        out = self.out
        src, dst, weight = self._udf_param_names(udf)
        out.line("{")
        out.push()
        out.line(
            f"static WGraph __transposed = TransposeGraph({edgeset});"
        )
        out.line(
            f"static std::vector<uint8_t> __frontier_map({edgeset}.num_nodes, 0);"
        )
        out.line(
            f"std::fill(__frontier_map.begin(), __frontier_map.end(), 0);"
        )
        out.line(f"for (NodeID __v : {bucket}) __frontier_map[__v] = 1;")
        out.line("#pragma omp parallel for schedule(dynamic, 64)")
        out.line(f"for (NodeID {dst} = 0; {dst} < {edgeset}.num_nodes; {dst}++) {{")
        out.push()
        out.line(f"for (WNode __wn : __transposed.out_neigh({dst})) {{")
        out.push()
        out.line("if (!__frontier_map[__wn.v]) continue;")
        out.line(f"NodeID {src} = __wn.v;")
        if weight is not None:
            out.line(f"WeightT {weight} = __wn.weight;")
        self._emit_udf_body(udf, mode="lazy_pull")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")

    def _emit_histogram_scratch(self) -> None:
        out = self.out
        out.line(
            f"std::vector<int64_t> __count({self.edgeset_name}.num_nodes, 0);"
        )
        out.line(
            f"std::vector<NodeID> __touched({self.edgeset_name}.num_nodes);"
        )
        out.line("size_t __touched_tail = 0;")

    def _emit_histogram_apply(self, edgeset: str, bucket: str) -> None:
        out = self.out
        transformed = self.plan.transformed_udf
        if transformed is None:
            raise CompileError("histogram schedule lacks a transformed UDF")
        out.line("{")
        out.push()
        out.line("#pragma omp parallel for schedule(dynamic, 64)")
        out.line(f"for (size_t __i = 0; __i < {bucket}.size(); __i++) {{")
        out.push()
        out.line(f"for (WNode __wn : {edgeset}.out_neigh({bucket}[__i])) {{")
        out.push()
        out.line(
            "if (__atomic_fetch_add(&__count[__wn.v], (int64_t)1, "
            "__ATOMIC_RELAXED) == 0) {"
        )
        out.push()
        out.line(
            "size_t __slot = __atomic_fetch_add(&__touched_tail, (size_t)1, "
            "__ATOMIC_RELAXED);"
        )
        out.line("__touched[__slot] = __wn.v;")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")
        out.line("#pragma omp parallel for schedule(dynamic, 64)")
        out.line("for (size_t __i = 0; __i < __touched_tail; __i++) {")
        out.push()
        out.line("NodeID __v = __touched[__i];")
        out.line(
            f"if ({transformed.name}(__v, __count[__v]) != kIntMax) "
            f"{self.queue_name}->bufferVertex(__v);"
        )
        out.line("__count[__v] = 0;")
        out.pop()
        out.line("}")
        out.line("__touched_tail = 0;")
        out.pop()
        out.line("}")

    # ------------------------------------------------------------------
    # UDF body lowering
    # ------------------------------------------------------------------
    def _emit_udf_body(self, udf: ast.FuncDecl, mode: str) -> None:
        """Inline the UDF with its priority-update operators lowered.

        ``mode`` is ``lazy_push``, ``lazy_pull``, or ``eager``; it selects
        the bucket-update mechanism and whether writes are atomic (the
        dependence analysis result — pull needs no atomics).
        """
        for statement in udf.body:
            self._emit_udf_stmt(statement, mode)

    def _emit_udf_stmt(self, statement: ast.Stmt, mode: str) -> None:
        if isinstance(statement, ast.ExprStmt):
            update = self._match_update_call(statement.expression)
            if update is not None:
                self._emit_priority_update(update, mode)
                return
        if isinstance(statement, ast.If):
            self.out.line(f"if ({self._expr(statement.condition)}) {{")
            self.out.push()
            for child in statement.then_body:
                self._emit_udf_stmt(child, mode)
            self.out.pop()
            if statement.else_body:
                self.out.line("} else {")
                self.out.push()
                for child in statement.else_body:
                    self._emit_udf_stmt(child, mode)
                self.out.pop()
            self.out.line("}")
            return
        if isinstance(statement, ast.Assign):
            # Plain assigns are emitted verbatim: the race analysis has
            # classified each one (thread-owned, idempotent constant, or
            # guarded monotonic test-and-set are all benign without
            # atomics).  Sites it could NOT prove safe are flagged in the
            # generated code; `repro lint` reports them as R001 errors.
            site = self._race_site(statement)
            if site is not None and site.race_class.value == "unordered_racy":
                self.out.line("// R001: unordered racy write (repro lint)")
            self.out.line(
                f"{self._expr(statement.target)} = "
                f"{self._expr(statement.value)};"
            )
            return
        self._stmt(statement)

    def _match_update_call(self, expression: ast.Expr):
        if (
            isinstance(expression, ast.MethodCall)
            and expression.method.startswith("updatePriority")
            and isinstance(expression.receiver, ast.Name)
            and expression.receiver.identifier in self.plan.queue_names
        ):
            return expression
        return None

    def _race_site(self, node: ast.Node):
        """The race-analysis classification for an AST node, if any."""
        races = getattr(self.plan, "races", None)
        if races is None:
            return None
        return races.site_for(node)

    def _emit_priority_update(self, call: ast.MethodCall, mode: str) -> None:
        out = self.out
        arguments = call.arguments
        vertex = self._expr(arguments[0])
        # The race analysis decides atomicity per site (no unconditional
        # atomics): CAS/fetch-add only where the write crosses threads under
        # the active schedule.  Without a classification (plans built before
        # the analysis ran) fall back to the old direction heuristic.
        site = self._race_site(call)
        if site is not None:
            atomic = site.race_class.is_atomic
        else:
            atomic = mode != "lazy_pull"
        if call.method in ("updatePriorityMin", "updatePriorityMax"):
            new_value = self._expr(arguments[-1])
            out.line(f"int64_t __new_value = {new_value};")
            if atomic:
                op = (
                    "atomicWriteMin"
                    if call.method == "updatePriorityMin"
                    else "atomicWriteMax"
                )
                seed = ""
                if site is not None and site.cas_seed is not None:
                    # Seed the CAS loop from the old value the UDF already
                    # read (the preserved 3-argument form) instead of an
                    # extra atomic load.
                    seed = f", {self._expr(site.cas_seed)}"
                out.line(
                    f"bool __tracking_var = {op}(&{self._pv_name}[{vertex}], "
                    f"__new_value{seed});"
                )
            else:
                comparison = "<" if call.method == "updatePriorityMin" else ">"
                out.line("bool __tracking_var = false;")
                out.line(
                    f"if (__new_value {comparison} {self._pv_name}[{vertex}]) "
                    f"{{ {self._pv_name}[{vertex}] = __new_value; "
                    f"__tracking_var = true; }}"
                )
            self._emit_bucket_routing(vertex, "__new_value", "__tracking_var", mode)
        elif call.method == "updatePrioritySum":
            diff = self._expr(arguments[1])
            threshold = (
                self._expr(arguments[2]) if len(arguments) > 2 else "kIntMax"
            )
            add = "atomicAddClamped" if atomic else "addClamped"
            out.line(
                f"int64_t __new_value = {add}("
                f"&{self._pv_name}[{vertex}], {diff}, {threshold});"
            )
            out.line("bool __tracking_var = (__new_value != kIntMax);")
            self._emit_bucket_routing(vertex, "__new_value", "__tracking_var", mode)
        else:  # pragma: no cover
            raise CompileError(f"unknown update operator {call.method}")

    def _emit_bucket_routing(
        self, vertex: str, new_value: str, tracking: str, mode: str
    ) -> None:
        out = self.out
        if mode in ("lazy_push", "lazy_pull"):
            out.line(
                f"if ({tracking}) {self.queue_name}->bufferVertex({vertex});"
            )
            return
        # Eager: immediate insertion into this thread's local bins
        # (Figure 9(c), lines 22-26).
        out.line(f"if ({tracking}) {{")
        out.push()
        if self._dir_lower:
            out.line(f"size_t __dest_bin = (size_t)({new_value} / delta);")
            out.line(
                "if (__dest_bin < curr_bin_index) __dest_bin = curr_bin_index;"
            )
            out.line(
                "if (__dest_bin >= local_bins.size()) "
                "local_bins.resize(__dest_bin + 1);"
            )
            out.line(f"local_bins[__dest_bin].push_back({vertex});")
        else:
            # higher_first works in order space: orders are negative, so the
            # bins are a sorted map instead of a dense array.
            out.line(
                f"int64_t __dest_order = -floorDiv({new_value}, delta);"
            )
            out.line("if (__dest_order < curr_order) __dest_order = curr_order;")
            out.line(f"local_bins[__dest_order].push_back({vertex});")
        out.pop()
        out.line("}")

    # ------------------------------------------------------------------
    # Eager ordered-processing region (Section 5.2, Figure 9(c))
    # ------------------------------------------------------------------
    def _emit_eager_region(self) -> None:
        if not self._dir_lower:
            self._emit_eager_region_higher()
            return
        loop = self.plan.loop
        udf = self.plan.udf
        if loop is None or udf is None:
            raise CompileError("eager transform requires the recognized loop")
        out = self.out
        edgeset = loop.edgeset_name
        src, dst, weight = self._udf_param_names(udf)
        start = self._start_vertex_expr()
        sum_udf = self.plan.dependence is not None and (
            self.plan.dependence.needs_deduplication
        )
        fusion = self.schedule.uses_fusion
        threshold = self.schedule.bucket_fusion_threshold

        out.line("// --- eager ordered processing operator (Figure 9(c)) ---")
        out.line("{")
        out.push()
        out.line(f"std::vector<NodeID> frontier({edgeset}.num_edges() + 1);")
        out.line("size_t shared_indexes[2] = {kMaxBin, kMaxBin};")
        out.line("size_t frontier_tails[2] = {0, 0};")
        out.line("bool stop_flag = false;")
        if sum_udf:
            out.line(
                f"std::vector<uint8_t> processed({edgeset}.num_nodes, 0);"
            )
        if start is not None:
            out.line(f"frontier[0] = {self._expr(start)};")
            out.line("frontier_tails[0] = 1;")
            out.line(
                f"shared_indexes[0] = (size_t)({self._pv_name}"
                f"[{self._expr(start)}] / delta);"
            )
        out.line("#pragma omp parallel")
        out.line("{")
        out.push()
        out.line("std::vector<std::vector<NodeID>> local_bins(0);")
        if start is None:
            self._emit_eager_prebinning(edgeset)
        out.line("size_t iter = 0;")
        out.line("while (shared_indexes[iter & 1] != kMaxBin) {")
        out.push()
        out.line("size_t &curr_bin_index = shared_indexes[iter & 1];")
        out.line("size_t &next_bin_index = shared_indexes[(iter + 1) & 1];")
        out.line("size_t &curr_frontier_tail = frontier_tails[iter & 1];")
        out.line("size_t &next_frontier_tail = frontier_tails[(iter + 1) & 1];")
        out.line("if (stop_flag) break;")
        out.line(
            "const int64_t curr_priority = (int64_t)curr_bin_index * delta;"
        )
        out.line("(void)curr_priority;")
        # The relaxation lambda: the transformed UDF writing into this
        # thread's local bins.
        out.line(f"auto relax = [&](NodeID {src}) {{")
        out.push()
        out.line(f"for (WNode __wn : {edgeset}.out_neigh({src})) {{")
        out.push()
        out.line(f"NodeID {dst} = __wn.v;")
        if weight is not None:
            out.line(f"WeightT {weight} = __wn.weight;")
        out.line(f"(void){dst};")
        self._in_eager_region = True
        self._emit_udf_body(udf, mode="eager")
        self._in_eager_region = False
        out.pop()
        out.line("}")
        out.pop()
        out.line("};")
        out.line("#pragma omp for nowait schedule(dynamic, 64)")
        out.line("for (size_t i = 0; i < curr_frontier_tail; i++) {")
        out.push()
        out.line("NodeID u = frontier[i];")
        self._emit_eager_guard(sum_udf)
        out.pop()
        out.line("}")
        if fusion:
            out.line(
                "// bucket fusion (Figure 7): drain this thread's current "
                "local bucket"
            )
            out.line(
                f"while (curr_bin_index < local_bins.size() && "
                f"!local_bins[curr_bin_index].empty() && "
                f"local_bins[curr_bin_index].size() < {threshold}) {{"
            )
            out.push()
            out.line("std::vector<NodeID> fused;")
            out.line("fused.swap(local_bins[curr_bin_index]);")
            out.line("for (NodeID u : fused) {")
            out.push()
            self._emit_eager_guard(sum_udf)
            out.pop()
            out.line("}")
            out.pop()
            out.line("}")
        out.line("for (size_t b = curr_bin_index; b < local_bins.size(); b++) {")
        out.push()
        out.line(
            "if (!local_bins[b].empty()) { atomicMinSize(&next_bin_index, b); "
            "break; }"
        )
        out.pop()
        out.line("}")
        out.line("#pragma omp barrier")
        out.line("#pragma omp single nowait")
        out.line("{")
        out.push()
        if loop.stop_condition is not None:
            out.line(
                "if (next_bin_index != kMaxBin && "
                f"({self._stop_condition_text(loop.stop_condition)})) "
                "stop_flag = true;"
            )
        out.line("curr_bin_index = kMaxBin;")
        out.line("curr_frontier_tail = 0;")
        out.pop()
        out.line("}")
        out.line(
            "if (next_bin_index < local_bins.size() && "
            "!local_bins[next_bin_index].empty()) {"
        )
        out.push()
        out.line(
            "size_t copy_start = __atomic_fetch_add(&next_frontier_tail, "
            "local_bins[next_bin_index].size(), __ATOMIC_RELAXED);"
        )
        out.line(
            "std::copy(local_bins[next_bin_index].begin(), "
            "local_bins[next_bin_index].end(), frontier.begin() + copy_start);"
        )
        out.line("local_bins[next_bin_index].resize(0);")
        out.pop()
        out.line("}")
        out.line("iter++;")
        out.line("#pragma omp barrier")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")

    def _emit_eager_region_higher(self) -> None:
        """The eager operator for ``higher_first`` queues.

        Same two-slot shared frontier protocol as the lower_first region,
        but in *order space*: priorities map to ``-floorDiv(p, delta)``,
        which is negative and unbounded below, so thread-local bins are a
        sorted ``std::map`` keyed by order instead of a dense array, and the
        next-bucket election races on an ``int64_t`` order with ``kIntMax``
        as the no-bucket sentinel.
        """
        loop = self.plan.loop
        udf = self.plan.udf
        if loop is None or udf is None:
            raise CompileError("eager transform requires the recognized loop")
        out = self.out
        edgeset = loop.edgeset_name
        src, dst, weight = self._udf_param_names(udf)
        start = self._start_vertex_expr()
        if start is None:
            raise CompileError(
                "the all-vertices priority queue form is not supported with "
                "eager higher_first schedules in the C++ backend; use a "
                "lazy schedule"
            )
        sum_udf = self.plan.dependence is not None and (
            self.plan.dependence.needs_deduplication
        )
        fusion = self.schedule.uses_fusion
        threshold = self.schedule.bucket_fusion_threshold

        out.line(
            "// --- eager ordered processing operator "
            "(Figure 9(c), higher_first) ---"
        )
        out.line("{")
        out.push()
        out.line(f"std::vector<NodeID> frontier({edgeset}.num_edges() + 1);")
        out.line("int64_t shared_orders[2] = {kIntMax, kIntMax};")
        out.line("size_t frontier_tails[2] = {0, 0};")
        out.line("bool stop_flag = false;")
        if sum_udf:
            out.line(
                f"std::vector<uint8_t> processed({edgeset}.num_nodes, 0);"
            )
        out.line(f"frontier[0] = {self._expr(start)};")
        out.line("frontier_tails[0] = 1;")
        out.line(
            f"shared_orders[0] = -floorDiv({self._pv_name}"
            f"[{self._expr(start)}], delta);"
        )
        out.line("#pragma omp parallel")
        out.line("{")
        out.push()
        out.line("std::map<int64_t, std::vector<NodeID>> local_bins;")
        out.line("size_t iter = 0;")
        out.line("while (shared_orders[iter & 1] != kIntMax) {")
        out.push()
        out.line("int64_t &curr_order = shared_orders[iter & 1];")
        out.line("int64_t &next_order = shared_orders[(iter + 1) & 1];")
        out.line("size_t &curr_frontier_tail = frontier_tails[iter & 1];")
        out.line("size_t &next_frontier_tail = frontier_tails[(iter + 1) & 1];")
        out.line("if (stop_flag) break;")
        out.line("const int64_t curr_priority = -curr_order * delta;")
        out.line("(void)curr_priority;")
        out.line(f"auto relax = [&](NodeID {src}) {{")
        out.push()
        out.line(f"for (WNode __wn : {edgeset}.out_neigh({src})) {{")
        out.push()
        out.line(f"NodeID {dst} = __wn.v;")
        if weight is not None:
            out.line(f"WeightT {weight} = __wn.weight;")
        out.line(f"(void){dst};")
        self._in_eager_region = True
        self._emit_udf_body(udf, mode="eager")
        self._in_eager_region = False
        out.pop()
        out.line("}")
        out.pop()
        out.line("};")
        out.line("#pragma omp for nowait schedule(dynamic, 64)")
        out.line("for (size_t i = 0; i < curr_frontier_tail; i++) {")
        out.push()
        out.line("NodeID u = frontier[i];")
        self._emit_eager_guard(sum_udf)
        out.pop()
        out.line("}")
        if fusion:
            out.line(
                "// bucket fusion (Figure 7): drain this thread's current "
                "local bucket"
            )
            out.line("while (true) {")
            out.push()
            out.line("auto __fuse_it = local_bins.find(curr_order);")
            out.line(
                f"if (__fuse_it == local_bins.end() || "
                f"__fuse_it->second.empty() || "
                f"__fuse_it->second.size() >= {threshold}) break;"
            )
            out.line("std::vector<NodeID> fused;")
            out.line("fused.swap(__fuse_it->second);")
            out.line("for (NodeID u : fused) {")
            out.push()
            self._emit_eager_guard(sum_udf)
            out.pop()
            out.line("}")
            out.pop()
            out.line("}")
        out.line(
            "for (auto __it = local_bins.lower_bound(curr_order); "
            "__it != local_bins.end(); ++__it) {"
        )
        out.push()
        out.line(
            "if (!__it->second.empty()) { "
            "atomicMinInt64(&next_order, __it->first); break; }"
        )
        out.pop()
        out.line("}")
        out.line("#pragma omp barrier")
        out.line("#pragma omp single nowait")
        out.line("{")
        out.push()
        if loop.stop_condition is not None:
            out.line(
                "if (next_order != kIntMax && "
                f"({self._stop_condition_text(loop.stop_condition)})) "
                "stop_flag = true;"
            )
        out.line("curr_order = kIntMax;")
        out.line("curr_frontier_tail = 0;")
        out.pop()
        out.line("}")
        out.line("{")
        out.push()
        out.line("auto __next_it = local_bins.find(next_order);")
        out.line(
            "if (__next_it != local_bins.end() && "
            "!__next_it->second.empty()) {"
        )
        out.push()
        out.line(
            "size_t copy_start = __atomic_fetch_add(&next_frontier_tail, "
            "__next_it->second.size(), __ATOMIC_RELAXED);"
        )
        out.line(
            "std::copy(__next_it->second.begin(), __next_it->second.end(), "
            "frontier.begin() + copy_start);"
        )
        out.line("local_bins.erase(__next_it);")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")
        out.line("iter++;")
        out.line("#pragma omp barrier")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")
        out.pop()
        out.line("}")

    def _emit_eager_prebinning(self, edgeset: str) -> None:
        """k-core style initialization: every tracked vertex starts in a
        thread-local bucket for its initial priority."""
        out = self.out
        out.line("#pragma omp for nowait")
        out.line(f"for (NodeID v = 0; v < {edgeset}.num_nodes; v++) {{")
        out.push()
        out.line(f"if ({self._pv_name}[v] == kIntMax) continue;")
        out.line(f"size_t b = (size_t)({self._pv_name}[v] / delta);")
        out.line("if (b >= local_bins.size()) local_bins.resize(b + 1);")
        out.line("local_bins[b].push_back(v);")
        out.pop()
        out.line("}")
        out.line("for (size_t b = 0; b < local_bins.size(); b++) {")
        out.push()
        out.line(
            "if (!local_bins[b].empty()) { "
            "atomicMinSize(&shared_indexes[0], b); break; }"
        )
        out.pop()
        out.line("}")
        out.line("#pragma omp barrier")
        out.line(
            "if (shared_indexes[0] != kMaxBin && "
            "shared_indexes[0] < local_bins.size() && "
            "!local_bins[shared_indexes[0]].empty()) {"
        )
        out.push()
        out.line(
            "size_t copy_start = __atomic_fetch_add(&frontier_tails[0], "
            "local_bins[shared_indexes[0]].size(), __ATOMIC_RELAXED);"
        )
        out.line(
            "std::copy(local_bins[shared_indexes[0]].begin(), "
            "local_bins[shared_indexes[0]].end(), "
            "frontier.begin() + copy_start);"
        )
        out.line("local_bins[shared_indexes[0]].resize(0);")
        out.pop()
        out.line("}")
        out.line("#pragma omp barrier")

    def _emit_eager_guard(self, sum_udf: bool) -> None:
        """The stale-entry guard before relaxing a popped vertex."""
        out = self.out
        if not self._dir_lower:
            if sum_udf:
                out.line(
                    f"if (-floorDiv({self._pv_name}[u], delta) == curr_order "
                    f"&& CASByte(&processed[u], 0, 1)) relax(u);"
                )
            else:
                # The GAPBS check in order space: still in the current (or a
                # later) bucket.
                out.line(
                    f"if (-floorDiv({self._pv_name}[u], delta) >= curr_order) "
                    f"relax(u);"
                )
            return
        if sum_udf:
            # Strict ordering with peel-once semantics (k-core).
            out.line(
                f"if ({self._pv_name}[u] / delta == (int64_t)curr_bin_index "
                f"&& CASByte(&processed[u], 0, 1)) relax(u);"
            )
        else:
            # The GAPBS check: still in the current (or a later) bucket.
            out.line(
                f"if ({self._pv_name}[u] >= delta * (int64_t)curr_bin_index) "
                f"relax(u);"
            )

    def _stop_condition_text(self, condition: ast.Expr) -> str:
        """Translate the early-exit condition for the eager region, where
        ``getCurrentPriority`` means the bin about to be processed."""
        saved = self._in_eager_region
        self._in_eager_region = False
        next_priority = (
            "((int64_t)next_bin_index * delta)"
            if self._dir_lower
            else "(-next_order * delta)"
        )
        try:
            return self._expr(condition).replace(
                "__CURRENT_PRIORITY__", next_priority
            )
        finally:
            self._in_eager_region = saved

    # ------------------------------------------------------------------
    # Types and expressions
    # ------------------------------------------------------------------
    def _cpp_type(self, declared: Type) -> str:
        if declared == INT:
            return "int64_t"
        if declared == BOOL:
            return "bool"
        if declared == FLOAT:
            return "double"
        if isinstance(declared, VertexSetType):
            return "std::vector<NodeID>"
        if isinstance(declared, VectorType):
            return "std::vector<int64_t>"
        raise CompileError(f"cannot map type {declared} to C++")

    def _expr(self, expression: ast.Expr) -> str:
        if isinstance(expression, ast.IntLiteral):
            return str(expression.value)
        if isinstance(expression, ast.FloatLiteral):
            return repr(expression.value)
        if isinstance(expression, ast.BoolLiteral):
            return "true" if expression.value else "false"
        if isinstance(expression, ast.StringLiteral):
            return f"\"{expression.value}\""
        if isinstance(expression, ast.Name):
            if expression.identifier == "INT_MAX":
                return "kIntMax"
            return expression.identifier
        if isinstance(expression, ast.BinaryOp):
            operator = {"and": "&&", "or": "||"}.get(
                expression.operator, expression.operator
            )
            return (
                f"({self._expr(expression.left)} {operator} "
                f"{self._expr(expression.right)})"
            )
        if isinstance(expression, ast.UnaryOp):
            operator = "!" if expression.operator == "not" else "-"
            return f"({operator}{self._expr(expression.operand)})"
        if isinstance(expression, ast.Index):
            base = expression.base
            if isinstance(base, ast.Name) and base.identifier == "argv":
                return f"argv[{self._expr(expression.index)}]"
            if isinstance(base, ast.MethodCall) and base.method == "priorityVector":
                return f"{self._pv_name}[{self._expr(expression.index)}]"
            return f"{self._expr(base)}[{self._expr(expression.index)}]"
        if isinstance(expression, ast.Call):
            return self._call(expression)
        if isinstance(expression, ast.MethodCall):
            return self._method_call(expression)
        if isinstance(expression, ast.New):
            raise CompileError(
                "priority queue construction must appear in an assignment"
            )
        raise CompileError(  # pragma: no cover
            f"cannot generate expression {type(expression).__name__}"
        )

    def _call(self, expression: ast.Call) -> str:
        name = expression.function
        arguments = ", ".join(self._expr(a) for a in expression.arguments)
        if name == "load":
            return f"WGraph::Load({arguments})"
        if name == "atoi":
            return f"atoll({arguments})"
        if name == "max":
            return f"std::max<int64_t>({arguments})"
        if name == "min":
            return f"std::min<int64_t>({arguments})"
        if name in {func.name for func in self.program.functions}:
            return f"{name}({arguments})"
        raise CompileError(f"call to unknown function {name!r}")

    def _method_call(self, expression: ast.MethodCall) -> str:
        receiver_node = expression.receiver
        method = expression.method
        arguments = [self._expr(a) for a in expression.arguments]
        is_queue = (
            isinstance(receiver_node, ast.Name)
            and receiver_node.identifier in self.plan.queue_names
        )
        if is_queue:
            queue = receiver_node.identifier
            if self.schedule.is_eager:
                if method in ("getCurrentPriority", "get_current_priority"):
                    if self._in_eager_region:
                        return "curr_priority"
                    return "__CURRENT_PRIORITY__"
                if method == "finished":
                    raise CompileError(
                        "pq.finished() outside the recognized loop is not "
                        "supported under the eager schedules"
                    )
            else:
                if method == "finished":
                    return f"{queue}->finished()"
                if method == "dequeueReadySet":
                    return f"{queue}->dequeueReadySet()"
                if method in ("getCurrentPriority", "get_current_priority"):
                    return f"{queue}->getCurrentPriority()"
                if method == "priorityVector":
                    return self._pv_name
            raise CompileError(
                f"cannot generate queue method {method!r} in this context"
            )
        receiver = self._expr(receiver_node)
        if method == "getOutDegrees":
            return f"{receiver}.OutDegrees()"
        if method in ("size", "getVertexSetSize"):
            return f"(int64_t){receiver}.size()"
        raise CompileError(f"cannot generate method call {method!r}")
