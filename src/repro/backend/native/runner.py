"""Load compiled kernels via ctypes and run them on numpy buffers.

The marshalling layer is zero-copy in both directions: the graph's CSR
arrays (already ``int64`` and C-contiguous in :class:`~repro.graph.csr.
CSRGraph`) are passed as borrowed pointers, and each output vector is a
caller-allocated numpy array whose pointer the kernel binds its ``OutVec``
views to — the kernel's priority/result writes land directly in the arrays
the :class:`~repro.backend.program.RunResult` hands back.

``execute_native`` raises :class:`NativeUnavailable` for every *recoverable*
condition — no toolchain, a program shape the native backend cannot lower,
a missing effect summary — and the dispatch layer in ``program.py`` turns
that into the ``N101`` fallback onto the vectorized Python kernels.  Real
failures (a kernel build error, a nonzero status from a freshly validated
kernel) raise loudly instead.

By design the native path returns **output vectors only**: RuntimeStats
(rounds, buffer traffic, simulated time) are defined by the interpreter's
bucket structures and are not emulated in native code, so ``result.stats``
is empty apart from the compile/load/execute phase timings recorded when
tracing is on.
"""

from __future__ import annotations

import ctypes
import time

import numpy as np

from ...errors import CompileError, GraphItError
from ...graph.csr import CSRGraph
from ...graph.io import load_edge_list
from ...lang.types import VectorType
from ...obs import metrics
from ...obs import span as trace_span
from ...obs import stat_span as trace_stat_span
from ...runtime.stats import RuntimeStats
from .abi import ABI_VERSION, generate_native_cpp
from .build import build_kernel
from .toolchain import discover_toolchain

__all__ = ["NativeUnavailable", "execute_native", "native_output_names"]

_EXECUTIONS = metrics.counter("native.executions")
_EXECUTE_US = metrics.histogram("native.execute_us")

_INT64_P = ctypes.POINTER(ctypes.c_int64)

# dlopen handles, keyed by library path (dlopen is refcounted, but caching
# keeps repeated queries from piling up handles).
_loaded_libraries: dict[str, ctypes.CDLL] = {}


class NativeUnavailable(GraphItError):
    """Native execution cannot proceed; callers fall back with ``N101``."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def native_output_names(plan) -> list[str]:
    """Global vector constants in declaration order — the ABI output order."""
    return [
        const.name
        for const in plan.program.constants
        if isinstance(const.declared_type, VectorType)
    ]


def _load_library(path: str) -> ctypes.CDLL:
    library = _loaded_libraries.get(path)
    if library is not None:
        return library
    with trace_span("native.load", "native", path=path):
        library = ctypes.CDLL(path)
        entry = library.repro_native_run
        entry.restype = ctypes.c_int64
        entry.argtypes = [
            _INT64_P,  # indptr
            _INT64_P,  # indices
            _INT64_P,  # weights
            ctypes.c_int64,  # num_nodes
            ctypes.c_int64,  # num_edges
            _INT64_P,  # args
            ctypes.c_int64,  # num_args
            ctypes.POINTER(_INT64_P),  # out_vectors
            ctypes.c_int64,  # num_out_vectors
            ctypes.c_int64,  # num_threads
        ]
        for probe in (
            "repro_native_abi_version",
            "repro_native_num_outputs",
            "repro_native_num_args_required",
        ):
            getattr(library, probe).restype = ctypes.c_int64
            getattr(library, probe).argtypes = []
    _loaded_libraries[path] = library
    return library


def _as_int64_pointer(array: np.ndarray):
    return array.ctypes.data_as(_INT64_P)


def _parse_int_args(args: list[str]) -> np.ndarray:
    """argv[2:] as int64, with C's ``atoll`` semantics for junk (-> 0)."""
    values = []
    for raw in list(args)[2:]:
        try:
            values.append(int(raw))
        except (TypeError, ValueError):
            values.append(0)
    return np.asarray(values, dtype=np.int64)


def generate_for_plan(plan) -> str:
    """Native C++ for ``plan``, mapping unsupported shapes to
    :class:`NativeUnavailable` (the recoverable category)."""
    with trace_span("native.codegen", "native"):
        try:
            return generate_native_cpp(plan)
        except CompileError as exc:
            raise NativeUnavailable(str(exc)) from exc


def execute_native(program, args, graph: CSRGraph | None = None):
    """Build (or cache-hit), load, and run the native kernel for ``program``.

    Mirrors :meth:`CompiledProgram.run`: ``args`` plays argv, ``graph``
    overrides loading ``args[1]`` from disk.  Returns a ``RunResult`` whose
    globals are the program's output vectors.
    """
    from ..program import RunResult
    from ..runtime_support import Context

    toolchain = discover_toolchain()
    if toolchain is None:
        raise NativeUnavailable(
            "no C++ toolchain found (tried $REPRO_NATIVE_CXX, g++, clang++, "
            "c++)"
        )
    source_text = generate_for_plan(program.plan)
    library_path = build_kernel(source_text, toolchain)
    library = _load_library(str(library_path))

    # The marshalling/ABI-validation phase between build and kernel entry:
    # spanned so ``repro profile --execution native`` attributes dispatch
    # cost instead of folding it invisibly into the gap between spans.
    with trace_span("native.dispatch", "native", kernel=str(library_path)):
        abi = int(library.repro_native_abi_version())
        if abi != ABI_VERSION:
            raise NativeUnavailable(
                f"kernel ABI version {abi} does not match runner {ABI_VERSION}"
            )

        if graph is None:
            if len(args) < 2 or not args[1] or args[1] == "-":
                raise GraphItError(
                    "native execution needs a graph: pass graph= or a path "
                    "in argv[1]"
                )
            graph = load_edge_list(args[1])

        indptr = np.ascontiguousarray(graph.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(graph.indices, dtype=np.int64)
        weights = np.ascontiguousarray(graph.weights, dtype=np.int64)
        int_args = _parse_int_args(args)

        required = int(library.repro_native_num_args_required())
        if int_args.size < required:
            raise GraphItError(
                f"program needs {required} integer argument(s) after the "
                f"graph path, got {int_args.size}"
            )

        names = native_output_names(program.plan)
        declared_outputs = int(library.repro_native_num_outputs())
        if declared_outputs != len(names):
            raise NativeUnavailable(
                f"kernel declares {declared_outputs} outputs, plan has "
                f"{len(names)}"
            )
        outputs = [
            np.zeros(graph.num_vertices, dtype=np.int64) for _ in names
        ]
        out_pointers = (_INT64_P * len(outputs))(
            *[_as_int64_pointer(buffer) for buffer in outputs]
        )

    stats = RuntimeStats()
    execute_start = time.perf_counter()
    with trace_stat_span(
        "native.execute",
        "native",
        stats,
        argv=list(args),
        kernel=str(library_path),
        num_threads=int(program.plan.schedule.num_threads),
    ):
        status = int(
            library.repro_native_run(
                _as_int64_pointer(indptr),
                _as_int64_pointer(indices),
                _as_int64_pointer(weights),
                ctypes.c_int64(graph.num_vertices),
                ctypes.c_int64(graph.num_edges),
                _as_int64_pointer(int_args) if int_args.size else None,
                ctypes.c_int64(int_args.size),
                out_pointers,
                ctypes.c_int64(len(outputs)),
                ctypes.c_int64(program.plan.schedule.num_threads),
            )
        )
    _EXECUTIONS.inc()
    _EXECUTE_US.observe(int((time.perf_counter() - execute_start) * 1e6))
    if status != 0:
        raise GraphItError(
            f"native kernel returned status {status} "
            f"(2 = output arity mismatch, 3 = missing arguments)"
        )

    program_globals: dict[str, object] = dict(zip(names, outputs))
    context = Context(
        argv=list(args),
        schedule=program.plan.schedule,
        graph=graph,
        extern_functions=None,
        vectorize=True,
    )
    context.stats = stats
    context.globals.update(program_globals)
    return RunResult(globals=program_globals, stats=stats, context=context)
