"""Compile native kernels into shared libraries, with a disk cache.

The cache key is the sha256 of everything that determines the binary: the
generated source (which already embeds the schedule and the effect-summary
JSON), the compiler path + version line, and the exact flag set.  A repeated
(program, schedule) pair therefore maps to the same ``.so`` and pays zero
compile cost — ``build_kernel`` returns without spawning any subprocess on
a cache hit, which the tests assert directly.

Layout (``$REPRO_KERNEL_CACHE`` or ``~/.cache/repro/kernels``)::

    <key>.cpp   the generated source (kept for debugging)
    <key>.so    the compiled kernel

Writes are atomic (temp file + ``os.replace``) so concurrent builds of the
same kernel race benignly.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import time
from pathlib import Path

from ...errors import CompileError
from ...obs import metrics
from ...obs import span as trace_span
from .toolchain import Toolchain

__all__ = ["kernel_cache_dir", "kernel_key", "build_kernel"]

_CACHE_HITS = metrics.counter("native.cache_hits")
_CACHE_MISSES = metrics.counter("native.cache_misses")
_BUILDS = metrics.counter("native.builds")
_COMPILE_US = metrics.histogram("native.compile_us")


def kernel_cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "kernels"


def kernel_key(source_text: str, toolchain: Toolchain) -> str:
    """The cache key: program hash × schedule hash × compiler version.

    The schedule is part of the generated source (it changes the emitted
    code shape and is stamped in the header comment), so hashing the source
    covers both program and schedule.
    """
    digest = hashlib.sha256()
    digest.update(source_text.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(toolchain.cxx.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(toolchain.version.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(" ".join(toolchain.flags).encode("utf-8"))
    return digest.hexdigest()[:32]


def build_kernel(source_text: str, toolchain: Toolchain) -> Path:
    """Return the path of the compiled kernel, building it on a cache miss."""
    cache = kernel_cache_dir()
    key = kernel_key(source_text, toolchain)
    library = cache / f"{key}.so"
    with trace_span("native.compile", "native") as sp:
        hit = library.exists()
        if sp is not None:
            sp["cache_hit"] = hit
            sp["key"] = key
        if hit:
            _CACHE_HITS.inc()
            return library
        _CACHE_MISSES.inc()
        _BUILDS.inc()
        build_start = time.perf_counter()
        cache.mkdir(parents=True, exist_ok=True)
        source_path = cache / f"{key}.cpp"
        # g++ infers the language from the extension, so the temp names keep
        # their real suffixes ahead of the uniquifier.
        tmp_source = cache / f"{key}.tmp.{os.getpid()}.cpp"
        tmp_library = cache / f"{key}.tmp.{os.getpid()}.so"
        tmp_source.write_text(source_text, encoding="utf-8")
        command = [
            toolchain.cxx,
            *toolchain.flags,
            "-o",
            str(tmp_library),
            str(tmp_source),
        ]
        try:
            compile_run = subprocess.run(
                command, capture_output=True, text=True, timeout=600
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            tmp_source.unlink(missing_ok=True)
            raise CompileError(f"native kernel build failed to run: {exc}")
        if compile_run.returncode != 0:
            tmp_source.unlink(missing_ok=True)
            tmp_library.unlink(missing_ok=True)
            raise CompileError(
                "native kernel build failed "
                f"({' '.join(command)}):\n{compile_run.stderr}"
            )
        os.replace(tmp_source, source_path)
        os.replace(tmp_library, library)
        _COMPILE_US.observe(int((time.perf_counter() - build_start) * 1e6))
    return library
