"""Native execution: build, cache, load, and run the C++ backend in-process.

The pipeline behind ``Schedule(execution="native")`` /
``repro run --execution native``:

1. :mod:`.abi` — emit a shared-library variant of the generated C++ with a
   stable ``extern "C"`` entry point over borrowed CSR arrays and
   caller-owned output buffers,
2. :mod:`.toolchain` — discover a C++ compiler (``$REPRO_NATIVE_CXX``,
   ``g++``, ``clang++``, ``c++``; OpenMP optional),
3. :mod:`.build` — compile into a content-addressed on-disk kernel cache
   (repeat queries spawn no compiler at all),
4. :mod:`.runner` — load via ctypes and execute zero-copy on numpy buffers.

Machines without any toolchain degrade gracefully: the dispatcher catches
:class:`NativeUnavailable` and re-runs on the vectorized Python kernels,
reporting the ``N101`` info diagnostic.
"""

from .abi import ABI_VERSION, generate_native_cpp
from .build import build_kernel, kernel_cache_dir, kernel_key
from .runner import NativeUnavailable, execute_native, native_output_names
from .toolchain import Toolchain, discover_toolchain, reset_toolchain_cache

__all__ = [
    "ABI_VERSION",
    "NativeUnavailable",
    "Toolchain",
    "build_kernel",
    "discover_toolchain",
    "execute_native",
    "generate_native_cpp",
    "kernel_cache_dir",
    "kernel_key",
    "native_output_names",
    "reset_toolchain_cache",
]
