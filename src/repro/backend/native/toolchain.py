"""C++ toolchain discovery for the native execution path.

Probes for a working compiler once per process and caches the result: the
``REPRO_NATIVE_CXX`` override when set (exclusively — pointing it at a
broken path is how tests simulate a compiler-less machine), otherwise
``g++``, ``clang++``, and ``c++`` from ``PATH``.  OpenMP support is detected by test-compiling a one-line
translation unit with ``-fopenmp``; without it the kernel still builds (the
pragmas degrade to serial execution) but the probe records the fact so the
flag set — and therefore the kernel-cache key — stays accurate.

A machine with no compiler at all yields ``None``, which the runner turns
into the graceful ``N101`` fallback to the vectorized Python kernels.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass

from ...obs import metrics
from ...obs import span as trace_span

__all__ = ["Toolchain", "discover_toolchain", "reset_toolchain_cache"]

_PROBES = metrics.counter("native.toolchain_probes")

_PROBE_CANDIDATES = ("g++", "clang++", "c++")

# One-shot probe memo: False = not probed yet (None is a valid probe result).
_cached: "Toolchain | None | bool" = False


@dataclass(frozen=True)
class Toolchain:
    """A discovered C++ compiler and the flags kernels are built with."""

    cxx: str
    version: str
    openmp: bool

    @property
    def flags(self) -> tuple[str, ...]:
        base = ("-O2", "-std=c++17", "-fPIC", "-shared")
        if self.openmp:
            base = base + ("-fopenmp",)
        return base

    def describe(self) -> str:
        omp = "openmp" if self.openmp else "no-openmp"
        return f"{self.cxx} {self.version} ({omp})"


def _compiler_version(cxx: str) -> str | None:
    try:
        probe = subprocess.run(
            [cxx, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if probe.returncode != 0 or not probe.stdout:
        return None
    return probe.stdout.splitlines()[0].strip()


def _supports_openmp(cxx: str) -> bool:
    with tempfile.TemporaryDirectory(prefix="repro-omp-") as tmp:
        source = os.path.join(tmp, "probe.cpp")
        with open(source, "w", encoding="utf-8") as handle:
            handle.write(
                "#include <omp.h>\n"
                "int main() { return omp_get_max_threads() > 0 ? 0 : 1; }\n"
            )
        try:
            build = subprocess.run(
                [cxx, "-fopenmp", "-o", os.path.join(tmp, "probe"), source],
                capture_output=True,
                timeout=60,
            )
        except (OSError, subprocess.TimeoutExpired):
            return False
        return build.returncode == 0


def discover_toolchain() -> Toolchain | None:
    """The best available C++ compiler, or ``None`` (probed once, cached)."""
    global _cached
    if _cached is not False:
        return _cached
    _PROBES.inc()
    with trace_span("native.toolchain", "native") as sp:
        override = os.environ.get("REPRO_NATIVE_CXX")
        candidates = (override,) if override else _PROBE_CANDIDATES
        found: Toolchain | None = None
        for candidate in candidates:
            if candidate is None:
                continue
            resolved = shutil.which(candidate)
            if resolved is None:
                continue
            version = _compiler_version(resolved)
            if version is None:
                continue
            found = Toolchain(
                cxx=resolved,
                version=version,
                openmp=_supports_openmp(resolved),
            )
            break
        if sp is not None:
            sp["toolchain"] = found.describe() if found else "none"
    _cached = found
    return found


def reset_toolchain_cache() -> None:
    """Forget the probe result (tests exercise the no-toolchain path)."""
    global _cached
    _cached = False
