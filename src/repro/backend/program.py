"""The public compile API: DSL source + schedule → runnable program.

    from repro import compile_program, Schedule

    program = compile_program(SSSP_SOURCE, Schedule(priority_update="lazy"))
    result = program.run(["prog", "-", "0"], graph=my_graph)
    result.globals["dist"]       # the program's distance vector
    result.stats                 # rounds / syncs / simulated time

``backend="cpp"`` generates C++ source instead (``program.source_text``).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import CompileError
from ..graph.csr import CSRGraph
from ..lang.parser import parse
from ..obs import metrics, note_run
from ..obs import span as trace_span
from ..obs import stat_span as trace_stat_span
from ..midend.schedule import Schedule, SchedulingProgram
from ..midend.transforms.lowering import CompilationPlan, plan_program
from ..runtime.stats import RuntimeStats
from .python_backend import generate_python
from .runtime_support import Context

__all__ = ["compile_program", "CompiledProgram", "RunResult"]

_RUNS_COMPLETED = metrics.counter("runs.completed")
_RUNS_FAILED = metrics.counter("runs.failed")


@dataclass
class RunResult:
    """Outcome of one execution of a compiled program."""

    globals: dict[str, object]
    stats: RuntimeStats
    context: Context

    def vector(self, name: str) -> np.ndarray:
        value = self.globals.get(name)
        if not isinstance(value, np.ndarray):
            raise CompileError(f"program global {name!r} is not a vector")
        return value


@dataclass
class CompiledProgram:
    """A compiled DSL program: generated source plus its compilation plan."""

    plan: CompilationPlan
    backend: str
    source_text: str
    _entry: Callable | None = field(default=None, repr=False)
    #: Why the last native-mode run fell back to Python (None = it didn't).
    native_fallback_reason: str | None = field(default=None, repr=False)

    @property
    def schedule(self) -> Schedule:
        return self.plan.schedule

    def run(
        self,
        args: list[str],
        graph: CSRGraph | None = None,
        extern_functions: dict[str, Callable] | None = None,
        vectorize: bool = True,
    ) -> RunResult:
        """Execute the program (Python backend only).

        ``args`` plays the role of ``argv`` (``args[0]`` is the program
        name).  When ``graph`` is given, ``load(...)`` returns it instead of
        reading a file.  ``vectorize=False`` forces the scalar reference
        interpreter even for UDFs the midend classified as vectorizable —
        the oracle the differential tests compare against.
        """
        if self.backend != "python":
            raise CompileError(
                f"the {self.backend} backend generates source only; "
                f"compile with backend='python' to run in-process"
            )
        note_run(
            argv=list(args),
            execution=self.plan.schedule.execution,
            priority_update=self.plan.schedule.priority_update,
            delta=self.plan.schedule.delta,
        )
        if self.plan.schedule.execution == "native":
            from .native import NativeUnavailable, execute_native

            try:
                # The span makes the native path visible to ``repro
                # profile``: it is the top-level phase the compile/cache/
                # dispatch/execute spans nest under, like the Python path's
                # program.run stat_span below.
                with trace_span(
                    "program.run", "runtime", argv=list(args), execution="native"
                ):
                    result = execute_native(self, args, graph=graph)
            except NativeUnavailable as exc:
                # The documented degradation ladder: no toolchain (or an
                # unlowerable program shape) falls back to the vectorized
                # Python kernels.  The Python engine treats the "native"
                # mode as serial, so the fallback is the PR-2 serial
                # vectorized path.
                self.native_fallback_reason = exc.reason
                print(
                    "N101: native execution unavailable; falling back to "
                    f"vectorized Python: {exc.reason}",
                    file=sys.stderr,
                )
            except Exception:
                _RUNS_FAILED.inc()
                raise
            else:
                _RUNS_COMPLETED.inc()
                return result
        context = Context(
            argv=args,
            schedule=self.plan.schedule,
            graph=graph,
            extern_functions=extern_functions,
            vectorize=vectorize,
        )
        try:
            with trace_stat_span(
                "program.run",
                "runtime",
                context.stats,
                argv=list(args),
                execution=self.plan.schedule.execution,
                vectorize=bool(vectorize),
            ):
                program_globals = self._entry(context)
        except Exception:
            _RUNS_FAILED.inc()
            raise
        _RUNS_COMPLETED.inc()
        context.globals.update(program_globals)
        return RunResult(
            globals=program_globals, stats=context.stats, context=context
        )

    def write(self, path: str) -> None:
        """Write the generated source to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.source_text)


def compile_program(
    source: str,
    schedule: Schedule | SchedulingProgram | None = None,
    backend: str = "python",
) -> CompiledProgram:
    """Compile DSL ``source`` under ``schedule`` with the chosen backend.

    ``schedule`` may be a :class:`Schedule`, a :class:`SchedulingProgram`
    (per-label schedules), or ``None`` — in which case the program's inline
    ``schedule:`` block applies, falling back to the default schedule.
    """
    with trace_span("compile", "compiler", backend=backend):
        program_ast = parse(source)
        with trace_span("midend", "compiler"):
            plan = plan_program(program_ast, schedule)
        if backend == "python":
            with trace_span("codegen.python", "compiler") as sp:
                text = generate_python(plan)
                if sp is not None:
                    sp["lines"] = text.count("\n") + 1
            with trace_span("load_module", "compiler"):
                namespace: dict[str, object] = {}
                code = compile(text, filename="<generated>", mode="exec")
                # noqa: S102 - executing our own generated code
                exec(code, namespace)
                entry = namespace["program"]
            return CompiledProgram(
                plan=plan, backend=backend, source_text=text, _entry=entry
            )
        if backend == "cpp":
            from .cpp_backend import generate_cpp

            with trace_span("codegen.cpp", "compiler") as sp:
                text = generate_cpp(plan)
                if sp is not None:
                    sp["lines"] = text.count("\n") + 1
            return CompiledProgram(plan=plan, backend=backend, source_text=text)
    raise CompileError(f"unknown backend {backend!r}; expected 'python' or 'cpp'")
