"""Standard extern-function bindings for the DSL programs.

The paper notes that A* search and SetCover "need to use long extern
functions" (Section 6.2); these are this reproduction's equivalents.  Each
binding has the extern calling convention ``f(ctx, *args)`` where ``ctx`` is
the generated program's :class:`~repro.backend.runtime_support.Context`:

- ``computeHeuristic`` — fills the A* program's ``h`` vector with the
  floored straight-line distance to the target (admissible on road graphs).
- ``initRatios`` / ``processBucket`` — SetCover's setup and per-bucket
  conflict-resolution round, reusing the library implementation's pieces.

``astar_externs()`` / ``setcover_externs()`` return ready-to-pass dicts.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.astar import euclidean_heuristic
from ..algorithms.setcover import (
    _closed_neighborhood_uncovered,
    _log_bucket,
    _resolve_conflicts,
)
from ..errors import GraphItError

__all__ = ["astar_externs", "setcover_externs", "collect_setcover_result"]


def astar_externs() -> dict:
    """Externs for the A* DSL program (``computeHeuristic``)."""

    def compute_heuristic(ctx, target):
        graph = ctx.globals.get("edges")
        if graph is None or not graph.has_coordinates:
            raise GraphItError(
                "computeHeuristic requires the loaded graph to carry "
                "vertex coordinates"
            )
        ctx.globals["h"][:] = euclidean_heuristic(graph, int(target))

    return {"computeHeuristic": compute_heuristic}


def setcover_externs(seed: int = 0, retention: float = 0.5) -> dict:
    """Externs for the SetCover DSL program (``initRatios``,
    ``processBucket``)."""

    def init_ratios(ctx):
        graph = ctx.globals["edges"]
        ctx.globals["ratio"][:] = _log_bucket(
            graph.out_degrees().astype(np.int64) + 1
        )
        ctx.setcover_state = {
            "covered": np.zeros(graph.num_vertices, dtype=bool),
            "cover": [],
            "rng": np.random.default_rng(seed),
        }

    def process_bucket(ctx, bucket):
        graph = ctx.globals["edges"]
        queue = ctx.queues[0]
        state = ctx.setcover_state
        covered = state["covered"]
        bucket = np.asarray(bucket, dtype=np.int64)
        if bucket.size == 0:
            return
        bucket_value = queue.get_current_priority()
        counts, set_index, elements = _closed_neighborhood_uncovered(
            graph, bucket, covered
        )
        ctx.stats.relaxations += int(elements.size)
        exhausted = bucket[counts == 0]
        if exhausted.size:
            queue.remove_batch(exhausted)
        log_buckets = _log_bucket(counts)
        downgraded_mask = (counts > 0) & (log_buckets < bucket_value)
        downgraded = bucket[downgraded_mask]
        if downgraded.size:
            ctx.globals["ratio"][downgraded] = log_buckets[downgraded_mask]
            queue.buffer_changed_batch(downgraded)
        active_mask = (counts > 0) & (log_buckets >= bucket_value)
        if active_mask.any():
            winners = _resolve_conflicts(
                bucket,
                active_mask,
                counts,
                set_index,
                elements,
                retention,
                state["rng"],
                ctx.stats,
                graph.num_vertices,
            )
            chosen = bucket[winners]
            if chosen.size:
                state["cover"].append(chosen)
                covered[elements[winners[set_index]]] = True
                queue.remove_batch(chosen)
            losers = bucket[active_mask & ~winners]
            if losers.size:
                queue.requeue_batch(losers)

    return {"initRatios": init_ratios, "processBucket": process_bucket}


def collect_setcover_result(run_result) -> tuple[np.ndarray, np.ndarray]:
    """Extract ``(cover, covered)`` from a SetCover DSL run."""
    state = getattr(run_result.context, "setcover_state", None)
    if state is None:
        raise GraphItError("the program did not run the SetCover externs")
    cover = (
        np.sort(np.concatenate(state["cover"]))
        if state["cover"]
        else np.empty(0, dtype=np.int64)
    )
    return cover, state["covered"]
