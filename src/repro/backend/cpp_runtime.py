"""The C++ runtime embedded into every generated translation unit.

The generated program is a single self-contained ``.cpp`` file: this text is
prepended verbatim, playing the role of the runtime library the paper's
compiler links against ("We built runtime libraries to manage the buffer and
update buckets", Section 5.1).  It provides:

- ``WGraph``: CSR graph with an edge-list text loader (the format written by
  :func:`repro.graph.io.save_edge_list`),
- the atomic vocabulary of Figure 9 (``atomicWriteMin``, clamped
  fetch-add, byte CAS for dedup flags),
- ``LazyPriorityQueue``: the lazy bucket structure with a materialized
  window, overflow bucket, dedup-flagged update buffer, and the
  priority-vector + Δ interface (Section 5.1's redesign of Julienne's
  lambda-based interface).

The eager structure needs no runtime class: as in Figure 9(c) the compiler
emits its thread-local ``local_bins`` inline in the generated main.

Compiles with ``g++ -O2 -std=c++17 -fopenmp`` (OpenMP optional; the pragmas
degrade to serial execution without it).
"""

CPP_RUNTIME = r"""
// ---- embedded repro runtime (generated; do not edit) -------------------
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>
#ifdef _OPENMP
#include <omp.h>
#endif

using NodeID = int64_t;
using WeightT = int64_t;
static const int64_t kIntMax = std::numeric_limits<int64_t>::max();
static const size_t kMaxBin = std::numeric_limits<size_t>::max() / 2;

struct WNode {
  NodeID v;
  WeightT weight;
};

struct WGraph {
  int64_t num_nodes = 0;
  int64_t num_edges_ = 0;
  std::vector<int64_t> indptr;
  std::vector<NodeID> indices;
  std::vector<WeightT> weights;

  int64_t num_edges() const { return num_edges_; }
  int64_t out_degree(NodeID v) const { return indptr[v + 1] - indptr[v]; }

  struct Neighborhood {
    const WGraph *g;
    int64_t begin_, end_;
    struct Iter {
      const WGraph *g;
      int64_t i;
      WNode operator*() const { return WNode{g->indices[i], g->weights[i]}; }
      Iter &operator++() { ++i; return *this; }
      bool operator!=(const Iter &o) const { return i != o.i; }
    };
    Iter begin() const { return Iter{g, begin_}; }
    Iter end() const { return Iter{g, end_}; }
  };

  Neighborhood out_neigh(NodeID v) const {
    return Neighborhood{this, indptr[v], indptr[v + 1]};
  }

  // Loads "src dst [weight]" lines; '#'/'%' open comments.
  static WGraph Load(const std::string &path) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open graph file: " << path << std::endl;
      std::exit(1);
    }
    std::vector<NodeID> sources, dests;
    std::vector<WeightT> edge_weights;
    NodeID max_id = -1;
    std::string line;
    NodeID declared_nodes = -1;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#' || line[0] == '%') {
        // Honour the "# vertices=N ..." header written by save_edge_list so
        // trailing isolated vertices are preserved.
        size_t pos = line.find("vertices=");
        if (pos != std::string::npos)
          declared_nodes = atoll(line.c_str() + pos + 9);
        continue;
      }
      std::istringstream row(line);
      NodeID s, d;
      WeightT w = 1;
      if (!(row >> s >> d)) continue;
      row >> w;
      sources.push_back(s);
      dests.push_back(d);
      edge_weights.push_back(w);
      max_id = std::max(max_id, std::max(s, d));
    }
    WGraph g;
    g.num_nodes = std::max(max_id + 1, declared_nodes);
    g.num_edges_ = (int64_t)sources.size();
    std::vector<int64_t> degree(g.num_nodes, 0);
    for (NodeID s : sources) degree[s]++;
    g.indptr.assign(g.num_nodes + 1, 0);
    for (int64_t v = 0; v < g.num_nodes; v++)
      g.indptr[v + 1] = g.indptr[v] + degree[v];
    g.indices.resize(g.num_edges_);
    g.weights.resize(g.num_edges_);
    std::vector<int64_t> cursor(g.indptr.begin(), g.indptr.end() - 1);
    for (size_t e = 0; e < sources.size(); e++) {
      int64_t slot = cursor[sources[e]]++;
      g.indices[slot] = dests[e];
      g.weights[slot] = edge_weights[e];
    }
    return g;
  }

  std::vector<int64_t> OutDegrees() const {
    std::vector<int64_t> result(num_nodes);
    for (int64_t v = 0; v < num_nodes; v++) result[v] = out_degree(v);
    return result;
  }
};

// ---- atomics (Figure 9's vocabulary) ------------------------------------
inline bool atomicWriteMin(int64_t *addr, int64_t value) {
  int64_t old = __atomic_load_n(addr, __ATOMIC_RELAXED);
  while (value < old) {
    if (__atomic_compare_exchange_n(addr, &old, value, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED))
      return true;
  }
  return false;
}

inline bool atomicWriteMax(int64_t *addr, int64_t value) {
  int64_t old = __atomic_load_n(addr, __ATOMIC_RELAXED);
  while (value > old) {
    if (__atomic_compare_exchange_n(addr, &old, value, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED))
      return true;
  }
  return false;
}

// Seeded overloads: the race analysis preserves the UDF's own read of the
// old priority (the 3-argument updatePriorityMin form), so the first CAS
// attempt starts from that value instead of issuing an extra atomic load.
inline bool atomicWriteMin(int64_t *addr, int64_t value, int64_t seed) {
  int64_t old = seed;
  while (value < old) {
    if (__atomic_compare_exchange_n(addr, &old, value, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED))
      return true;
  }
  return false;
}

inline bool atomicWriteMax(int64_t *addr, int64_t value, int64_t seed) {
  int64_t old = seed;
  while (value > old) {
    if (__atomic_compare_exchange_n(addr, &old, value, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED))
      return true;
  }
  return false;
}

// Clamped fetch-add: priority += diff, not past `clamp`; returns the new
// value, or kIntMax when nothing changed.
inline int64_t atomicAddClamped(int64_t *addr, int64_t diff, int64_t clamp) {
  int64_t old = __atomic_load_n(addr, __ATOMIC_RELAXED);
  while (true) {
    // Already at or past the clamp: the vertex is finalized, do nothing
    // (mirrors the is-finalized check in the update operators).
    if (diff < 0 && old <= clamp) return kIntMax;
    if (diff > 0 && old >= clamp) return kIntMax;
    int64_t desired = old + diff;
    if (diff < 0) desired = std::max(desired, clamp);
    else desired = std::min(desired, clamp);
    if (desired == old) return kIntMax;
    if (__atomic_compare_exchange_n(addr, &old, desired, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED))
      return desired;
  }
}

// Serial clamped add for sites the race analysis proved thread-owned: same
// semantics as atomicAddClamped without the compare-exchange loop.
inline int64_t addClamped(int64_t *addr, int64_t diff, int64_t clamp) {
  int64_t old = *addr;
  if (diff < 0 && old <= clamp) return kIntMax;
  if (diff > 0 && old >= clamp) return kIntMax;
  int64_t desired = old + diff;
  if (diff < 0) desired = std::max(desired, clamp);
  else desired = std::min(desired, clamp);
  if (desired == old) return kIntMax;
  *addr = desired;
  return desired;
}

inline bool CASByte(uint8_t *addr, uint8_t expected, uint8_t desired) {
  return __atomic_compare_exchange_n(addr, &expected, desired, false,
                                     __ATOMIC_RELAXED, __ATOMIC_RELAXED);
}

inline void atomicMinSize(size_t *addr, size_t value) {
  size_t old = __atomic_load_n(addr, __ATOMIC_RELAXED);
  while (value < old) {
    if (__atomic_compare_exchange_n(addr, &old, value, false,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED))
      return;
  }
}

// ---- lazy bucket structure (Section 3.1 / Figure 9(a)) ------------------
struct LazyPriorityQueue {
  int64_t *priorities;
  int64_t num_verts;
  int64_t delta;
  int64_t cur_order = -1;
  int64_t base = 0;
  int num_open;
  std::vector<std::vector<NodeID>> buckets;
  std::vector<NodeID> overflow;
  std::vector<NodeID> pending;
  size_t pending_tail = 0;
  std::vector<uint8_t> pending_flags;
  std::vector<int64_t> processed_value;
  bool primed = false;

  LazyPriorityQueue(int64_t *pv, int64_t n, int64_t delta_, NodeID start,
                    int num_open_ = 128)
      : priorities(pv), num_verts(n), delta(delta_), num_open(num_open_) {
    buckets.assign(num_open, {});
    pending.assign(n, 0);
    pending_flags.assign(n, 0);
    processed_value.assign(n, std::numeric_limits<int64_t>::min());
    if (start >= 0) {
      rebase(orderOf(priorities[start]));
      insert(start, orderOf(priorities[start]));
    } else {
      // Insert every vertex with a non-null priority (k-core pattern).
      int64_t min_order = kIntMax;
      for (NodeID v = 0; v < n; v++)
        if (priorities[v] != kIntMax) min_order = std::min(min_order, orderOf(priorities[v]));
      if (min_order != kIntMax) {
        rebase(min_order);
        for (NodeID v = 0; v < n; v++)
          if (priorities[v] != kIntMax) insert(v, orderOf(priorities[v]));
      }
    }
  }

  int64_t orderOf(int64_t value) const { return value / delta; }

  void rebase(int64_t new_base) {
    base = new_base;
    for (auto &b : buckets) b.clear();
  }

  void insert(NodeID v, int64_t order) {
    if (order < base || order >= base + num_open) overflow.push_back(v);
    else buckets[order - base].push_back(v);
  }

  // Thread-safe buffered bucket update with a dedup-flag CAS (Figure 9(a)).
  void bufferVertex(NodeID v) {
    if (CASByte(&pending_flags[v], 0, 1)) {
      size_t slot = __atomic_fetch_add(&pending_tail, 1, __ATOMIC_RELAXED);
      pending[slot] = v;
    }
  }

  void flushPending() {
    for (size_t i = 0; i < pending_tail; i++) {
      NodeID v = pending[i];
      pending_flags[v] = 0;
      int64_t p = priorities[v];
      if (p == kIntMax) continue;
      int64_t order = orderOf(p);
      if (cur_order >= 0) order = std::max(order, cur_order);
      insert(v, order);
    }
    pending_tail = 0;
  }

  bool finished() {
    if (pending_tail > 0 || !overflow.empty()) return false;
    for (auto &b : buckets)
      if (!b.empty()) return false;
    return true;
  }

  int64_t getCurrentPriority() const { return cur_order * delta; }

  // Reduce the buffer, bulk-update, pop the next live bucket.
  std::vector<NodeID> dequeueReadySet() {
    flushPending();
    while (true) {
      int64_t order = nextNonEmpty();
      if (order < 0) {
        if (overflow.empty()) return {};
        rebucketOverflow();
        continue;
      }
      cur_order = order;
      std::vector<NodeID> members;
      members.swap(buckets[order - base]);
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()), members.end());
      std::vector<NodeID> live;
      for (NodeID v : members) {
        int64_t p = priorities[v];
        if (p == kIntMax) continue;
        if (orderOf(p) <= order && p != processed_value[v]) {
          processed_value[v] = p;
          live.push_back(v);
        }
      }
      if (!live.empty()) return live;
    }
  }

  int64_t nextNonEmpty() const {
    int64_t start = std::max(base, cur_order);
    for (int64_t order = start; order < base + num_open; order++)
      if (!buckets[order - base].empty()) return order;
    return -1;
  }

  void rebucketOverflow() {
    std::vector<NodeID> stale;
    stale.swap(overflow);
    int64_t min_order = kIntMax;
    for (NodeID v : stale) {
      int64_t p = priorities[v];
      if (p == kIntMax) continue;
      int64_t order = orderOf(p);
      if (cur_order >= 0 && order < cur_order) continue;
      min_order = std::min(min_order, order);
    }
    if (min_order == kIntMax) return;
    rebase(min_order);
    for (NodeID v : stale) {
      int64_t p = priorities[v];
      if (p == kIntMax) continue;
      int64_t order = orderOf(p);
      if (cur_order >= 0 && order < cur_order) continue;
      insert(v, order);
    }
  }
};

inline WGraph TransposeGraph(const WGraph &g) {
  WGraph t;
  t.num_nodes = g.num_nodes;
  t.num_edges_ = g.num_edges_;
  std::vector<int64_t> degree(g.num_nodes, 0);
  for (NodeID d : g.indices) degree[d]++;
  t.indptr.assign(g.num_nodes + 1, 0);
  for (int64_t v = 0; v < g.num_nodes; v++)
    t.indptr[v + 1] = t.indptr[v] + degree[v];
  t.indices.resize(g.num_edges_);
  t.weights.resize(g.num_edges_);
  std::vector<int64_t> cursor(t.indptr.begin(), t.indptr.end() - 1);
  for (NodeID s = 0; s < g.num_nodes; s++) {
    for (int64_t e = g.indptr[s]; e < g.indptr[s + 1]; e++) {
      int64_t slot = cursor[g.indices[e]]++;
      t.indices[slot] = s;
      t.weights[slot] = g.weights[e];
    }
  }
  return t;
}

static void dumpVector(std::ostream &out, const char *name,
                       const std::vector<int64_t> &values) {
  out << name;
  for (int64_t value : values) out << ' ' << value;
  out << '\n';
}
// ---- end embedded runtime ------------------------------------------------
"""
