"""Backends: Python code generation (runnable) and C++ code generation."""

from .program import CompiledProgram, RunResult, compile_program
from .python_backend import generate_python
from .runtime_support import Context

__all__ = [
    "compile_program",
    "CompiledProgram",
    "RunResult",
    "generate_python",
    "Context",
]
