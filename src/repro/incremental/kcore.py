"""Incremental k-core: capped h-index local fixpoint (Lü et al. 2016).

Coreness admits a local characterization: it is the unique vector reached
by iterating the capped h-index operator

    T(s)[x] = min(s[x], H_x(s)),   H_x(s) = max k with #{w in N(x): s[w] >= k} >= k

from any vector sandwiched between the true coreness and the degree
vector (both are fixpoint barriers: ``T`` is monotone, iterating from
degrees converges to coreness, and coreness itself is a fixpoint).  So an
incremental step only needs a valid *upper bound* ``s`` plus a worklist of
potentially-violating vertices:

- **Deletion** ``(u, v)``: coreness only decreases, so the old coreness
  is a valid upper bound; only the endpoints can violate initially (no
  other vertex's neighborhood changed), and decreases propagate through
  the worklist.
- **Insertion** ``(u, v)``: with ``K = min(core(u), core(v))``, a single
  insertion raises coreness by at most 1, and only for vertices with
  coreness exactly ``K`` reachable from an endpoint via vertices with
  coreness ``>= K`` (a superset of Sarıyüce's purecore — deliberately
  conservative).  Those candidates get ``s = min(core + 1, degree)``.
- **Weight update**: coreness is degree-based; nothing to do.

Mutations are processed one at a time (each step's coreness is exact for
the graph at that point), applied symmetrically to preserve the
undirected invariant k-core requires.  Correctness is bit-exact against
re-peeling because coreness is unique per graph.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.mutations import Mutation, apply_mutations
from ..midend.schedule import Schedule
from ..obs import metrics, span
from ..runtime.stats import RuntimeStats

__all__ = ["initial_coreness", "apply_kcore_batch"]


def initial_coreness(graph: CSRGraph, schedule: Schedule):
    """The from-scratch peeling run establishing the session state."""
    from ..algorithms.kcore import kcore

    result = kcore(graph, schedule)
    return np.asarray(result.coreness, dtype=np.int64), result.stats


def _h_index(values: np.ndarray) -> int:
    """Largest ``k`` with at least ``k`` entries ``>= k`` (multiset H-index)."""
    if values.size == 0:
        return 0
    descending = np.sort(values)[::-1]
    ks = np.arange(1, descending.size + 1, dtype=np.int64)
    # descending[i] - (i+1) is non-increasing, so the comparison mask is a
    # prefix of Trues and its count is the H-index.
    return int(np.count_nonzero(descending >= ks))


def _insertion_candidates(
    graph: CSRGraph, core: np.ndarray, u: int, v: int
) -> list[int]:
    """Vertices whose coreness may rise after inserting ``(u, v)``.

    BFS from both endpoints over vertices with coreness ``>= K``,
    collecting those with coreness exactly ``K`` (the only ones a single
    insertion can promote).
    """
    K = min(int(core[u]), int(core[v]))
    visited: set[int] = set()
    stack = [u, v]
    bumped: list[int] = []
    while stack:
        x = stack.pop()
        if x in visited:
            continue
        visited.add(x)
        if core[x] == K:
            bumped.append(x)
        for w in graph.out_neighbors(x):
            w = int(w)
            if w not in visited and core[w] >= K:
                stack.append(w)
    return bumped


def _local_fixpoint(
    graph: CSRGraph, s: np.ndarray, worklist: set[int], touched: np.ndarray
) -> None:
    """Drive ``s`` down to the greatest fixpoint of the capped h-operator.

    ``s`` must be a pointwise upper bound on the true coreness; every
    initially-violating vertex must be in ``worklist``.  When a vertex's
    value drops, its neighbors are re-examined — chaotic iteration of a
    monotone operator, terminating because values only decrease.
    """
    queue = deque(sorted(worklist))
    pending = set(queue)
    while queue:
        x = queue.popleft()
        pending.discard(x)
        touched[x] = True
        neighbors = graph.out_neighbors(x)
        h = _h_index(s[neighbors])
        new_value = min(int(s[x]), h)
        if new_value < s[x]:
            s[x] = new_value
            for w in np.unique(neighbors):
                w = int(w)
                if w not in pending:
                    pending.add(w)
                    queue.append(w)


def apply_kcore_batch(session, mutations: list[Mutation]):
    """Apply a batch symmetrically and maintain coreness incrementally."""
    from .engine import IncrementalResult

    graph = session.graph
    core = session._values
    n = graph.num_vertices
    touched = np.zeros(n, dtype=bool)
    seeds_total = 0
    invalidated_total = 0

    with span("incremental.kcore", "incremental", mutations=len(mutations)):
        for mutation in mutations:
            apply_mutations(graph, [mutation], symmetric=True)
            if mutation.kind == "update":
                continue  # coreness is degree-based; weights are irrelevant
            u, v = mutation.src, mutation.dst
            s = core.copy()
            degrees = graph.out_degrees()
            if mutation.kind == "add":
                bumped = _insertion_candidates(graph, core, u, v)
                if bumped:
                    bumped_arr = np.asarray(bumped, dtype=np.int64)
                    s[bumped_arr] = np.minimum(
                        core[bumped_arr] + 1, degrees[bumped_arr]
                    )
                worklist = set(bumped) | {u, v}
                invalidated_total += len(bumped)
            else:
                # No pre-capping: H_x <= deg(x) already, so examining the
                # endpoints applies the degree cap *with* propagation (a
                # silent pre-cap would be a decrease the fixpoint never
                # pushes to neighbors).  For x outside {u, v} nothing in
                # N(x) or s changed, so initial violations are endpoints.
                worklist = {u, v}
                invalidated_total += len({u, v})
            seeds_total += len(worklist)
            _local_fixpoint(graph, s, worklist, touched)
            metrics.counter("incremental.kcore_fixpoints").inc()
            touched |= s != core
            core[:] = s

    metrics.counter("incremental.batches").inc()
    metrics.histogram("incremental.seeds").observe(seeds_total)
    metrics.histogram("incremental.invalidated").observe(invalidated_total)
    stats = RuntimeStats(num_threads=session.schedule.num_threads)
    stats.execution = session.schedule.execution
    stats.incremental_runs += 1
    stats.incremental_mutations += len(mutations)
    stats.incremental_seeds += seeds_total
    stats.incremental_invalidated += invalidated_total
    stats.incremental_vertices_touched += int(np.count_nonzero(touched))
    return IncrementalResult(
        values=core.copy(),
        stats=stats,
        incremental=True,
        seeds=seeds_total,
        invalidated=invalidated_total,
        vertices_touched=int(np.count_nonzero(touched)),
    )
