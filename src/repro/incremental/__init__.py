"""Incremental recomputation: resume ordered algorithms after mutations.

After a converged run, a mutation batch is classified into *improving*
changes (seed the queue from the affected endpoints at their current
priorities) and *worsening* changes (invalidate the affected dependence
cone and re-relax it from its boundary), so only the affected priority
region is recomputed.  The sequential full re-run is the bit-exact oracle
for every output vector.
"""

from .engine import (
    INCREMENTAL_ALGORITHMS,
    IncrementalResult,
    IncrementalSession,
)

__all__ = [
    "INCREMENTAL_ALGORITHMS",
    "IncrementalResult",
    "IncrementalSession",
]
