"""The incremental engine: mutation classification, cone invalidation,
frontier seeding, and ordered-engine resume.

The approach follows *Fast Iterative Graph Computing with Updated Neighbor
States* (arXiv 2407.14544) adapted to the paper's ordered abstraction: the
converged priority vector of a min/max program is a fixpoint of its edge
relaxation, so after a mutation batch only vertices whose values may have
worsened need re-deriving, and re-relaxation only needs to start from
vertices whose out-edges may be *tense* (improvable).

Per batch, for a min program (max is mirrored):

1. **Classify** each mutation against the converged values.  Edge inserts
   and weight moves *toward* the optimum are improving — they can only
   tighten values downstream, so seeding the mutated edge's source at its
   current priority is sufficient.  Deletes and weight moves *away* are
   worsening, but only when the old edge was **tight**
   (``vals[src] + w_old == vals[dst]``): a slack edge supported nothing.
2. **Invalidate** the dependence cone of every worsened tight head: the
   transitive tight-edge descendants on the pre-mutation graph.  This
   over-approximates the truly affected set on purpose — mutual-support
   cycles (e.g. zero-weight cycles) make exact support counting unsound,
   while over-invalidation merely recomputes a few extra vertices.  The
   source (whose value is pinned, not edge-derived) is never invalidated.
3. **Recompute** each cone member from its boundary: best over in-edges of
   the *new* graph whose tail is outside the cone, identity otherwise.
   Values inside the cone recover through relaxation, not recompute.
4. **Resume** the scheduled ordered engine (lazy / eager / relaxed — the
   same executors as a from-scratch run) with the queue seeded at current
   priorities from the non-identity cone members plus the improving
   endpoints.  Monotone convergence to the unique fixpoint makes the
   result bit-exact against a full re-run.

k-core is degree-based rather than path-based and uses the capped h-index
local fixpoint in :mod:`repro.incremental.kcore` instead of steps 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.common import (
    UNREACHABLE,
    resume_delta_stepping,
)
from ..algorithms.widest_path import (
    DEFAULT_WIDEST_SCHEDULE,
    SOURCE_WIDTH,
    resume_widest_path,
)
from ..buckets.interface import NULL_PRIORITY_HIGHER
from ..errors import GraphError, SchedulingError
from ..graph.csr import CSRGraph
from ..graph.mutations import Mutation
from ..midend.schedule import Schedule
from ..obs import metrics, span
from ..runtime.stats import RuntimeStats

__all__ = ["INCREMENTAL_ALGORITHMS", "IncrementalResult", "IncrementalSession"]

INCREMENTAL_ALGORITHMS = ("sssp", "wbfs", "widest_path", "kcore")

_MIN_KIND = "min"
_MAX_KIND = "max"

_BATCHES = metrics.counter("incremental.batches")
_SEEDS = metrics.histogram("incremental.seeds")
_INVALIDATED = metrics.histogram("incremental.invalidated")


@dataclass
class IncrementalResult:
    """One converged state: output vector plus the resume profile."""

    values: np.ndarray
    stats: RuntimeStats
    incremental: bool
    seeds: int = 0
    invalidated: int = 0
    vertices_touched: int = 0


class IncrementalSession:
    """A converged run over a mutable graph, resumable after mutations.

    Parameters
    ----------
    graph:
        The mutable CSR graph.  The session applies mutation batches to it
        (symmetrically for k-core) and owns the converged value vector.
    algorithm:
        One of :data:`INCREMENTAL_ALGORITHMS`.
    source:
        Source vertex for the path algorithms (ignored by k-core).
    schedule:
        Bucketing schedule; the resume uses the same strategy (lazy /
        eager / relaxed via ``relaxed_ordering``) as the initial run.
    """

    def __init__(
        self,
        graph: CSRGraph,
        algorithm: str,
        source: int = 0,
        schedule: Schedule | None = None,
        relaxed_ordering: bool = False,
    ):
        if algorithm not in INCREMENTAL_ALGORITHMS:
            raise GraphError(
                f"unknown incremental algorithm {algorithm!r}; expected one "
                f"of {INCREMENTAL_ALGORITHMS}"
            )
        self.graph = graph
        self.algorithm = algorithm
        self.source = int(source)
        self.relaxed_ordering = bool(relaxed_ordering)
        if schedule is None:
            if algorithm == "kcore":
                from ..algorithms.kcore import DEFAULT_KCORE_SCHEDULE

                schedule = DEFAULT_KCORE_SCHEDULE
            elif algorithm == "widest_path":
                schedule = DEFAULT_WIDEST_SCHEDULE
            else:
                from ..algorithms.sssp import DEFAULT_SSSP_SCHEDULE
                from ..algorithms.wbfs import DEFAULT_WBFS_SCHEDULE

                schedule = (
                    DEFAULT_WBFS_SCHEDULE if algorithm == "wbfs" else DEFAULT_SSSP_SCHEDULE
                )
        if algorithm == "wbfs" and schedule.delta != 1:
            raise SchedulingError("wBFS fixes delta to 1 (it is its defining property)")
        if schedule.execution == "native":
            raise SchedulingError(
                "incremental resume seeds the interpreted engine's queues; "
                "native execution cannot resume (use execution='serial' or "
                "'parallel')"
            )
        self.schedule = schedule
        if algorithm == "kcore":
            self._kind = None
        elif algorithm == "widest_path":
            self._kind = _MAX_KIND
        else:
            self._kind = _MIN_KIND
        # Internal (un-normalized) converged value vector; ``None`` until
        # the first run().
        self._values: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Value semantics per kind
    # ------------------------------------------------------------------
    @property
    def _identity(self) -> int:
        return int(UNREACHABLE) if self._kind == _MIN_KIND else int(NULL_PRIORITY_HIGHER)

    def _edge_value(self, source_value: int, weight: int) -> int:
        """The value an edge offers its head given its tail's value."""
        if self._kind == _MIN_KIND:
            return source_value + weight
        return min(source_value, weight)

    def _is_improving(self, new_weight: int, old_effective: int) -> bool:
        """Does moving the edge weight to ``new_weight`` only help heads?"""
        if self._kind == _MIN_KIND:
            return new_weight <= old_effective
        return new_weight >= old_effective

    def _effective_weight(self, src: int, dst: int) -> int | None:
        """The best weight over all live parallel copies of ``src -> dst``."""
        neighbors = self.graph.out_neighbors(src)
        weights = self.graph.out_weights(src)
        copies = weights[neighbors == dst]
        if copies.size == 0:
            return None
        return int(copies.min() if self._kind == _MIN_KIND else copies.max())

    def _is_tight(self, src: int, dst: int, vals: np.ndarray) -> bool:
        """Could any live copy of ``src -> dst`` be supporting ``dst``?"""
        if dst == self.source:
            return False  # the source's value is pinned, not edge-derived
        src_value = int(vals[src])
        dst_value = int(vals[dst])
        if src_value == self._identity or dst_value == self._identity:
            return False
        neighbors = self.graph.out_neighbors(src)
        weights = self.graph.out_weights(src)
        for weight in weights[neighbors == dst]:
            if self._edge_value(src_value, int(weight)) == dst_value:
                return True
        return False

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The published (normalized) converged output vector."""
        if self._values is None:
            raise GraphError("session has no converged state yet; call run()")
        return self._publish(self._values)

    def _publish(self, values: np.ndarray) -> np.ndarray:
        out = values.copy()
        if self._kind == _MAX_KIND:
            out[out == NULL_PRIORITY_HIGHER] = 0
        return out

    def run(self) -> IncrementalResult:
        """The from-scratch converged run establishing the resume state."""
        if self.algorithm == "kcore":
            from .kcore import initial_coreness

            values, stats = initial_coreness(self.graph, self.schedule)
            self._values = values
            return IncrementalResult(values=values.copy(), stats=stats, incremental=False)
        n = self.graph.num_vertices
        # The resume state includes the reverse adjacency: build it once
        # here so no later apply() pays the O(E log E) construction.
        self.graph.ensure_in_base()
        values = np.full(n, self._identity, dtype=np.int64)
        if self._kind == _MIN_KIND:
            values[self.source] = 0
            result = resume_delta_stepping(
                self.graph,
                self.source,
                self.schedule,
                values,
                np.asarray([self.source], dtype=np.int64),
                relaxed_ordering=self.relaxed_ordering,
            )
        else:
            values[self.source] = SOURCE_WIDTH
            result = resume_widest_path(
                self.graph, self.source, self.schedule, values,
                np.asarray([self.source], dtype=np.int64),
            )
        self._values = values
        return IncrementalResult(
            values=self._publish(values), stats=result.stats, incremental=False
        )

    def apply(self, mutations: list[Mutation]) -> IncrementalResult:
        """Apply a mutation batch and resume from a seeded frontier."""
        if self._values is None:
            raise GraphError("call run() before applying mutations")
        if self.algorithm == "kcore":
            return self._apply_kcore(mutations)
        return self._apply_extremal(mutations)

    # ------------------------------------------------------------------
    # Min/max resume
    # ------------------------------------------------------------------
    def _apply_extremal(self, mutations: list[Mutation]) -> IncrementalResult:
        graph, vals = self.graph, self._values
        n = graph.num_vertices
        identity = self._identity
        pre_values = vals.copy()

        # Pre-mutation adjacency snapshot: the cone walks *old* tight
        # edges.  The base arrays are snapshotted by reference (mutations
        # never write indptr/indices in place; a compaction *replaces*
        # them, leaving these references intact) plus a copy of the small
        # overlay state.  Only ``update_weight`` writes through the
        # weights array, so it alone forces a weights copy.
        pre_indptr, pre_indices, pre_weights = graph.base_csr()
        if any(m.kind == "update" for m in mutations):
            pre_weights = pre_weights.copy()
        removed = graph.removed_mask()
        pre_removed = removed.copy() if removed is not None else None
        pre_pending = graph.pending_snapshot()

        def pre_out_edges(v: int) -> tuple[np.ndarray, np.ndarray]:
            """``v``'s out-edges in the pre-mutation graph."""
            start, end = pre_indptr[v], pre_indptr[v + 1]
            neighbors = pre_indices[start:end]
            weights = pre_weights[start:end]
            if pre_removed is not None:
                keep = ~pre_removed[start:end]
                neighbors = neighbors[keep]
                weights = weights[keep]
            added = pre_pending.get(v)
            if added:
                neighbors = np.concatenate(
                    [neighbors, np.asarray([d for d, _ in added], dtype=np.int64)]
                )
                weights = np.concatenate(
                    [weights, np.asarray([w for _, w in added], dtype=np.int64)]
                )
            return neighbors, weights

        # Phase 1: classify each mutation against the converged values,
        # applying it immediately so later mutations in the batch see the
        # intermediate graph (e.g. remove of an edge added moments ago).
        improving_seeds: set[int] = set()
        worsened_heads: set[int] = set()
        with span("incremental.classify", "incremental", mutations=len(mutations)):
            for mutation in mutations:
                if mutation.kind == "add":
                    improving_seeds.add(mutation.src)
                    graph.add_edge(mutation.src, mutation.dst, mutation.weight)
                elif mutation.kind == "remove":
                    if self._is_tight(mutation.src, mutation.dst, vals):
                        worsened_heads.add(mutation.dst)
                    graph.remove_edge(mutation.src, mutation.dst)
                else:
                    old_effective = self._effective_weight(mutation.src, mutation.dst)
                    if old_effective is None:
                        raise GraphError(
                            f"no edge {mutation.src} -> {mutation.dst} to update"
                        )
                    if self._is_improving(mutation.weight, old_effective):
                        improving_seeds.add(mutation.src)
                    elif self._is_tight(mutation.src, mutation.dst, vals):
                        worsened_heads.add(mutation.dst)
                    graph.update_weight(mutation.src, mutation.dst, mutation.weight)

        # Phase 2: the invalidation cone — transitive tight-edge
        # descendants of every worsened head, on the pre-mutation graph.
        cone = np.zeros(n, dtype=bool)
        with span("incremental.invalidate", "incremental") as sp:
            stack = [
                head
                for head in sorted(worsened_heads)
                if head != self.source and vals[head] != identity
            ]
            while stack:
                v = stack.pop()
                if cone[v]:
                    continue
                cone[v] = True
                v_value = int(vals[v])
                pre_neighbors, pre_edge_weights = pre_out_edges(v)
                for x, w in zip(pre_neighbors, pre_edge_weights):
                    x = int(x)
                    if cone[x] or x == self.source or vals[x] == identity:
                        continue
                    if self._edge_value(v_value, int(w)) == int(vals[x]):
                        stack.append(x)
            cone_vertices = np.flatnonzero(cone)
            if sp is not None:
                sp["invalidated"] = int(cone_vertices.size)

        # Phase 3: recompute cone members from the cone boundary over the
        # *new* graph.  Members only reachable through the cone stay at the
        # identity and recover through relaxation from the seeds.
        with span("incremental.recompute", "incremental", cone=int(cone_vertices.size)):
            vals[cone_vertices] = identity
            for v in cone_vertices:
                # Overlay-aware point query against the *new* graph via the
                # retained base in-adjacency — O(in-degree), never a full
                # in-CSR rebuild.
                tails, edge_weights = graph.in_edges_of(int(v))
                live = ~cone[tails] & (vals[tails] != identity)
                if not np.any(live):
                    continue
                tail_vals = vals[tails[live]]
                edge_weights = edge_weights[live]
                if self._kind == _MIN_KIND:
                    vals[v] = int((tail_vals + edge_weights).min())
                else:
                    vals[v] = int(np.minimum(tail_vals, edge_weights).max())

        # Phase 4: seed and resume.  Seeds are the recomputed cone members
        # plus the improving endpoints — every tense edge's tail is one of
        # them, so monotone relaxation reaches the unique fixpoint.
        seeds_mask = np.zeros(n, dtype=bool)
        seeds_mask[cone_vertices[vals[cone_vertices] != identity]] = True
        for endpoint in improving_seeds:
            if vals[endpoint] != identity:
                seeds_mask[endpoint] = True
        seeds = np.flatnonzero(seeds_mask)

        stats = RuntimeStats(num_threads=self.schedule.num_threads)
        with span(
            "incremental.resume",
            "incremental",
            algorithm=self.algorithm,
            seeds=int(seeds.size),
        ):
            if self._kind == _MIN_KIND:
                result = resume_delta_stepping(
                    graph,
                    self.source,
                    self.schedule,
                    vals,
                    seeds,
                    relaxed_ordering=self.relaxed_ordering,
                    stats=stats,
                )
            else:
                result = resume_widest_path(
                    graph, self.source, self.schedule, vals, seeds, stats=stats
                )

        touched = cone | seeds_mask | (vals != pre_values)
        _BATCHES.inc()
        _SEEDS.observe(seeds.size)
        _INVALIDATED.observe(cone_vertices.size)
        stats.incremental_runs += 1
        stats.incremental_mutations += len(mutations)
        stats.incremental_seeds += int(seeds.size)
        stats.incremental_invalidated += int(cone_vertices.size)
        stats.incremental_vertices_touched += int(np.count_nonzero(touched))
        return IncrementalResult(
            values=self._publish(vals),
            stats=stats,
            incremental=True,
            seeds=int(seeds.size),
            invalidated=int(cone_vertices.size),
            vertices_touched=int(np.count_nonzero(touched)),
        )

    # ------------------------------------------------------------------
    # k-core resume
    # ------------------------------------------------------------------
    def _apply_kcore(self, mutations: list[Mutation]) -> IncrementalResult:
        from .kcore import apply_kcore_batch

        return apply_kcore_batch(self, mutations)
