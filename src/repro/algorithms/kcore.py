"""k-core decomposition (coreness of every vertex) by bucketed peeling.

Section 6.1: the peeling procedure of Matula and Beck — repeatedly remove
the bucket of minimum-degree vertices; a vertex's *coreness* is the value of
``k`` when it is peeled.  Priorities are induced degrees, priorities only
decrease (clamped at the current ``k``: the ``max(priority - count, k)`` of
Figure 10), and strict ordering is required, so priority coarsening is not
allowed.

Three schedules are supported, matching Table 7:

- ``lazy_constant_sum`` (the paper's best): per-round neighbour histogram,
  one transformed update per distinct neighbour — no atomics, one bucket
  insertion per vertex per round.
- ``lazy``: buffered updates with per-edge atomic decrements.
- ``eager_no_fusion``: every unit decrement immediately moves the vertex
  between thread-local buckets, leaving stale copies behind — the churn that
  makes eager k-core several times slower on social networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..buckets.eager import EagerBucketQueue
from ..buckets.lazy import LazyBucketQueue
from ..errors import SchedulingError
from ..graph.csr import CSRGraph
from ..midend.schedule import Schedule
from ..runtime.frontier import gather_out_edges
from ..runtime.histogram import histogram_counts
from ..runtime.stats import RuntimeStats
from ..runtime.threads import VirtualThreadPool

__all__ = ["kcore", "KCoreResult", "DEFAULT_KCORE_SCHEDULE", "kcore_reference"]

DEFAULT_KCORE_SCHEDULE = Schedule(priority_update="lazy_constant_sum", delta=1)


@dataclass
class KCoreResult:
    """Per-vertex coreness plus the execution profile."""

    coreness: np.ndarray
    stats: RuntimeStats
    schedule: Schedule | None

    @property
    def degeneracy(self) -> int:
        """The maximum coreness (the graph's degeneracy)."""
        return int(self.coreness.max()) if self.coreness.size else 0


def kcore(graph: CSRGraph, schedule: Schedule | None = None) -> KCoreResult:
    """Compute the coreness of every vertex of a symmetric graph.

    The input must be symmetric (use :meth:`CSRGraph.symmetrized`), matching
    the paper's convention for k-core inputs.  k-core requires strict
    ordering: the schedule's ``delta`` must be 1.
    """
    if schedule is None:
        schedule = DEFAULT_KCORE_SCHEDULE
    if schedule.delta != 1:
        raise SchedulingError(
            "k-core requires strict priority ordering; priority coarsening "
            "(delta > 1) is not allowed (Section 2)"
        )
    if schedule.uses_fusion:
        raise SchedulingError(
            "bucket fusion requires priority coarsening and is not "
            "applicable to k-core"
        )

    n = graph.num_vertices
    stats = RuntimeStats(num_threads=schedule.num_threads)
    pool = VirtualThreadPool(
        schedule.num_threads,
        schedule.parallelization,
        schedule.chunk_size,
        execution=schedule.execution,
    )
    stats.execution = schedule.execution
    degrees = graph.out_degrees().astype(np.int64)
    coreness = np.zeros(n, dtype=np.int64)
    peeled = np.zeros(n, dtype=bool)

    if schedule.is_eager:
        _kcore_eager(graph, degrees, coreness, peeled, stats, pool, schedule)
    else:
        _kcore_lazy(
            graph,
            degrees,
            coreness,
            peeled,
            stats,
            pool,
            schedule,
            histogram=schedule.uses_histogram,
        )
    return KCoreResult(coreness=coreness, stats=stats, schedule=schedule)


def _peel_bucket(
    bucket: np.ndarray, peeled: np.ndarray, coreness: np.ndarray, k: int
) -> np.ndarray:
    """Record coreness for the not-yet-peeled members and mark them peeled.

    Deduplication is required for correctness in k-core (Section 5.1): a
    vertex must be peeled exactly once even if stale bucket entries remain.
    """
    fresh = bucket[~peeled[bucket]]
    coreness[fresh] = k
    peeled[fresh] = True
    return fresh


def _kcore_lazy(
    graph: CSRGraph,
    degrees: np.ndarray,
    coreness: np.ndarray,
    peeled: np.ndarray,
    stats: RuntimeStats,
    pool: VirtualThreadPool,
    schedule: Schedule,
    histogram: bool,
) -> None:
    queue = LazyBucketQueue(
        degrees,
        delta=1,
        allow_coarsening=False,
        num_open_buckets=schedule.num_buckets,
        stats=stats,
    )
    while True:
        bucket = queue.dequeue_ready_set()
        if bucket.size == 0:
            break
        k = queue.get_current_priority()
        fresh = _peel_bucket(bucket, peeled, coreness, k)
        if fresh.size == 0:
            continue
        stats.begin_round()
        _, neighbors, _ = gather_out_edges(graph, fresh)
        stats.relaxations += int(neighbors.size)
        neighbors = neighbors[~peeled[neighbors]]
        if histogram:
            # Figure 10: count the updates per vertex, apply once.
            vertices, counts = histogram_counts(neighbors, stats)
            queue.apply_histogram_updates(vertices, counts, -1, k)
            work = int(neighbors.size) + int(vertices.size)
        else:
            # Plain lazy: per-edge atomic decrements (the contention the
            # histogram optimization removes), buffered with dedup flags.
            # The arithmetic is applied in one reduction — a serialization
            # of the clamped decrements yields the same final values — but
            # the costs are charged per edge.
            vertices, counts = np.unique(neighbors, return_counts=True)
            stats.atomic_ops += int(neighbors.size)
            stats.priority_updates += int(neighbors.size)
            stats.buffer_appends += int(neighbors.size)
            stats.dedup_hits += int(neighbors.size - vertices.size)
            queue.apply_histogram_updates(vertices, counts.astype(np.int64), -1, k)
            work = 2 * int(neighbors.size)
        per_thread = work // pool.num_threads + 1
        for thread_id in range(pool.num_threads):
            stats.add_thread_work(thread_id, per_thread)
        stats.end_round(syncs=2)


def _kcore_eager(
    graph: CSRGraph,
    degrees: np.ndarray,
    coreness: np.ndarray,
    peeled: np.ndarray,
    stats: RuntimeStats,
    pool: VirtualThreadPool,
    schedule: Schedule,
) -> None:
    queue = EagerBucketQueue(
        degrees,
        delta=1,
        allow_coarsening=False,
        num_threads=schedule.num_threads,
        stats=stats,
    )
    out_degrees = graph.out_degrees()
    while True:
        bucket = queue.dequeue_ready_set()
        if bucket.size == 0:
            break
        k = queue.get_current_priority()
        fresh = _peel_bucket(bucket, peeled, coreness, k)
        if fresh.size == 0:
            continue
        stats.begin_round()
        chunks = pool.partition(fresh, degrees=out_degrees[fresh])
        for thread_id, chunk in enumerate(chunks):
            if chunk.size == 0:
                continue
            _, neighbors, _ = gather_out_edges(graph, chunk)
            stats.relaxations += int(neighbors.size)
            neighbors = neighbors[~peeled[neighbors]]
            if neighbors.size == 0:
                stats.add_thread_work(thread_id, 1)
                continue
            vertices, counts = np.unique(neighbors, return_counts=True)
            old = degrees[vertices]
            new_values = np.maximum(old - counts, k)
            stats.atomic_ops += int(neighbors.size)
            stats.priority_updates += int((old - new_values).sum())
            # Every unit decrement is an immediate bucket move: the vertex
            # is inserted into the bin of each intermediate priority,
            # leaving stale copies behind (filtered at dequeue).
            max_steps = int(counts.max())
            inserts = 0
            for step in range(1, max_steps + 1):
                moving = (counts >= step) & (old - step >= k)
                if not np.any(moving):
                    break
                step_orders = old[moving] - step
                queue.insert_batch_at(thread_id, vertices[moving], step_orders)
                inserts += int(np.count_nonzero(moving))
            degrees[vertices] = new_values
            stats.add_thread_work(thread_id, int(neighbors.size) + inserts)
        stats.end_round(syncs=1)


def kcore_reference(graph: CSRGraph) -> np.ndarray:
    """Sequential peeling oracle for correctness tests.

    Matula-Beck peeling with a lazy-deletion heap: repeatedly remove a
    vertex of minimum current degree; its coreness is the running maximum of
    the degrees at removal time.
    """
    import heapq

    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    current = graph.out_degrees().astype(np.int64).copy()
    heap = [(int(current[v]), v) for v in range(n)]
    heapq.heapify(heap)
    coreness = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    k = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != current[v]:
            continue
        removed[v] = True
        k = max(k, d)
        coreness[v] = k
        for u in graph.out_neighbors(v):
            u = int(u)
            if not removed[u]:
                current[u] -= 1
                heapq.heappush(heap, (int(current[u]), u))
    return coreness
