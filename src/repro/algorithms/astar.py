"""A* search on graphs with planar coordinates.

Section 6.1: A* differs from Δ-stepping only in the priority — instead of
the current distance, a vertex's priority is the *estimated* total length of
a source-target path through it, ``dist[v] + h(v)``, where ``h`` is the
straight-line distance to the target.  Because road edge weights are the
rounded-up Euclidean length of the edge (see :func:`repro.graph.road_grid`),
the straight-line estimate never exceeds any true remaining distance, i.e.
the heuristic is admissible and the computed path length is exact.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graph.csr import CSRGraph
from ..midend.schedule import Schedule
from .common import ShortestPathResult, check_source, run_delta_stepping
from .sssp import DEFAULT_SSSP_SCHEDULE

__all__ = ["astar", "euclidean_heuristic"]


def euclidean_heuristic(graph: CSRGraph, target: int) -> np.ndarray:
    """Admissible lower bound: floored straight-line distance to ``target``."""
    if not graph.has_coordinates:
        raise GraphError("A* requires vertex coordinates (longitude/latitude)")
    check_source(graph, target, "target")
    deltas = graph.coordinates - graph.coordinates[target]
    return np.floor(np.hypot(deltas[:, 0], deltas[:, 1])).astype(np.int64)


def astar(
    graph: CSRGraph,
    source: int,
    target: int,
    schedule: Schedule | None = None,
    heuristic: np.ndarray | None = None,
    relaxed_ordering: bool = False,
) -> ShortestPathResult:
    """A* shortest path from ``source`` to ``target``.

    ``heuristic`` may override the default Euclidean bound (it must be
    admissible for the result to be exact).  Priority coarsening applies to
    the estimated distances, as in the paper's implementation.
    """
    if schedule is None:
        schedule = DEFAULT_SSSP_SCHEDULE
    if heuristic is None:
        heuristic = euclidean_heuristic(graph, target)
    return run_delta_stepping(
        graph,
        source,
        schedule,
        heuristic=heuristic,
        target=target,
        relaxed_ordering=relaxed_ordering,
    )
