"""Shared plumbing for the ordered algorithms.

The Δ-stepping family (SSSP, wBFS, PPSP, A*) differs only in its priority
definition (plain distance vs. distance + heuristic) and stop condition
(none vs. target finalized); :func:`run_delta_stepping` factors the common
structure: build the queue for the scheduled bucketing strategy, build the
matching relaxer, and drive the matching executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..buckets.eager import EagerBucketQueue
from ..buckets.lazy import LazyBucketQueue
from ..buckets.relaxed import RelaxedPriorityQueue
from ..core.executors import (
    make_min_relaxer,
    make_min_relaxer_pull,
    run_eager,
    run_lazy,
    run_lazy_pull,
    run_relaxed,
)
from ..errors import GraphError, SchedulingError
from ..graph.csr import CSRGraph
from ..graph.properties import INT_MAX
from ..midend.schedule import Schedule
from ..runtime.stats import RuntimeStats
from ..runtime.threads import VirtualThreadPool

__all__ = [
    "ShortestPathResult",
    "run_delta_stepping",
    "resume_delta_stepping",
    "check_source",
    "UNREACHABLE",
]

# Public alias for the "no path" sentinel in result distances.
UNREACHABLE = INT_MAX


@dataclass
class ShortestPathResult:
    """Distances plus the execution profile of the run."""

    distances: np.ndarray
    stats: RuntimeStats
    schedule: Schedule | None
    source: int
    target: int | None = None

    @property
    def target_distance(self) -> int:
        """Distance to the target (for PPSP / A*); raises without a target."""
        if self.target is None:
            raise GraphError("this run had no target vertex")
        return int(self.distances[self.target])

    def reachable(self) -> np.ndarray:
        """Boolean mask of vertices reachable from the source."""
        return self.distances != UNREACHABLE


def check_source(graph: CSRGraph, vertex: int, name: str = "source") -> None:
    if not 0 <= vertex < graph.num_vertices:
        raise GraphError(
            f"{name} vertex {vertex} out of range [0, {graph.num_vertices})"
        )


def run_delta_stepping(
    graph: CSRGraph,
    source: int,
    schedule: Schedule,
    heuristic: np.ndarray | None = None,
    target: int | None = None,
    relaxed_ordering: bool = False,
) -> ShortestPathResult:
    """Run Δ-stepping (Figures 5-7) under the given schedule.

    Parameters
    ----------
    heuristic:
        Per-vertex admissible lower bound to ``target`` (A*): bucket
        priorities become ``dist + heuristic`` instead of ``dist``.
    target:
        Enables early termination once the current bucket's priority lower
        bound reaches the best known distance (+ heuristic) of the target —
        the PPSP/A* stop condition from Section 6.1.
    relaxed_ordering:
        Replace strict bucketing with the approximate (Galois-style) queue.
    """
    check_source(graph, source)
    if target is not None:
        check_source(graph, target, "target")
    if heuristic is not None and target is None:
        raise GraphError("a heuristic requires a target vertex")
    if graph.has_negative_weights:
        raise GraphError(
            "Δ-stepping requires non-negative edge weights (a negative "
            "weight would violate the monotone-priority contract)"
        )
    if schedule.uses_histogram:
        raise SchedulingError(
            "lazy_constant_sum requires a constant-difference updatePrioritySum "
            "UDF; shortest-path relaxations are write-min updates"
        )

    n = graph.num_vertices
    stats = RuntimeStats(num_threads=schedule.num_threads)
    pool = VirtualThreadPool(
        schedule.num_threads,
        schedule.parallelization,
        schedule.chunk_size,
        execution=schedule.execution,
    )
    stats.execution = schedule.execution
    distances = np.full(n, INT_MAX, dtype=np.int64)
    distances[source] = 0

    if heuristic is None:
        priorities = distances
    else:
        heuristic = np.asarray(heuristic, dtype=np.int64)
        if heuristic.shape != (n,):
            raise GraphError("heuristic must have one entry per vertex")
        priorities = np.full(n, INT_MAX, dtype=np.int64)
        priorities[source] = heuristic[source]

    should_stop = None
    if target is not None:
        target_queue_holder: list = []

        def should_stop() -> bool:
            best = distances[target]
            if best == INT_MAX:
                return False
            queue = target_queue_holder[0]
            target_priority = best if heuristic is None else best + heuristic[target]
            return queue.get_current_priority() >= target_priority

    _drive_min_relaxation(
        graph,
        distances,
        priorities,
        [source],
        schedule,
        stats,
        pool,
        heuristic=heuristic,
        should_stop=should_stop,
        relaxed_ordering=relaxed_ordering,
        queue_holder=target_queue_holder if target is not None else None,
    )

    return ShortestPathResult(
        distances=distances,
        stats=stats,
        schedule=schedule,
        source=source,
        target=target,
    )


def resume_delta_stepping(
    graph: CSRGraph,
    source: int,
    schedule: Schedule,
    distances: np.ndarray,
    seeds: np.ndarray,
    relaxed_ordering: bool = False,
    stats: RuntimeStats | None = None,
) -> ShortestPathResult:
    """Resume Δ-stepping from an already-partially-converged state.

    ``distances`` is the live value vector (mutated in place); ``seeds``
    are the vertices whose out-edges may still be tense — the queue is
    seeded with them at their *current* priorities instead of the source
    at 0, which is the entire difference from :func:`run_delta_stepping`.
    With an empty seed set the state is already a fixpoint and the call
    returns immediately.
    """
    check_source(graph, source)
    if distances.shape != (graph.num_vertices,):
        raise GraphError("distances must have one entry per vertex")
    if graph.has_negative_weights:
        raise GraphError(
            "Δ-stepping requires non-negative edge weights (a negative "
            "weight would violate the monotone-priority contract)"
        )
    if schedule.uses_histogram:
        raise SchedulingError(
            "lazy_constant_sum requires a constant-difference updatePrioritySum "
            "UDF; shortest-path relaxations are write-min updates"
        )
    if stats is None:
        stats = RuntimeStats(num_threads=schedule.num_threads)
    pool = VirtualThreadPool(
        schedule.num_threads,
        schedule.parallelization,
        schedule.chunk_size,
        execution=schedule.execution,
    )
    stats.execution = schedule.execution
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size:
        _drive_min_relaxation(
            graph,
            distances,
            distances,
            seeds,
            schedule,
            stats,
            pool,
            relaxed_ordering=relaxed_ordering,
        )
    return ShortestPathResult(
        distances=distances, stats=stats, schedule=schedule, source=source
    )


def _drive_min_relaxation(
    graph: CSRGraph,
    distances: np.ndarray,
    priorities: np.ndarray,
    initial_vertices,
    schedule: Schedule,
    stats: RuntimeStats,
    pool: VirtualThreadPool,
    heuristic: np.ndarray | None = None,
    should_stop=None,
    relaxed_ordering: bool = False,
    queue_holder: list | None = None,
) -> None:
    """Build the scheduled queue seeded with ``initial_vertices`` at their
    current priorities and drive the matching executor to the fixpoint."""
    if relaxed_ordering:
        queue = RelaxedPriorityQueue(
            priorities,
            delta=schedule.delta,
            slack=4,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        if queue_holder is not None:
            queue_holder.append(queue)
        relax = make_min_relaxer(graph, distances, queue, stats, heuristic)
        run_relaxed(graph, queue, relax, pool, stats, should_stop)
    elif schedule.is_eager:
        queue = EagerBucketQueue(
            priorities,
            delta=schedule.delta,
            num_threads=schedule.num_threads,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        if queue_holder is not None:
            queue_holder.append(queue)
        relax = make_min_relaxer(graph, distances, queue, stats, heuristic)
        threshold = schedule.bucket_fusion_threshold if schedule.uses_fusion else 0
        run_eager(graph, queue, relax, pool, stats, threshold, should_stop)
    else:
        queue = LazyBucketQueue(
            priorities,
            delta=schedule.delta,
            num_open_buckets=schedule.num_buckets,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        if queue_holder is not None:
            queue_holder.append(queue)
        if schedule.direction == "DensePull":
            frontier_map = np.zeros(graph.num_vertices, dtype=bool)
            relax = make_min_relaxer_pull(
                graph, distances, queue, stats, frontier_map, heuristic
            )
            run_lazy_pull(graph, queue, relax, pool, stats, frontier_map, should_stop)
        else:
            relax = make_min_relaxer(graph, distances, queue, stats, heuristic)
            run_lazy(graph, queue, relax, pool, stats, should_stop)
