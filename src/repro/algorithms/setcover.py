"""Approximate set cover by bucketing (Blelloch et al.; Julienne; Section 6.1).

The instance is derived from a symmetric graph, the convention used in
Julienne's evaluation: every vertex is simultaneously a *set* (covering its
closed neighbourhood — itself plus its neighbours) and an *element*.  Costs
are unit, so a set's cost-per-element is 1 / (number of its still-uncovered
elements) and "best cost per element" means "most uncovered elements".

Sets are bucketed by ``floor(log2(uncovered elements))`` and processed from
the *highest* bucket (a ``higher_first`` queue).  Each round:

1. Dequeue the top bucket's candidate sets.
2. Recompute each candidate's uncovered-element count.  Exhausted sets are
   retired; sets whose count dropped below the bucket's range are lazily
   re-bucketed (exactly the rebucketing traffic that favours the lazy
   update strategy — Section 7 notes Julienne's lazy approach is efficient
   for SetCover for this reason).
3. The surviving candidates run one round of randomized "nearly independent
   set" style conflict resolution: every uncovered element picks one
   claiming candidate (smallest random rank); a candidate that wins at least
   half of its uncovered elements joins the cover and covers all of its
   elements; losers stay in the bucket for the next round with fresh ranks.

The factor-1/2 retention with factor-2 geometric bucketing gives the usual
``O(log n)``-approximation of greedy up to constant factors; the test suite
checks full coverage and size against sequential greedy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..buckets.lazy import LazyBucketQueue
from ..errors import GraphError, SchedulingError
from ..graph.csr import CSRGraph
from ..midend.schedule import Schedule
from ..runtime.frontier import gather_out_edges
from ..runtime.stats import RuntimeStats
from ..runtime.threads import VirtualThreadPool

__all__ = [
    "setcover",
    "SetCoverResult",
    "DEFAULT_SETCOVER_SCHEDULE",
    "greedy_setcover_reference",
]

DEFAULT_SETCOVER_SCHEDULE = Schedule(priority_update="lazy", delta=1)


@dataclass
class SetCoverResult:
    """The chosen sets, the element coverage, and the execution profile."""

    cover: np.ndarray
    covered: np.ndarray
    stats: RuntimeStats
    schedule: Schedule | None

    @property
    def cover_size(self) -> int:
        return int(self.cover.size)

    @property
    def fully_covered(self) -> bool:
        return bool(self.covered.all())


def _closed_neighborhood_uncovered(
    graph: CSRGraph, sets: np.ndarray, covered: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-set uncovered element count, plus the flat (set-index, element)
    incidence restricted to uncovered elements."""
    sources, dests, _ = gather_out_edges(graph, sets)
    set_index = np.searchsorted(sets, sources)
    # Closed neighbourhood: each set also covers itself.
    self_index = np.arange(sets.size, dtype=np.int64)
    set_index = np.concatenate([set_index, self_index])
    elements = np.concatenate([dests, sets])
    uncovered_mask = ~covered[elements]
    set_index = set_index[uncovered_mask]
    elements = elements[uncovered_mask]
    counts = np.bincount(set_index, minlength=sets.size).astype(np.int64)
    return counts, set_index, elements


def _log_bucket(counts: np.ndarray) -> np.ndarray:
    """floor(log2(count)) for positive counts (bucket of a set's ratio)."""
    result = np.zeros_like(counts)
    positive = counts > 0
    result[positive] = np.floor(np.log2(counts[positive])).astype(np.int64)
    return result


def setcover(
    graph: CSRGraph,
    schedule: Schedule | None = None,
    seed: int = 0,
    retention: float = 0.5,
) -> SetCoverResult:
    """Approximate unweighted set cover over a symmetric graph instance.

    ``retention`` is the fraction of its uncovered elements a candidate must
    win in the conflict-resolution round to enter the cover (Blelloch et
    al.'s MaNIS uses a constant fraction; 1/2 pairs with the factor-2
    bucketing).
    """
    if schedule is None:
        schedule = DEFAULT_SETCOVER_SCHEDULE
    if schedule.delta != 1:
        raise SchedulingError(
            "SetCover requires strict bucket ordering; delta must be 1"
        )
    if schedule.is_eager:
        raise SchedulingError(
            "SetCover rebuckets sets many times per round; only the lazy "
            "bucket update strategies are supported (as in Julienne)"
        )
    if not 0 < retention <= 1:
        raise GraphError("retention must be in (0, 1]")

    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    stats = RuntimeStats(num_threads=schedule.num_threads)
    pool = VirtualThreadPool(
        schedule.num_threads,
        schedule.parallelization,
        schedule.chunk_size,
        execution=schedule.execution,
    )
    stats.execution = schedule.execution

    covered = np.zeros(n, dtype=bool)
    # Initial ratio: closed-neighbourhood size (degree + 1); all uncovered.
    priorities = _log_bucket(graph.out_degrees().astype(np.int64) + 1)
    queue = LazyBucketQueue(
        priorities,
        direction="higher_first",
        delta=1,
        allow_coarsening=False,
        num_open_buckets=schedule.num_buckets,
        stats=stats,
    )
    cover: list[np.ndarray] = []

    while True:
        candidates = queue.dequeue_ready_set()
        if candidates.size == 0:
            break
        bucket_value = queue.get_current_priority()
        stats.begin_round()

        counts, set_index, elements = _closed_neighborhood_uncovered(
            graph, candidates, covered
        )
        stats.relaxations += int(elements.size)

        exhausted = candidates[counts == 0]
        if exhausted.size:
            queue.remove_batch(exhausted)

        buckets = _log_bucket(counts)
        downgraded_mask = (counts > 0) & (buckets < bucket_value)
        downgraded = candidates[downgraded_mask]
        if downgraded.size:
            # Lazy re-bucketing: write the new (lower) priority and buffer.
            priorities[downgraded] = buckets[downgraded_mask]
            stats.priority_updates += int(downgraded.size)
            queue.buffer_changed_batch(downgraded)

        active_mask = (counts > 0) & (buckets >= bucket_value)
        active = candidates[active_mask]
        if active.size:
            winners = _resolve_conflicts(
                candidates,
                active_mask,
                counts,
                set_index,
                elements,
                retention,
                rng,
                stats,
                n,
            )
            chosen = candidates[winners]
            if chosen.size:
                cover.append(chosen)
                # A chosen set covers all of its uncovered elements.
                chosen_mask = winners[set_index]
                covered[elements[chosen_mask]] = True
                queue.remove_batch(chosen)
            losers = candidates[active_mask & ~winners]
            if losers.size:
                # Losers stay at their bucket and retry next round with
                # fresh random ranks (lazy reinsertion).
                queue.requeue_batch(losers)

        work = int(elements.size) + int(candidates.size)
        per_thread = work // pool.num_threads + 1
        for thread_id in range(pool.num_threads):
            stats.add_thread_work(thread_id, per_thread)
        stats.end_round(syncs=2)

    cover_array = (
        np.sort(np.concatenate(cover)) if cover else np.empty(0, dtype=np.int64)
    )
    return SetCoverResult(
        cover=cover_array, covered=covered, stats=stats, schedule=schedule
    )


def _resolve_conflicts(
    candidates: np.ndarray,
    active_mask: np.ndarray,
    counts: np.ndarray,
    set_index: np.ndarray,
    elements: np.ndarray,
    retention: float,
    rng: np.random.Generator,
    stats: RuntimeStats,
    num_elements: int,
) -> np.ndarray:
    """One randomized claim round; returns a winner mask over candidates.

    Every uncovered element picks the incident active candidate with the
    smallest random rank; a candidate wins if it claims at least
    ``retention`` of its uncovered elements.
    """
    ranks = rng.permutation(candidates.size).astype(np.int64)
    active_pairs = active_mask[set_index]
    pair_sets = set_index[active_pairs]
    pair_elements = elements[active_pairs]

    best_rank = np.full(num_elements, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(best_rank, pair_elements, ranks[pair_sets])
    stats.atomic_ops += int(pair_elements.size)

    won_pairs = ranks[pair_sets] == best_rank[pair_elements]
    wins = np.bincount(
        pair_sets[won_pairs], minlength=candidates.size
    ).astype(np.int64)
    needed = np.maximum(1, np.ceil(retention * counts).astype(np.int64))
    return active_mask & (wins >= needed)


def greedy_setcover_reference(graph: CSRGraph) -> np.ndarray:
    """Sequential greedy set cover (the classical ln(n)-approximation oracle).

    Repeatedly picks the set covering the most uncovered elements (ties by
    smallest id).  Used to sanity-check the bucketed algorithm's cover size.
    """
    n = graph.num_vertices
    covered = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    counts = graph.out_degrees().astype(np.int64) + 1
    while not covered.all():
        best = int(np.argmax(counts))
        if counts[best] <= 0:
            raise GraphError("greedy stalled; instance not coverable")
        chosen.append(best)
        members = np.append(graph.out_neighbors(best), best)
        newly = members[~covered[members]]
        covered[newly] = True
        counts[best] = 0
        # Recompute affected sets' uncovered counts: every set incident to a
        # newly covered element loses it.
        for element in newly.tolist():
            incident = np.append(graph.out_neighbors(element), element)
            counts[incident] -= 1
        counts[covered & (counts < 0)] = 0
        counts = np.maximum(counts, 0)
        counts[np.asarray(chosen, dtype=np.int64)] = 0
    return np.sort(np.asarray(chosen, dtype=np.int64))
