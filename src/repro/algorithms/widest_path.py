"""Widest path (maximum bottleneck path) — an extension algorithm.

Table 1 defines ``updatePriorityMax`` and the ``higher_first`` processing
direction, but none of the paper's six benchmarks exercises them (k-core
and SetCover use sums; the shortest-path family uses min).  Widest path is
the natural sixth-plus-one: maximize, over all paths from the source, the
minimum edge weight (capacity) along the path.  It is Δ-stepping mirrored —
buckets are processed from the *highest* capacity down, priorities only
increase, and priority coarsening applies unchanged.

``widest_path`` runs under the eager (± fusion) and lazy schedules;
``widest_path_reference`` is the max-heap Dijkstra-variant oracle.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..buckets.eager import EagerBucketQueue
from ..buckets.interface import NULL_PRIORITY_HIGHER
from ..buckets.lazy import LazyBucketQueue
from ..core.executors import run_eager, run_lazy
from ..errors import SchedulingError
from ..graph.csr import CSRGraph
from ..midend.schedule import Schedule
from ..runtime.frontier import gather_out_edges
from ..runtime.stats import RuntimeStats
from ..runtime.threads import VirtualThreadPool
from .common import ShortestPathResult, check_source

__all__ = [
    "widest_path",
    "widest_path_reference",
    "resume_widest_path",
    "DEFAULT_WIDEST_SCHEDULE",
    "SOURCE_WIDTH",
]

DEFAULT_WIDEST_SCHEDULE = Schedule(priority_update="eager_with_fusion", delta=8)

# A source capacity larger than any edge weight ("infinite" bottleneck).
_SOURCE_WIDTH = np.int64(2**40)
# Public alias: the incremental engine pins the source at this capacity.
SOURCE_WIDTH = _SOURCE_WIDTH


def _make_max_relaxer(graph: CSRGraph, widths: np.ndarray, queue, stats: RuntimeStats):
    """Vectorized bottleneck relaxation with write-max semantics.

    For each out-edge (src, dst, w) of the chunk, propose
    ``min(width[src], w)`` and keep the maximum — the ``updatePriorityMax``
    lowering, mirrored from :func:`make_min_relaxer`.
    """
    eager = isinstance(queue, EagerBucketQueue)

    def relax(chunk: np.ndarray, thread_id: int) -> int:
        sources, dests, weights = gather_out_edges(graph, chunk)
        if sources.size == 0:
            return 0
        stats.relaxations += int(sources.size)
        candidates = np.minimum(widths[sources], weights)
        old = widths[dests].copy()
        np.maximum.at(widths, dests, candidates)
        stats.atomic_ops += int(dests.size)
        improved = widths[dests] > old
        changed = np.unique(dests[improved])
        if changed.size:
            stats.priority_updates += int(changed.size)
            if eager:
                queue.insert_changed_batch(thread_id, changed)
            else:
                queue.buffer_changed_batch(changed)
        return int(sources.size) + int(changed.size)

    return relax


def widest_path(
    graph: CSRGraph,
    source: int,
    schedule: Schedule | None = None,
) -> ShortestPathResult:
    """Maximum bottleneck capacity from ``source`` to every vertex.

    The result's ``distances`` array holds the bottleneck widths (the
    source's own entry is a large "infinite" sentinel; unreachable vertices
    hold 0).  Edge weights must be positive.
    """
    check_source(graph, source)
    if schedule is None:
        schedule = DEFAULT_WIDEST_SCHEDULE
    if schedule.uses_histogram:
        raise SchedulingError(
            "widest path performs write-max updates, not constant sums"
        )
    if schedule.direction != "SparsePush":
        raise SchedulingError(
            "widest path currently supports push traversal only"
        )

    n = graph.num_vertices
    stats = RuntimeStats(num_threads=schedule.num_threads)
    pool = VirtualThreadPool(
        schedule.num_threads,
        schedule.parallelization,
        schedule.chunk_size,
        execution=schedule.execution,
    )
    stats.execution = schedule.execution
    widths = np.full(n, NULL_PRIORITY_HIGHER, dtype=np.int64)
    widths[source] = _SOURCE_WIDTH

    _drive_max_relaxation(graph, widths, [source], schedule, stats, pool)

    # Normalize: unreachable vertices report width 0.
    widths[widths == NULL_PRIORITY_HIGHER] = 0
    return ShortestPathResult(
        distances=widths, stats=stats, schedule=schedule, source=source
    )


def resume_widest_path(
    graph: CSRGraph,
    source: int,
    schedule: Schedule,
    widths: np.ndarray,
    seeds: np.ndarray,
    stats: RuntimeStats | None = None,
) -> ShortestPathResult:
    """Resume widest path from a partially-converged width vector.

    ``widths`` must be in *internal* form: ``NULL_PRIORITY_HIGHER`` for
    unreachable vertices and :data:`SOURCE_WIDTH` at the source (the
    normalized 0-for-unreachable form is ambiguous once zero-weight edges
    exist).  The vector is mutated in place and returned *normalized* in
    the result, mirroring :func:`widest_path`.
    """
    check_source(graph, source)
    if schedule is None:
        schedule = DEFAULT_WIDEST_SCHEDULE
    if schedule.uses_histogram:
        raise SchedulingError(
            "widest path performs write-max updates, not constant sums"
        )
    if schedule.direction != "SparsePush":
        raise SchedulingError(
            "widest path currently supports push traversal only"
        )
    if stats is None:
        stats = RuntimeStats(num_threads=schedule.num_threads)
    pool = VirtualThreadPool(
        schedule.num_threads,
        schedule.parallelization,
        schedule.chunk_size,
        execution=schedule.execution,
    )
    stats.execution = schedule.execution
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size:
        _drive_max_relaxation(graph, widths, seeds, schedule, stats, pool)
    normalized = widths.copy()
    normalized[normalized == NULL_PRIORITY_HIGHER] = 0
    return ShortestPathResult(
        distances=normalized, stats=stats, schedule=schedule, source=source
    )


def _drive_max_relaxation(
    graph: CSRGraph,
    widths: np.ndarray,
    initial_vertices,
    schedule: Schedule,
    stats: RuntimeStats,
    pool: VirtualThreadPool,
) -> None:
    """Build the higher-first queue seeded at current widths and drive the
    scheduled executor to the fixpoint."""
    if schedule.is_eager:
        queue = EagerBucketQueue(
            widths,
            direction="higher_first",
            delta=schedule.delta,
            num_threads=schedule.num_threads,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        relax = _make_max_relaxer(graph, widths, queue, stats)
        threshold = schedule.bucket_fusion_threshold if schedule.uses_fusion else 0
        run_eager(graph, queue, relax, pool, stats, threshold)
    else:
        queue = LazyBucketQueue(
            widths,
            direction="higher_first",
            delta=schedule.delta,
            num_open_buckets=schedule.num_buckets,
            stats=stats,
            initial_vertices=initial_vertices,
        )
        relax = _make_max_relaxer(graph, widths, queue, stats)
        run_lazy(graph, queue, relax, pool, stats)


def widest_path_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Max-heap Dijkstra-variant oracle for widest path."""
    check_source(graph, source)
    widths = np.zeros(graph.num_vertices, dtype=np.int64)
    widths[source] = _SOURCE_WIDTH
    heap = [(-int(_SOURCE_WIDTH), source)]
    while heap:
        negative_width, v = heapq.heappop(heap)
        width = -negative_width
        if width != widths[v]:
            continue
        for u, w in graph.out_edges(v):
            candidate = min(width, w)
            if candidate > widths[u]:
                widths[u] = candidate
                heapq.heappush(heap, (-candidate, u))
    return widths
